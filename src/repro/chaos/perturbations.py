"""The chaos perturbation library.

Each perturbation is a declarative description of one runtime
disturbance; the :class:`~repro.chaos.engine.ChaosEngine` fires it at its
scheduled step time by calling :meth:`Perturbation.inject`.  Perturbations
are thin adapters over machinery the system already has:

* process/host faults ride the hardened
  :class:`~repro.runtime.failures.FailureInjector` (so they share its
  per-kind counters and recorded no-ops);
* network faults install :class:`~repro.runtime.transport.LinkFault`
  modifiers (latency spikes, seeded loss, hold-until-heal partitions);
* load faults drive a :class:`~repro.apps.workloads.ChaosFeed`'s live
  rate/skew controls;
* durability faults arm the checkpoint service's ``commit_fault`` hook
  (torn epochs);
* reconfiguration faults start a live rescale, so campaigns can race
  crashes against migration barriers.

Crash-class perturbations capture the victim's keyed state *at the
instant of the crash* into the injection record, which is what the
resilience scorecard later compares against live state to compute the
state-recovery fraction.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.runtime.pe import PERuntime, PEState

if TYPE_CHECKING:  # pragma: no cover
    from repro.chaos.engine import ChaosEngine, ScenarioRun


class ChaosError(ReproError):
    """A perturbation could not resolve or apply its target."""


def buffered_item_count(pe: PERuntime) -> int:
    """Data tuples held in a PE's operator buffers (punctuations excluded).

    Crash-class perturbations record this on the injection so scorecards
    and the fuzzer's loss-accounting oracle can tell a tuple that died in
    an operator buffer (restart-empty semantics, legitimate) from one
    the system lost without any crash explanation (a bug).  Counting
    punctuations would inflate ``accounted_losses`` and let the
    unaccounted-loss oracle mask that many real losses.

    Args:
        pe: The PE about to be disturbed.

    Returns:
        Total ``pending_tuples()`` over the PE's operators.
    """
    return sum(op.pending_tuples() for op in pe.operators.values())


def capture_committed_state(
    engine: "ChaosEngine", pe: PERuntime
) -> Dict[str, Dict[Any, Any]]:
    """The victim's latest *committed* checkpoint, merged per state name.

    Recorded on crash injections as the run's restore floor: whatever a
    rehydrating recovery restores (plus detour continuation) must never
    fall below the state the store had durably committed at the instant
    of the crash — the exact guarantee the fuzzer's state-conservation
    oracle checks right after each recovery, immune to checkpoint-lag
    false positives that judging against live at-crash state would give.

    Args:
        engine: The chaos engine (reaches the system's checkpoint store).
        pe: The crashing PE.

    Returns:
        ``state_name -> {key: value}`` from the newest committed epoch
        (empty when none exists — e.g. restart-empty stacks).
    """
    entry = engine.system.checkpoint_store.latest_committed(
        pe.job.job_id, pe.pe_id
    )
    if entry is None:
        return {}
    merged: Dict[str, Dict[Any, Any]] = {}
    for payload in entry.payloads.values():
        for state_name, entries in payload.get("store", {}).get("keyed", {}).items():
            merged.setdefault(state_name, {}).update(entries)
    return copy.deepcopy(merged)


def capture_keyed_state(pe: PERuntime) -> Dict[str, Dict[Any, Any]]:
    """Deep-copy every keyed state currently held by a PE's operators.

    Args:
        pe: The (running) PE about to be disturbed.

    Returns:
        ``state_name -> {key: value}`` merged over the PE's operators —
        the "at crash" side of the scorecard's state-recovery fraction.
    """
    captured: Dict[str, Dict[Any, Any]] = {}
    for operator in pe.operators.values():
        if not operator.state.in_use:
            continue
        for state_name, keyed in operator.state.keyed_states().items():
            captured.setdefault(state_name, {}).update(keyed.snapshot())
    return captured


class Perturbation:
    """Base class: one injectable runtime disturbance.

    Subclasses set :attr:`KIND` and implement :meth:`inject`, returning
    ``(target, detail)`` — a human-readable target name and a detail map
    recorded on the :class:`~repro.chaos.engine.ChaosInjection`.  Detail
    keys starting with ``_`` are engine-internal (e.g. captured state
    snapshots) and are not published into ORCA event contexts.
    """

    #: injection kind recorded on ChaosInjection and matched by ChaosScope
    KIND = "perturbation"

    def inject(
        self, engine: "ChaosEngine", run: "ScenarioRun"
    ) -> Tuple[str, Dict[str, Any]]:
        """Apply the disturbance now; return ``(target, detail)``."""
        raise NotImplementedError

    # -- shared resolution helpers ------------------------------------------

    def _resolve_pe(
        self,
        run: "ScenarioRun",
        operator: Optional[str] = None,
        pe_index: Optional[int] = None,
        pe_id: Optional[str] = None,
    ) -> PERuntime:
        """Find the target PE of the run's job by operator/index/id."""
        job = run.job
        if job is None:
            raise ChaosError(f"{type(self).__name__} needs a job-scoped run")
        if pe_id is not None:
            return job.pe_by_id(pe_id)
        if operator is not None:
            return job.pe_of_operator(operator)
        if pe_index is not None:
            return job.pe_by_index(pe_index)
        raise ChaosError(f"{type(self).__name__} needs operator, pe_index, or pe_id")

    def __repr__(self) -> str:
        """Short debugging representation (kind + public fields)."""
        fields = {
            k: v for k, v in vars(self).items() if not k.startswith("_")
        }
        return f"{type(self).__name__}({fields})"


# ---------------------------------------------------------------------------
# process & host faults
# ---------------------------------------------------------------------------


@dataclass(repr=False)
class CrashPE(Perturbation):
    """Crash one PE of the run's job (no scheduled recovery).

    Attributes:
        operator: Resolve the PE as the one hosting this operator.
        pe_index: Alternative: resolve by PE index.
        reason: Crash reason propagated into failure events.
    """

    operator: Optional[str] = None
    pe_index: Optional[int] = None
    reason: str = "chaos"

    KIND = "crash_pe"

    def inject(self, engine, run):
        """Capture keyed state, then crash the PE through the injector."""
        pe = self._resolve_pe(run, self.operator, self.pe_index)
        detail: Dict[str, Any] = {"pe_ids": [pe.pe_id], "reason": self.reason}
        if pe.state is PEState.RUNNING:
            detail["_state_at_crash"] = capture_keyed_state(pe)
            detail["_committed_at_crash"] = capture_committed_state(engine, pe)
            detail["buffered_at_crash"] = buffered_item_count(pe)
        engine.system.failures.crash_pe(
            run.job.job_id, pe_id=pe.pe_id, reason=self.reason
        )
        return pe.pe_id, detail


@dataclass(repr=False)
class RestartPE(Perturbation):
    """Restart a downed PE of the run's job (the recovery half of a flap).

    Attributes:
        operator: Resolve the PE as the one hosting this operator.
        pe_index: Alternative: resolve by PE index.
        rehydrate: Restore state from the best available snapshot.
    """

    operator: Optional[str] = None
    pe_index: Optional[int] = None
    rehydrate: bool = True

    KIND = "restart_pe"

    def inject(self, engine, run):
        """Issue the SAM restart through the failure injector."""
        pe = self._resolve_pe(run, self.operator, self.pe_index)
        engine.system.failures.restart_pe(
            run.job.job_id, pe.pe_id, rehydrate=self.rehydrate
        )
        return pe.pe_id, {"pe_ids": [pe.pe_id], "rehydrate": self.rehydrate}


@dataclass(repr=False)
class PEFlap(Perturbation):
    """Crash a PE now and restart it after ``downtime`` seconds.

    Attributes:
        operator: Resolve the PE as the one hosting this operator.
        pe_index: Alternative: resolve by PE index.
        downtime: Seconds between the crash and the restart request.
        rehydrate: Restore state on restart.
        reason: Crash reason propagated into failure events.
    """

    operator: Optional[str] = None
    pe_index: Optional[int] = None
    downtime: float = 2.0
    rehydrate: bool = True
    reason: str = "chaos_flap"

    KIND = "pe_flap"

    def inject(self, engine, run):
        """Crash, then schedule the cancellable restart injection."""
        pe = self._resolve_pe(run, self.operator, self.pe_index)
        detail: Dict[str, Any] = {
            "pe_ids": [pe.pe_id],
            "downtime": self.downtime,
            "rehydrate": self.rehydrate,
        }
        if pe.state is PEState.RUNNING:
            detail["_state_at_crash"] = capture_keyed_state(pe)
            detail["_committed_at_crash"] = capture_committed_state(engine, pe)
            detail["buffered_at_crash"] = buffered_item_count(pe)
        injector = engine.system.failures
        injector.crash_pe(run.job.job_id, pe_id=pe.pe_id, reason=self.reason)
        injector.restart_pe(
            run.job.job_id,
            pe.pe_id,
            rehydrate=self.rehydrate,
            at=engine.kernel.now + self.downtime,
        )
        return pe.pe_id, detail


@dataclass(repr=False)
class FailHost(Perturbation):
    """Kill one host (no scheduled recovery).

    Attributes:
        host: The host name to kill.
        host_of: Alternative: kill the host of this operator, resolved
            at injection time against the run's job.
    """

    host: Optional[str] = None
    host_of: Optional[str] = None

    KIND = "fail_host"

    def _target_host(self, engine, run) -> str:
        if self.host is not None:
            return self.host
        if self.host_of is not None:
            pe = self._resolve_pe(run, operator=self.host_of)
            if pe.host_name is None:
                raise ChaosError(f"operator {self.host_of!r} has no host")
            return pe.host_name
        raise ChaosError("FailHost needs host or host_of")

    def inject(self, engine, run):
        """Capture local keyed state, then kill the host."""
        host = self._target_host(engine, run)
        hc = engine.system.hcs.get(host)
        detail: Dict[str, Any] = {"pe_ids": []}
        state: Dict[str, Dict[Any, Any]] = {}
        committed: Dict[str, Dict[Any, Any]] = {}
        buffered = 0
        if hc is not None:
            for pe in hc.pes.values():
                if pe.state is not PEState.RUNNING:
                    continue  # not a victim: it was already down
                detail["pe_ids"].append(pe.pe_id)
                buffered += buffered_item_count(pe)
                for name, entries in capture_keyed_state(pe).items():
                    state.setdefault(name, {}).update(entries)
                for name, entries in capture_committed_state(engine, pe).items():
                    committed.setdefault(name, {}).update(entries)
        if detail["pe_ids"]:
            detail["buffered_at_crash"] = buffered
        if state:
            detail["_state_at_crash"] = state
        if committed:
            detail["_committed_at_crash"] = committed
        engine.system.failures.fail_host(host)
        return host, detail


@dataclass(repr=False)
class HostFlap(FailHost):
    """Kill a host, then revive it and restart its crashed PEs.

    Attributes:
        host: The host name to kill (or use ``host_of``).
        host_of: Kill the host of this operator (resolved at fire time).
        downtime: Seconds between the kill and the revive.
        rehydrate: Restore state when restarting the host's PEs.
        restart_pes: Re-issue SAM restarts for the crashed local PEs.
    """

    downtime: float = 3.0
    rehydrate: bool = True
    restart_pes: bool = True

    KIND = "host_flap"

    def inject(self, engine, run):
        """Kill now; schedule revive + PE restarts at ``downtime``."""
        host, detail = super().inject(engine, run)
        detail["downtime"] = self.downtime
        detail["rehydrate"] = self.rehydrate
        system = engine.system

        def recover() -> None:
            system.failures.revive_host(host)
            if not self.restart_pes:
                return
            for job in system.sam.running_jobs():
                for pe in job.pes:
                    if pe.host_name == host and pe.state is PEState.CRASHED:
                        system.failures.restart_pe(
                            job.job_id, pe.pe_id, rehydrate=self.rehydrate
                        )

        engine.kernel.schedule(
            self.downtime, recover, label=f"chaos-revive-{host}"
        )
        return host, detail


# ---------------------------------------------------------------------------
# network faults
# ---------------------------------------------------------------------------


@dataclass(repr=False)
class LatencySpike(Perturbation):
    """Add latency to matching transport links for a while.

    Attributes:
        extra: Seconds added to the base transport latency.
        duration: Seconds until the spike decays.
        src_host: Only links leaving this host (None: any).
        dst_host: Only links entering this host (None: any).
        dst_operator: Only links toward the PE hosting this operator.
    """

    extra: float = 0.05
    duration: float = 2.0
    src_host: Optional[str] = None
    dst_host: Optional[str] = None
    dst_operator: Optional[str] = None

    KIND = "latency_spike"

    def inject(self, engine, run):
        """Install the timed latency fault on the transport."""
        dst_pe = None
        if self.dst_operator is not None:
            dst_pe = self._resolve_pe(run, operator=self.dst_operator).pe_id
        fault = engine.system.transport.install_link_fault(
            extra_latency=self.extra,
            src_host=self.src_host,
            dst_host=self.dst_host,
            dst_pe=dst_pe,
            duration=self.duration,
        )
        target = dst_pe or self.dst_host or self.src_host or "all-links"
        return target, {
            "fault_id": fault.fault_id,
            "extra": self.extra,
            "duration": self.duration,
        }


@dataclass(repr=False)
class LinkPartition(Perturbation):
    """Partition matching links: items are held and flushed at heal time.

    Models TCP retransmission across a transient partition — delivery is
    delayed, never lost, and stays FIFO per connection.

    Attributes:
        duration: Seconds until the partition heals.
        src_host: Only links leaving this host (None: any).
        dst_host: Only links entering this host (None: any).
        dst_operator: Only links toward the PE hosting this operator.
    """

    duration: float = 1.0
    src_host: Optional[str] = None
    dst_host: Optional[str] = None
    dst_operator: Optional[str] = None

    KIND = "link_partition"

    def inject(self, engine, run):
        """Install the timed hold-until-heal fault on the transport."""
        dst_pe = None
        if self.dst_operator is not None:
            dst_pe = self._resolve_pe(run, operator=self.dst_operator).pe_id
        fault = engine.system.transport.install_link_fault(
            partition=True,
            src_host=self.src_host,
            dst_host=self.dst_host,
            dst_pe=dst_pe,
            duration=self.duration,
        )
        target = dst_pe or self.dst_host or self.src_host or "all-links"
        return target, {"fault_id": fault.fault_id, "duration": self.duration}


@dataclass(repr=False)
class LinkLoss(Perturbation):
    """Drop a seeded fraction of items on matching links for a while.

    Unlike :class:`LinkPartition` this *loses* data on a best-effort
    transport (counted in the transport's ``dropped_by_fault``); keep it
    out of best-effort scenarios that assert zero tuple loss.  The
    reliable delivery modes (``SystemConfig.delivery`` of
    ``"at_least_once"`` / ``"exactly_once"``) retransmit every dropped
    unit until it is acknowledged, so under them the drops are still
    *counted* but no tuple is ultimately lost.

    Attributes:
        drop_probability: Per-item drop chance in [0, 1].
        duration: Seconds until the fault decays.
        src_host: Only links leaving this host (None: any).
        dst_host: Only links entering this host (None: any).
    """

    drop_probability: float = 0.1
    duration: float = 2.0
    src_host: Optional[str] = None
    dst_host: Optional[str] = None

    KIND = "link_loss"

    def inject(self, engine, run):
        """Install the timed lossy fault on the transport."""
        fault = engine.system.transport.install_link_fault(
            drop_probability=self.drop_probability,
            src_host=self.src_host,
            dst_host=self.dst_host,
            duration=self.duration,
        )
        target = self.dst_host or self.src_host or "all-links"
        return target, {
            "fault_id": fault.fault_id,
            "drop_probability": self.drop_probability,
            "duration": self.duration,
        }


# ---------------------------------------------------------------------------
# load faults
# ---------------------------------------------------------------------------


@dataclass(repr=False)
class RateSurge(Perturbation):
    """Multiply the run's feed rate for a while, then restore it.

    Attributes:
        factor: Rate multiplier during the surge.
        duration: Seconds until the previous rate factor is restored
            (None: the surge persists).
    """

    factor: float = 4.0
    duration: Optional[float] = 5.0

    KIND = "rate_surge"

    def inject(self, engine, run):
        """Scale the feed; schedule the restore when ``duration`` is set.

        The surge composes *multiplicatively* with the current rate
        factor and its restore divides it back out, so overlapping
        surges stack and unwind correctly in any order.
        """
        feed = run.feed
        if feed is None:
            raise ChaosError("RateSurge needs a run with a feed")
        if self.factor <= 0.0:
            raise ChaosError("RateSurge factor must be > 0 (use duration-less"
                             " feed.set_rate_factor(0) to stop a feed)")
        previous = feed.rate_factor
        feed.set_rate_factor(previous * self.factor)
        if self.duration is not None:
            engine.kernel.schedule(
                self.duration,
                lambda: feed.set_rate_factor(feed.rate_factor / self.factor),
                label="chaos-surge-end",
            )
        return "feed", {
            "factor": self.factor,
            "previous": previous,
            "duration": self.duration,
        }


@dataclass(repr=False)
class KeySkewShift(Perturbation):
    """Concentrate traffic on a hot key set for a while.

    Attributes:
        hot_fraction: Fraction of tuples drawn from the hot keys.
        hot_keys: The hot key set (empty: the feed's default).
        duration: Seconds until the previous skew is restored (None:
            the shift persists).
    """

    hot_fraction: float = 0.8
    hot_keys: Sequence[str] = field(default_factory=tuple)
    duration: Optional[float] = 5.0

    KIND = "key_skew"

    def inject(self, engine, run):
        """Skew the feed; schedule the restore when ``duration`` is set.

        Windowed shifts ride the feed's skew *stack*
        (:meth:`~repro.apps.workloads.ChaosFeed.push_skew`): the newest
        open window is in force and expiries unwind to the newest
        surviving one, so overlapping windows — nested, staggered, or
        value-identical — always end at the uniform baseline once every
        window has expired.  Feeds without the stack API fall back to a
        one-shot ``set_skew`` with an unguarded restore.
        """
        feed = run.feed
        if feed is None:
            raise ChaosError("KeySkewShift needs a run with a feed")
        if hasattr(feed, "push_skew") and self.duration is not None:
            token = feed.push_skew(self.hot_fraction, tuple(self.hot_keys))
            engine.kernel.schedule(
                self.duration,
                lambda: feed.pop_skew(token),
                label="chaos-skew-end",
            )
        else:
            previous = feed.set_skew(self.hot_fraction, tuple(self.hot_keys))
            if self.duration is not None:
                engine.kernel.schedule(
                    self.duration,
                    lambda: feed.set_skew(
                        previous["hot_fraction"], previous["hot_keys"]
                    ),
                    label="chaos-skew-end",
                )
        return "feed", {
            "hot_fraction": self.hot_fraction,
            "hot_keys": list(self.hot_keys) or list(feed.hot_keys),
            "duration": self.duration,
        }


# ---------------------------------------------------------------------------
# durability & reconfiguration faults
# ---------------------------------------------------------------------------


@dataclass(repr=False)
class CheckpointFault(Perturbation):
    """Tear every checkpoint commit for a window (crash-between-record-
    and-commit semantics).

    Arms the checkpoint service's ``commit_fault`` hook for ``duration``
    seconds; epochs recorded in the window stay torn, so recoveries must
    fall back to the last committed epoch — exactly the torn-epoch path
    of :mod:`repro.checkpoint`.

    Attributes:
        duration: Seconds the hook stays armed.
    """

    duration: float = 2.0

    KIND = "checkpoint_fault"

    def inject(self, engine, run):
        """Arm the commit fault via the engine's refcounted window.

        Overlapping windows stack: commits stay torn until *every*
        window has expired, and the pre-campaign hook (if any) is
        restored exactly once.
        """
        engine.arm_checkpoint_fault()
        engine.kernel.schedule(
            self.duration, engine.disarm_checkpoint_fault, label="chaos-ckpt-heal"
        )
        return "checkpoints", {"duration": self.duration}


@dataclass(repr=False)
class Rescale(Perturbation):
    """Start a live re-parallelization of one region of the run's job.

    Lets campaigns race crashes and network faults against the rescale
    protocol's drain/migrate/rewire phases.

    Attributes:
        region: The parallel region name.
        width: Requested channel width.
    """

    region: str = "region"
    width: int = 2

    KIND = "rescale"

    def inject(self, engine, run):
        """Kick off ``set_channel_width`` on the elastic controller."""
        if run.job is None:
            raise ChaosError("Rescale needs a job-scoped run")
        operation = engine.system.elastic.set_channel_width(
            run.job, self.region, self.width
        )
        return f"{self.region}->{self.width}", {
            "region": self.region,
            "width": self.width,
            "old_width": operation.old_width,
        }


#: serialization registry: perturbation kind -> dataclass, the inverse of
#: ``Perturbation.KIND`` (used by the scenario corpus round-trip)
PERTURBATION_KINDS: Dict[str, type] = {
    cls.KIND: cls
    for cls in (
        CrashPE,
        RestartPE,
        PEFlap,
        FailHost,
        HostFlap,
        LatencySpike,
        LinkPartition,
        LinkLoss,
        RateSurge,
        KeySkewShift,
        CheckpointFault,
        Rescale,
    )
}


def perturbation_to_dict(perturbation: Perturbation) -> Dict[str, Any]:
    """Serialize one perturbation to a JSON-safe mapping.

    The mapping round-trips through :func:`perturbation_from_dict`:
    ``{"kind": <KIND>, "params": {<public dataclass fields>}}`` with
    tuples rendered as lists.

    Args:
        perturbation: The perturbation to serialize.

    Returns:
        A JSON-serializable dict.

    Raises:
        ChaosError: The perturbation's kind is not registered.
    """
    if perturbation.KIND not in PERTURBATION_KINDS:
        raise ChaosError(
            f"unserializable perturbation kind {perturbation.KIND!r}"
        )
    params = {
        key: (list(value) if isinstance(value, tuple) else value)
        for key, value in vars(perturbation).items()
        if not key.startswith("_")
    }
    return {"kind": perturbation.KIND, "params": params}


def perturbation_from_dict(data: Dict[str, Any]) -> Perturbation:
    """Rebuild a perturbation from its :func:`perturbation_to_dict` form.

    Args:
        data: ``{"kind": ..., "params": {...}}``.

    Returns:
        The reconstructed perturbation.

    Raises:
        ChaosError: Unknown kind or parameters the kind does not accept.
    """
    kind = data.get("kind")
    cls = PERTURBATION_KINDS.get(kind)
    if cls is None:
        raise ChaosError(
            f"unknown perturbation kind {kind!r} "
            f"(known: {sorted(PERTURBATION_KINDS)})"
        )
    params = dict(data.get("params", {}))
    if isinstance(params.get("hot_keys"), list):
        params["hot_keys"] = tuple(params["hot_keys"])
    try:
        return cls(**params)
    except TypeError as exc:
        raise ChaosError(f"bad parameters for {kind!r}: {exc}") from exc


def detail_public_view(detail: Dict[str, Any]) -> Dict[str, Any]:
    """The publishable slice of an injection detail map.

    Engine-internal keys (``_``-prefixed, e.g. captured state snapshots)
    are stripped; the rest is *deep*-copied so event handlers mutating
    nested values (the ``pe_ids`` list, sub-dicts) cannot corrupt the
    journal record the engine's recovery stamping depends on.

    Args:
        detail: The raw detail map recorded at injection time.

    Returns:
        A detached copy without private keys.
    """
    return copy.deepcopy(
        {k: v for k, v in detail.items() if not k.startswith("_")}
    )
