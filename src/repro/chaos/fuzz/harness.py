"""The standard stack one fuzz case executes on.

Every fuzz case builds a *fresh* simulated system (so cases are
independent and byte-deterministic per seed), runs one scenario against
the canonical elastic + checkpoint pipeline — a seeded
:class:`~repro.apps.workloads.ChaosFeed` into a partitioned
``KeyedCounter`` parallel region into a probe sink — drains it, scores
it, and judges it against the invariant-oracle suite.

The harness is also where a *deliberately weakened* configuration is
planted for self-tests of the fuzzer: ``torn_commits=True`` arms the
checkpoint service's existing ``commit_fault`` hook permanently, so the
stack claims checkpointed semantics while never committing an epoch —
any crash-with-rehydrate then restarts empty and the state-conservation
oracle must fire.  The CI ``chaos-fuzz`` job proves the search finds
and shrinks exactly that.

Barrier timestamps for the adversarial search come from the runtime
instrumentation taps — the elastic controller's
:class:`~repro.elastic.controller.BarrierEvent` timeline, checkpoint
commit/torn records, and splitter mask/unmask reroutes — subscribed
live through :func:`repro.obs.listeners.subscribe_runtime` rather than
by reaching into three subsystems after the run.

Every case also runs with span tracing enabled by default
(``trace=True``): the outcome carries the run's flight-recorder
timeline (reason ``oracle_violation:<oracles>`` when the oracle suite
fired, so every minimized corpus repro ships with its evidence trail)
and the byte-stable Prometheus export of the run's metrics.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.chaos.fuzz.oracles import (
    FifoProbe,
    OracleProfile,
    OracleReport,
    evaluate_oracles,
)
from repro.chaos.scenario import Scenario
from repro.chaos.scorecard import (
    ResilienceScorecard,
    collect_scorecard,
    live_keyed_state,
)

#: labels with this many barrier timestamps at most flow into one
#: outcome (mutation targets); keeps reports compact and deterministic
MAX_BARRIERS = 48


@dataclass(frozen=True)
class FuzzHarnessConfig:
    """One fuzz case's stack configuration.

    Attributes:
        seed: Root seed of the system's random streams.
        hosts: Cluster size.
        width: Initial parallel-region channel width.
        max_width: Region growth ceiling (rescale perturbations).
        n_keys: Feed key-universe size.
        base_rate: Feed tuples per 0.05 s tick.
        feed_seed: Feed's private stream seed.
        warmup: Sim-seconds of steady state before the scenario starts.
        duration: Sim-seconds the scenario window runs; stretched to
            ``scenario.horizon() + recovery_settle`` when a (possibly
            mutated) step lands near the end, so late faults still get
            their recovery inside the run.
        recovery_settle: Seconds past the scenario horizon the feed
            keeps running (covers downtime + restart delay of a
            last-instant flap).
        drain: Sim-seconds after the feed stops (in-flight tuples must
            not masquerade as losses).
        checkpoint_interval: Background checkpoint cadence (0 disables —
            the paper's restart-empty default).
        torn_commits: Plant the weakness: every checkpoint commit torn
            via the service's ``commit_fault`` hook.
        trace: Run with span tracing enabled, so the outcome carries a
            flight-recorder timeline and a Prometheus export.
        batch_max_size: Transport batch size trigger (1 = one-at-a-time
            delivery, the byte-stable corpus default; >1 runs the whole
            case over the batched transport hot path).
        batch_linger: Sim-time linger before a partial batch flushes.
        delivery: Transport delivery guarantee
            (``SystemConfig.delivery``); the derived oracle profile
            tightens or relaxes with it.
        profile: Oracle profile override (None: derived from the
            configuration and scenario by
            :meth:`OracleProfile.for_config`).
    """

    seed: int = 42
    hosts: int = 10
    width: int = 2
    max_width: int = 8
    n_keys: int = 12
    base_rate: int = 2
    feed_seed: int = 5
    warmup: float = 3.0
    duration: float = 10.0
    recovery_settle: float = 4.0
    drain: float = 4.0
    checkpoint_interval: float = 0.25
    torn_commits: bool = False
    trace: bool = True
    batch_max_size: int = 1
    batch_linger: float = 0.0
    delivery: str = "best_effort"
    #: cadence of the live keyed-state probes the oracle suite judges
    #: crash snapshots against right after each recovery
    probe_interval: float = 0.25
    profile: Optional[OracleProfile] = None

    def with_seed(self, seed: int) -> "FuzzHarnessConfig":
        """A copy of this config under a different root seed."""
        return replace(self, seed=seed)

    @classmethod
    def from_overrides(cls, overrides: Dict[str, Any]) -> "FuzzHarnessConfig":
        """Build a config from a corpus entry's ``harness`` mapping.

        Args:
            overrides: Field name -> value (unknown names rejected).

        Returns:
            The configured harness.

        Raises:
            TypeError: An override names no config field.
        """
        return cls(**overrides)


@dataclass
class FuzzOutcome:
    """Everything one executed fuzz case produced.

    Attributes:
        scenario: The scenario that ran (possibly a mutation).
        seed: The case's root seed.
        scorecard: The run's resilience scorecard.
        report: The oracle suite's verdict.
        barriers: ``(label, offset)`` mutation targets mined from the
            run — runtime-barrier instants relative to the scenario
            start, sorted and deduplicated.
        objective: The search's score for this case (higher = worse for
            the stack = more interesting).
        timeline: The run's rendered flight-recorder dump ("" when the
            case ran with ``trace=False``); the dump reason records
            whether the oracle suite fired.
        prometheus: The run's metrics in Prometheus text format ("" when
            untraced) — byte-stable for a fixed (scenario, config).
    """

    scenario: Scenario
    seed: int
    scorecard: ResilienceScorecard
    report: OracleReport
    barriers: Tuple[Tuple[str, float], ...] = ()
    objective: float = 0.0
    timeline: str = ""
    prometheus: str = ""

    @property
    def violations(self):
        """The run's oracle violations (shorthand)."""
        return self.report.violations


def objective_score(
    scorecard: ResilienceScorecard, report: OracleReport
) -> float:
    """The adversarial search's figure of demerit for one run.

    Oracle violations dominate by construction (one violation outweighs
    any latency), then exact losses/duplicates, then state-recovery
    shortfall, unrecovered faults, and finally recovery latency as the
    tie-breaker the search climbs while hunting a real violation.

    Args:
        scorecard: The run's scorecard.
        report: The run's oracle report.

    Returns:
        The (deterministic) objective; higher is worse for the stack.
    """
    return (
        1000.0 * len(report.violations)
        + 10.0 * scorecard.tuples_lost
        + 10.0 * scorecard.duplicates
        + 100.0 * (1.0 - scorecard.state_recovery)
        + 5.0 * scorecard.unrecovered_faults
        + scorecard.max_recovery
        + scorecard.orca_latency_max
    )


def _build_app(feed, width: int, max_width: int):
    """src -> partitioned KeyedCounter region -> sink (the fuzz pipeline)."""
    from repro.spl.application import Application
    from repro.spl.library import CallbackSource, KeyedCounter, Sink
    from repro.spl.parallel import parallel

    app = Application("FuzzBench")
    g = app.graph
    src = g.add_operator(
        "src",
        CallbackSource,
        params={"generator": feed.generator(), "period": 0.05},
        partition="feed",
    )
    work = g.add_operator(
        "work",
        KeyedCounter,
        params={"key": "key"},
        parallel=parallel(
            width=width,
            name="region",
            partition_by="key",
            max_width=max_width,
            reorder_grace=1.0,
        ),
    )
    sink = g.add_operator("sink", Sink, partition="out")
    g.connect(src.oport(0), work.iport(0))
    g.connect(work.oport(0), sink.iport(0))
    return app


def _mine_barriers(system) -> Tuple[List[Tuple[str, float]], Any]:
    """Subscribe live to the runtime-barrier taps of one fresh system.

    Sources: the elastic controller's rescale-phase tap, checkpoint
    commit/torn attempts, and splitter mask/unmask reroutes — all
    registered through :func:`repro.obs.listeners.subscribe_runtime`
    (one front door instead of post-hoc reads of three subsystems).

    Returns:
        ``(mined, subscription)``: the list ``(label, absolute time)``
        tuples accumulate into while the run executes, and the
        subscription to detach afterwards.
    """
    from repro.obs.listeners import subscribe_runtime

    mined: List[Tuple[str, float]] = []
    subscription = subscribe_runtime(
        system,
        on_barrier=lambda e: mined.append((f"rescale:{e.phase}", e.time)),
        on_checkpoint_attempt=lambda r: mined.append(
            ("checkpoint:commit" if r.committed else "checkpoint:torn", r.time)
        ),
        on_reroute=lambda r: mined.append(
            ("reroute:mask" if r.masked else "reroute:unmask", r.time)
        ),
    )
    return mined, subscription


def _collect_barriers(
    mined: List[Tuple[str, float]], start: float
) -> Tuple[Tuple[str, float], ...]:
    """Reduce mined barrier instants to the outcome's mutation targets.

    Offsets are relative to the scenario start; pre-start instants are
    dropped, but barriers observed after the last step (recovery and
    drain-phase commits) are kept — faults aimed there are
    interleavings worth exploring, and the harness stretches the run
    window to fit them.
    """
    barriers = sorted(
        {
            (label, round(time - start, 6))
            for label, time in mined
            if time - start >= 0.0
        },
        key=lambda entry: (entry[1], entry[0]),
    )
    return tuple(barriers[:MAX_BARRIERS])


def run_fuzz_case(
    scenario: Scenario, config: FuzzHarnessConfig
) -> FuzzOutcome:
    """Execute one scenario on a fresh stack and judge it.

    Args:
        scenario: The scenario to run (validated by the engine).
        config: The stack configuration.

    Returns:
        The :class:`FuzzOutcome` — byte-deterministic for a fixed
        ``(scenario, config)`` pair: running it twice yields identical
        rendered scorecards and oracle reports.
    """
    from repro import SystemConfig, SystemS
    from repro.apps.workloads import ChaosFeed
    from repro.chaos.perturbations import LinkLoss

    system = SystemS(
        hosts=config.hosts,
        seed=config.seed,
        config=SystemConfig(
            checkpoint_interval=config.checkpoint_interval,
            failure_notification_delay=0.001,
            trace_enabled=config.trace,
            batch_max_size=config.batch_max_size,
            batch_linger=config.batch_linger,
            delivery=config.delivery,
        ),
    )
    if config.torn_commits:
        system.checkpoints.commit_fault = lambda pe: True
    feed = ChaosFeed(
        n_keys=config.n_keys, base_rate=config.base_rate, seed=config.feed_seed
    )
    app = _build_app(feed, config.width, config.max_width)
    job = system.submit_job(app)
    probe = FifoProbe(system.transport)
    mined, barrier_sub = _mine_barriers(system)

    # Periodic live keyed-state probes: the state-conservation oracle
    # judges each crash snapshot at the first probe after its recovery,
    # before reset counters can recount their way past the loss.
    duration = max(
        config.duration, scenario.horizon() + config.recovery_settle
    )
    state_probes: List[Tuple[float, Dict[str, Dict[Any, Any]]]] = []
    probe_end = config.warmup + duration + config.drain

    def take_state_probe() -> None:
        plan_now = job.compiled.parallel_regions["region"]
        live = live_keyed_state(
            job, [op for ops in plan_now.channel_ops for op in ops]
        )
        state_probes.append((system.now, copy.deepcopy(live)))
        if system.now < probe_end:
            system.kernel.schedule(
                config.probe_interval, take_state_probe, label="fuzz-probe"
            )

    system.kernel.schedule(
        config.warmup, take_state_probe, label="fuzz-probe"
    )
    system.run_for(config.warmup)
    run = system.chaos.run_scenario(scenario, job=job, feed=feed)
    system.run_for(duration)
    feed.set_rate_factor(0.0)
    system.run_for(config.drain)

    sink_op = job.operator_instance("sink")
    seqs = [t["seq"] for t in sink_op.seen]
    plan = job.compiled.parallel_regions["region"]
    final_state = live_keyed_state(
        job, [op for ops in plan.channel_ops for op in ops]
    )
    scorecard = collect_scorecard(
        system, run, config.seed, seqs, feed.emitted, final_state=final_state
    )
    profile = config.profile
    if profile is None:
        lossless = not any(
            isinstance(s.perturbation, LinkLoss) for s in scenario.steps
        )
        profile = OracleProfile.for_config(
            checkpointed=config.checkpoint_interval > 0.0,
            lossless_network=lossless,
            delivery=config.delivery,
        )
    report = evaluate_oracles(
        system,
        run,
        scorecard,
        profile,
        fifo_probe=probe,
        state_probes=state_probes,
    )
    probe.detach()
    barrier_sub.detach()
    timeline = ""
    prometheus = ""
    if config.trace:
        # every traced case ships its evidence trail; an oracle violation
        # names the tripped oracles in the dump reason (the auto-dump the
        # corpus entries reference)
        reason = "fuzz_case_complete"
        if not report.ok:
            tripped = ",".join(sorted({v.oracle for v in report.violations}))
            reason = f"oracle_violation:{tripped}"
        dump = system.obs.flight.dump(reason, system.now, job_id=job.job_id)
        timeline = dump.render()
        prometheus = system.obs.render_prometheus()
    return FuzzOutcome(
        scenario=scenario,
        seed=config.seed,
        scorecard=scorecard,
        report=report,
        barriers=_collect_barriers(mined, run.started_at),
        objective=objective_score(scorecard, report),
        timeline=timeline,
        prometheus=prometheus,
    )
