"""The adversarial search driver.

Declared chaos campaigns fire at hand-picked times; the nastiest
interleavings — a crash *exactly* at the rescale drain barrier, a host
death between checkpoint record and commit — live in the gaps between
those times.  The driver hunts them:

1. **Seed sweep** — run the base scenario under every seed in the
   budget; each run's outcome carries the runtime-barrier instants the
   instrumentation taps observed (rescale phases, checkpoint
   commits/tears, splitter masks).
2. **Barrier-targeted mutation** — per seed, repeatedly pick a step and
   re-aim its firing time at one of the observed barriers (plus a small
   offset straddling it), keeping a mutation only when it *worsens* the
   objective (oracle violations dominate, then losses, recovery
   shortfall, and latency).  The mutation stream is seeded from
   ``(scenario name, seed, round)``, so a fixed budget explores the
   same schedule every time — the whole search is replayable.
3. **Stop on blood** — by default the search returns as soon as any
   oracle violation is found, handing the failing scenario to the
   shrinker (:mod:`repro.chaos.fuzz.shrink`).

Everything downstream of the run function is plain data, so the driver
works with any runner of type ``(Scenario, seed) -> FuzzOutcome`` — the
standard one is :func:`repro.chaos.fuzz.harness.run_fuzz_case`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.chaos.fuzz.harness import FuzzOutcome
from repro.chaos.scenario import Scenario, Step

#: step-time offsets tried around a targeted barrier: just before (the
#: fault lands while the barrier is being approached), exactly at, and
#: just after it
BARRIER_OFFSETS = (-0.08, -0.03, -0.01, 0.0, 0.02)


@dataclass(frozen=True)
class FuzzBudget:
    """How much searching one :func:`fuzz_scenario` call may do.

    Attributes:
        seeds: Root seeds swept, in order.
        mutation_rounds: Barrier-targeted mutations tried per seed.
        stop_on_violation: Return as soon as an oracle violation is
            found (the shrinker takes over from there).
    """

    seeds: Tuple[int, ...] = (42, 7, 19)
    mutation_rounds: int = 4
    stop_on_violation: bool = True


@dataclass
class SeedResult:
    """The worst outcome one seed's search line reached.

    Attributes:
        seed: The root seed.
        best: The worst-objective outcome found under this seed.
        runs: Scenario executions this seed consumed.
        mutations_kept: Mutations that worsened (and replaced) the
            current scenario.
        barriers_targeted: Distinct barrier labels aimed at.
    """

    seed: int
    best: FuzzOutcome
    runs: int = 1
    mutations_kept: int = 0
    barriers_targeted: List[str] = field(default_factory=list)


@dataclass
class FuzzReport:
    """The full result of one adversarial search.

    Attributes:
        scenario_name: The base scenario searched.
        results: Per-seed search lines, in sweep order.
        runs_executed: Total scenario executions consumed.
    """

    scenario_name: str
    results: List[SeedResult] = field(default_factory=list)
    runs_executed: int = 0

    @property
    def worst(self) -> FuzzOutcome:
        """The overall worst outcome (ties broken by sweep order)."""
        best = self.results[0].best
        for result in self.results[1:]:
            if result.best.objective > best.objective:
                best = result.best
        return best

    @property
    def found_violation(self) -> bool:
        """Whether any searched run broke an invariant."""
        return any(result.best.violations for result in self.results)

    def summary_lines(self) -> List[str]:
        """Render the search as deterministic, diff-stable text."""
        lines = [
            f"fuzz search: {self.scenario_name} "
            f"(seeds={[r.seed for r in self.results]}, "
            f"runs={self.runs_executed})",
        ]
        for result in self.results:
            targeted = ",".join(result.barriers_targeted) or "-"
            lines.append(
                f"  seed {result.seed}: objective={result.best.objective:.4f} "
                f"runs={result.runs} kept={result.mutations_kept} "
                f"violations={len(result.best.violations)} "
                f"barriers=[{targeted}]"
            )
        worst = self.worst
        lines.append(
            f"  worst: seed {worst.seed} objective={worst.objective:.4f} "
            f"steps={[round(s.at, 4) for s in worst.scenario.steps]}"
        )
        for violation in worst.violations:
            lines.append(f"    VIOLATION {violation.oracle}: {violation.detail}")
        return lines


def mutate_step_time(scenario: Scenario, index: int, new_at: float) -> Scenario:
    """A copy of ``scenario`` with one step re-aimed at ``new_at``.

    The scenario keeps its name (so the engine's per-scenario jitter
    stream stays the same) and the step keeps its perturbation and
    jitter window.

    Args:
        scenario: The scenario to mutate.
        index: Step to re-time.
        new_at: New firing offset (clamped to >= 0).

    Returns:
        The mutated scenario; the original is untouched.
    """
    steps = list(scenario.steps)
    old = steps[index]
    steps[index] = Step(
        at=max(0.0, round(new_at, 6)),
        perturbation=old.perturbation,
        jitter=old.jitter,
    )
    return Scenario(
        name=scenario.name, steps=steps, description=scenario.description
    )


def fuzz_scenario(
    scenario: Scenario,
    run_fn: Callable[[Scenario, int], FuzzOutcome],
    budget: Optional[FuzzBudget] = None,
) -> FuzzReport:
    """Search the seed x step-time space for the worst interleaving.

    Args:
        scenario: The base scenario (validated before the sweep).
        run_fn: Executes one ``(scenario, seed)`` case — typically a
            :func:`~repro.chaos.fuzz.harness.run_fuzz_case` closure over
            a :class:`~repro.chaos.fuzz.harness.FuzzHarnessConfig`.
        budget: Search budget (default: 3 seeds x 4 mutation rounds).

    Returns:
        The :class:`FuzzReport`; deterministic for a fixed budget —
        running the same search twice explores the identical schedule
        and returns identical summaries.
    """
    scenario.validate()
    budget = budget or FuzzBudget()
    report = FuzzReport(scenario_name=scenario.name)
    for seed in budget.seeds:
        current = scenario
        outcome = run_fn(current, seed)
        result = SeedResult(seed=seed, best=outcome)
        report.results.append(result)
        report.runs_executed += 1
        if outcome.violations and budget.stop_on_violation:
            return report
        for round_index in range(budget.mutation_rounds):
            barriers = result.best.barriers
            if not barriers or not current.steps:
                break
            rng = random.Random(f"fuzz:{scenario.name}:{seed}:{round_index}")
            step_index = rng.randrange(len(current.steps))
            label, barrier_at = barriers[rng.randrange(len(barriers))]
            offset = BARRIER_OFFSETS[rng.randrange(len(BARRIER_OFFSETS))]
            candidate = mutate_step_time(
                current, step_index, barrier_at + offset
            )
            result.barriers_targeted.append(label)
            mutated_outcome = run_fn(candidate, seed)
            result.runs += 1
            report.runs_executed += 1
            if mutated_outcome.violations and budget.stop_on_violation:
                # a violation is what the search hunts: it wins the seed
                # line outright, objective ties notwithstanding
                result.best = mutated_outcome
                result.mutations_kept += 1
                return report
            if mutated_outcome.objective > result.best.objective:
                result.best = mutated_outcome
                result.mutations_kept += 1
                current = candidate
    return report
