"""repro.chaos.fuzz — adversarial chaos search with invariant oracles.

PR 4's campaigns fire faults at *declared* times; the interleavings
that actually break reconfiguration protocols (Fries-style transaction
arguments, PAPERS.md) hide at runtime barriers the scenario author
cannot see.  This package turns the campaign suite into a property
fuzzer:

* :mod:`repro.chaos.fuzz.oracles` — the system-wide invariant suite
  (zero tuple loss, keyed-state conservation, epoch-clock monotonicity,
  per-connection FIFO, no phantom reroutes, no stuck rescales),
  conditioned on an :class:`OracleProfile` so restart-empty stacks are
  judged by what they actually promise;
* :mod:`repro.chaos.fuzz.harness` — builds a fresh elastic + checkpoint
  stack per case, runs one scenario, scores it, and mines runtime
  barrier timestamps from the new instrumentation taps;
* :mod:`repro.chaos.fuzz.search` — the seeded seed-sweep +
  barrier-targeted mutation driver maximizing an oracle-violation /
  latency objective;
* :mod:`repro.chaos.fuzz.shrink` — bisects a failing scenario to a
  minimal repro, ready for ``Scenario.to_dict`` serialization into the
  replayable corpus under ``tests/corpus/``.

See the "Fuzzing workflow" section of ``docs/chaos.md`` and the
runnable ``examples/chaos_fuzz.py``.
"""

from repro.chaos.fuzz.harness import (
    FuzzHarnessConfig,
    FuzzOutcome,
    objective_score,
    run_fuzz_case,
)
from repro.chaos.fuzz.oracles import (
    FifoProbe,
    OracleProfile,
    OracleReport,
    OracleViolation,
    evaluate_oracles,
)
from repro.chaos.fuzz.search import (
    FuzzBudget,
    FuzzReport,
    SeedResult,
    fuzz_scenario,
    mutate_step_time,
)
from repro.chaos.fuzz.shrink import ShrinkResult, shrink_scenario

__all__ = [
    "FifoProbe",
    "FuzzBudget",
    "FuzzHarnessConfig",
    "FuzzOutcome",
    "FuzzReport",
    "OracleProfile",
    "OracleReport",
    "OracleViolation",
    "SeedResult",
    "ShrinkResult",
    "evaluate_oracles",
    "fuzz_scenario",
    "mutate_step_time",
    "objective_score",
    "run_fuzz_case",
    "shrink_scenario",
]
