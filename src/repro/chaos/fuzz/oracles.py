"""System-wide invariant oracles for chaos runs.

An oracle is a predicate over a finished
:class:`~repro.chaos.engine.ScenarioRun` (plus its scorecard and the
system it ran on) that must hold for a *correct* stack no matter what
the scenario did.  The suite turns the campaign engine into a property
fuzzer: instead of per-campaign assertions, every run — searched,
mutated, shrunk, or replayed from the corpus — is judged against the
same invariants:

* **no unaccounted loss** — a lost tuple must be explained by crash or
  fault accounting (in-flight condemnation, lossy link, down-PE
  discard, crash-time operator buffer) on *every* stack; unexplained
  loss is a bug regardless of configuration;
* **zero tuple loss** — when nothing was condemned, every tuple arrives
  (promised only by checkpointed stacks on lossless networks);
* **no duplicates** — no ``seq`` is delivered twice;
* **keyed-state conservation** — each crash victim's *committed*
  checkpoint (its restore floor) is live right after its recovery,
  through rehydration, detour seeding, and reclaims (checkpointed
  stacks only);
* **checkpoint liveness** — a stack configured to checkpoint actually
  commits epochs during the run;
* **recovery completeness** — every flap-style fault whose victims still
  exist finished recovering;
* **epoch-clock monotonicity** — checkpoint chains are strictly
  increasing per PE and rescale/reclaim epochs are globally unique;
* **per-connection FIFO** — a :class:`FifoProbe` tapped into the
  transport saw no link deliver items out of send order;
* **no phantom reroutes** — splitter masks and unmasks alternate per
  channel (an unmask without a mask is the PR-2 phantom-reroute bug);
* **no stuck rescale** — no splitter is left quiesced and no rescale is
  still in flight after the run drained;
* **no step errors** — every scenario step applied cleanly.

Whether an invariant *applies* is the :class:`OracleProfile`'s call: a
restart-empty failover stack legitimately loses keyed state, so its
profile simply does not promise conservation — conditioning oracles on
the configuration under test is what keeps the fuzzer's violations
real instead of a pile of false positives.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from repro.chaos.scorecard import _recovery_components
from repro.runtime.transport import DeliveryRecord, Transport

if TYPE_CHECKING:  # pragma: no cover
    from repro.chaos.engine import ScenarioRun
    from repro.chaos.scorecard import ResilienceScorecard
    from repro.runtime.system import SystemS

#: injection kinds that schedule their own recovery — only these are
#: held to the recovery-completeness oracle (a bare crash_pe/fail_host
#: never promises to come back)
_FLAP_KINDS = frozenset({"pe_flap", "host_flap"})


@dataclass(frozen=True)
class OracleProfile:
    """Which invariants the configuration under test actually promises.

    Attributes:
        name: Profile label (appears in rendered reports).
        zero_tuple_loss: The stack promises no tuple is ever lost.
        zero_duplicates: The stack promises no tuple arrives twice.
        state_recovery_bar: Minimum fraction of each victim's *committed*
            checkpoint (the restore floor captured at crash time) that
            must be live right after its recovery completes, or None when
            the stack makes no state promise (restart-empty semantics,
            the paper's default).  Judging the committed floor — not live
            at-crash state — is deliberate: checkpoint *lag* loses the
            un-committed tail of every crash legitimately, so an at-crash
            bar would hand the fuzzer false positives at adversarial
            times; the committed floor is what the stack actually
            guarantees.  Judging *right after recovery* is equally
            deliberate: monotone counters recount their way past clobbered
            state by end of run.
        recovery_required: Flap-style faults must finish recovering.
        checkpoint_liveness: Commits must actually land during the run
            (a stack configured to checkpoint but never committing an
            epoch is broken even if nothing crashed).
        loss_forgiveness: How the zero-loss oracle treats accounted
            losses.  ``"condemned"`` (the historical best-effort rule)
            skips the check whenever *any* crash/fault accounting is
            nonzero — condemnation is restart-empty semantics, not a
            bug.  ``"buffered"`` forgives only crash-time operator
            buffers (an at-least-once transport recovers every wire
            casualty, but tuples parked inside a dying operator are
            beyond its reach).  ``"none"`` forgives nothing: an
            exactly-once stack replays condemned traffic, so *any*
            missing tuple is a violation no matter what the accounting
            says.
        at_crash_conservation: Judge each victim's *live at-crash*
            keyed snapshot instead of its committed restore floor.
            Only an exactly-once stack can promise this — epoch-aligned
            replay re-processes everything past the restored epoch, so
            checkpoint lag no longer excuses the un-committed tail.
        fifo_order: The transport promises per-connection FIFO.  An
            at-least-once receiver delivers retransmitted copies as
            they arrive, so its profile waives the FIFO probe.
    """

    name: str = "checkpointed"
    zero_tuple_loss: bool = True
    zero_duplicates: bool = True
    state_recovery_bar: Optional[float] = 0.90
    recovery_required: bool = True
    checkpoint_liveness: bool = True
    loss_forgiveness: str = "condemned"
    at_crash_conservation: bool = False
    fifo_order: bool = True

    @classmethod
    def for_config(
        cls,
        checkpointed: bool,
        lossless_network: bool = True,
        delivery: str = "best_effort",
    ) -> "OracleProfile":
        """Derive the promises from the stack configuration.

        Args:
            checkpointed: The stack runs periodic checkpointing (the
                zero-loss / state-conservation acceptance bar applies).
            lossless_network: The scenario injects no ``LinkLoss``
                faults (losses there are by design, not bugs — ignored
                by the reliable-delivery profiles, which recover them).
            delivery: The transport's delivery guarantee
                (``SystemConfig.delivery``).

        Returns:
            The matching profile: a restart-empty stack promises neither
            zero loss nor state conservation — exactly why the PR 4
            failover campaign must not raise false positives — while a
            checkpointed exactly-once stack promises everything,
            including zero loss on lossy networks and at-crash state
            conservation with no forgiveness path.
        """
        if delivery == "exactly_once":
            if checkpointed:
                return cls(
                    name="exactly_once",
                    zero_tuple_loss=True,
                    zero_duplicates=True,
                    state_recovery_bar=1.0,
                    loss_forgiveness="none",
                    at_crash_conservation=True,
                )
            return cls(
                name="exactly_once_restart_empty",
                zero_tuple_loss=False,
                zero_duplicates=True,
                state_recovery_bar=None,
                checkpoint_liveness=False,
                loss_forgiveness="buffered",
            )
        if delivery == "at_least_once":
            if checkpointed:
                return cls(
                    name="at_least_once",
                    zero_tuple_loss=False,
                    zero_duplicates=False,
                    fifo_order=False,
                    loss_forgiveness="buffered",
                )
            return cls(
                name="at_least_once_restart_empty",
                zero_tuple_loss=False,
                zero_duplicates=False,
                state_recovery_bar=None,
                checkpoint_liveness=False,
                fifo_order=False,
                loss_forgiveness="buffered",
            )
        if not checkpointed:
            return cls(
                name="restart_empty",
                zero_tuple_loss=False,
                zero_duplicates=lossless_network,
                state_recovery_bar=None,
                checkpoint_liveness=False,
            )
        if not lossless_network:
            return cls(
                name="checkpointed_lossy_net",
                zero_tuple_loss=False,
                zero_duplicates=False,
            )
        return cls()

    def override(self, **changes) -> "OracleProfile":
        """A copy with the given fields replaced (corpus-entry overrides)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class OracleViolation:
    """One invariant broken by one run."""

    oracle: str
    detail: str


@dataclass
class OracleReport:
    """The oracle suite's verdict over one finished run.

    Attributes:
        profile: The profile the run was judged under.
        violations: Every broken invariant (empty for a clean run).
        checked: Names of the oracles that applied.
        skipped: Oracle name -> why the profile exempted it.
    """

    profile: OracleProfile
    violations: List[OracleViolation] = field(default_factory=list)
    checked: List[str] = field(default_factory=list)
    skipped: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether every applicable invariant held."""
        return not self.violations

    def lines(self) -> List[str]:
        """Render the report as deterministic, diff-stable text."""
        out = [
            f"oracle profile: {self.profile.name} "
            f"(checked={len(self.checked)} skipped={len(self.skipped)})",
        ]
        for name, why in sorted(self.skipped.items()):
            out.append(f"  skipped {name}: {why}")
        if not self.violations:
            out.append("  verdict: all invariants held")
        for violation in self.violations:
            out.append(f"  VIOLATION {violation.oracle}: {violation.detail}")
        return out


class FifoProbe:
    """Transport tap asserting per-connection FIFO delivery.

    Attach before the run starts; the transport stamps every delivery
    with its per-link send index, and any link whose indices ever go
    backwards is a FIFO violation (a fault expiring or flushing
    mid-stream reordered a connection).

    Attributes:
        violations: ``(link, previous_seq, seq)`` for every reordered
            delivery observed.
    """

    def __init__(self, transport: Transport) -> None:
        """Attach to a transport's delivery taps.

        Args:
            transport: The transport to observe.
        """
        self._transport = transport
        self._last: Dict[Tuple[str, str], int] = {}
        self.deliveries = 0
        self.violations: List[Tuple[Tuple[str, str], int, int]] = []
        transport.delivery_taps.append(self._on_delivery)

    def _on_delivery(self, record: DeliveryRecord) -> None:
        link = (record.src_key, record.dst_pe_id)
        self.deliveries += 1
        if record.redelivery:
            # exactly-once crash replay legitimately rewinds a link to
            # its restored watermark and re-walks it in order: re-anchor
            # the monotonicity check instead of flagging the rewind
            self._last[link] = record.link_seq
            return
        last = self._last.get(link, 0)
        if record.link_seq <= last:
            self.violations.append((link, last, record.link_seq))
        else:
            self._last[link] = record.link_seq

    def detach(self) -> None:
        """Stop observing (idempotent)."""
        try:
            self._transport.delivery_taps.remove(self._on_delivery)
        except ValueError:
            pass


def _victims_exist(system: "SystemS", pe_ids) -> bool:
    """Whether any of the injection's victim PEs still exists in a job.

    A rescale may legitimately remove a crashed channel's PE before its
    flap restart fires; a victim that no longer exists can never be
    restarted, so holding it to recovery completeness would be a false
    positive (the crash was absorbed by the reconfiguration).
    """
    for job in system.sam.jobs.values():
        for pe in job.pes:
            if pe.pe_id in pe_ids:
                return True
    return False


#: one timestamped live-keyed-state observation: (sim time, state map)
StateProbe = Tuple[float, Dict[str, Dict[Any, Any]]]


def _post_recovery_fraction(
    snapshot: Dict[str, Dict[Any, Any]],
    recovered_at: float,
    state_probes: Sequence[StateProbe],
) -> Optional[float]:
    """A crash-time snapshot's live fraction at the first probe after
    recovery completed.

    Judging at recovery time (instead of end of run) is what catches
    restored-then-clobbered state on monotone counters: given enough
    runway a reset counter *recounts* past the reference value and
    end-of-run scoring masks the loss — the same trap the PR 4 failover
    benchmark dodges by probing right after the restart.  The snapshot
    judged here is the victim's *committed* restore floor, so ordinary
    checkpoint lag never trips the bar.

    Returns None when no probe lands after the recovery.
    """
    for time, live in state_probes:
        if time < recovered_at:
            continue
        recovered = total = 0.0
        for state_name, entries in snapshot.items():
            part_recovered, part_total = _recovery_components(
                entries, live.get(state_name, {})
            )
            recovered += part_recovered
            total += part_total
        return recovered / total if total else 1.0
    return None


def evaluate_oracles(
    system: "SystemS",
    run: "ScenarioRun",
    scorecard: "ResilienceScorecard",
    profile: OracleProfile,
    fifo_probe: Optional[FifoProbe] = None,
    state_probes: Sequence[StateProbe] = (),
) -> OracleReport:
    """Judge one finished run against every applicable invariant.

    Args:
        system: The system the run executed on (drained: call after the
            feed stopped and the pipeline emptied).
        run: The finished scenario run.
        scorecard: The run's collected scorecard.
        profile: Which invariants this configuration promises.
        fifo_probe: Probe attached before the run, when FIFO order
            should be judged (skipped otherwise).
        state_probes: Periodic live keyed-state observations; when
            given, each crash snapshot is additionally judged at the
            first probe after its recovery completed (see
            :func:`_post_recovery_fraction`).

    Returns:
        The populated :class:`OracleReport`, violations in oracle order.
    """
    from repro.chaos.engine import RECOVERABLE_KINDS  # late: import order

    report = OracleReport(profile=profile)

    def check(name: str) -> None:
        report.checked.append(name)

    def skip(name: str, why: str) -> None:
        report.skipped[name] = why

    def violate(name: str, detail: str) -> None:
        report.violations.append(OracleViolation(oracle=name, detail=detail))

    # -- tuple accounting ---------------------------------------------------
    # Unaccounted loss is a bug on EVERY stack: a lost tuple must be
    # explained by crash/fault accounting (in-flight condemnation, lossy
    # link, down-PE discard, or a crash-time operator buffer).
    check("no_unaccounted_loss")
    if scorecard.tuples_lost > scorecard.accounted_losses:
        violate(
            "no_unaccounted_loss",
            f"{scorecard.tuples_lost} tuples lost but only "
            f"{scorecard.accounted_losses} accounted for "
            f"(in_flight={scorecard.dropped_in_flight} "
            f"fault={scorecard.dropped_by_fault} "
            f"down_pe={scorecard.dropped_at_down_pe} "
            f"buffered={scorecard.buffered_at_crash})",
        )
    if not profile.zero_tuple_loss:
        skip("zero_tuple_loss", "profile makes no loss promise")
    elif (
        profile.loss_forgiveness == "condemned"
        and scorecard.accounted_losses > 0
    ):
        # crash-time condemnations are restart-empty semantics, not a
        # bug — the strict zero bar only applies to runs where no crash
        # caught data mid-hop (the campaign timing discipline)
        skip(
            "zero_tuple_loss",
            f"{scorecard.accounted_losses} item(s) condemned by "
            "crash/fault accounting",
        )
    elif (
        profile.loss_forgiveness == "buffered"
        and scorecard.buffered_at_crash > 0
    ):
        skip(
            "zero_tuple_loss",
            f"{scorecard.buffered_at_crash} item(s) died in crash-time "
            "operator buffers",
        )
    else:
        # loss_forgiveness == "none" lands here with any accounting: an
        # exactly-once transport replays condemned traffic, so nothing
        # excuses a missing tuple
        check("zero_tuple_loss")
        if scorecard.tuples_lost != 0:
            violate(
                "zero_tuple_loss",
                f"{scorecard.tuples_lost} of {scorecard.tuples_expected} "
                "tuples lost with nothing condemned",
            )
    if profile.zero_duplicates:
        check("no_duplicates")
        if scorecard.duplicates != 0:
            violate("no_duplicates", f"{scorecard.duplicates} duplicate seqs")
    else:
        skip("no_duplicates", "profile makes no duplicate promise")

    # -- keyed-state conservation -------------------------------------------
    if profile.state_recovery_bar is not None:
        check("state_conservation")
        # Judge each victim's *committed* checkpoint (the restore floor
        # captured at crash time) at the first probe after its recovery:
        # end-of-run scoring lets reset monotone counters recount past
        # the loss, and judging live at-crash state instead would flag
        # ordinary checkpoint lag as a violation.  An exactly-once
        # profile (at_crash_conservation) raises the reference to the
        # live at-crash snapshot — epoch-aligned replay re-processes
        # everything past the restored epoch, so lag is no excuse.
        floor_key = (
            "_state_at_crash"
            if profile.at_crash_conservation
            else "_committed_at_crash"
        )
        reference = (
            "at-crash state"
            if profile.at_crash_conservation
            else "committed checkpoint"
        )
        for injection in run.injections:
            floor = injection.detail.get(floor_key)
            if not floor or injection.recovered_at is None:
                continue
            if injection.detail.get("rehydrate") is False:
                continue  # the scenario asked for a restart-empty flap
            fraction = _post_recovery_fraction(
                floor, injection.recovered_at, state_probes
            )
            if fraction is not None and fraction < profile.state_recovery_bar:
                violate(
                    "state_conservation",
                    f"step {injection.step_index} ({injection.kind} -> "
                    f"{injection.target}): only {fraction:.4f} of the "
                    f"{reference} was live right after recovery "
                    f"(bar {profile.state_recovery_bar:.2f})",
                )
    else:
        skip("state_conservation", "restart-empty semantics (no promise)")

    # -- checkpoint liveness ------------------------------------------------
    if profile.checkpoint_liveness:
        check("checkpoint_liveness")
        service = system.checkpoints
        commits = [r for r in service.records if r.committed]
        fault_windows_end = max(
            (
                injection.time + injection.detail.get("duration", 0.0)
                for injection in run.injections
                if injection.kind == "checkpoint_fault"
            ),
            default=run.started_at,
        )
        commit_floor = max(run.started_at, fault_windows_end)
        if commit_floor > system.now - 2.0 * max(service.interval, 0.001):
            skip_reason = "commit-fault window covered the run tail"
            report.checked.remove("checkpoint_liveness")
            skip("checkpoint_liveness", skip_reason)
        elif not any(r.time >= commit_floor for r in commits):
            violate(
                "checkpoint_liveness",
                "checkpointing is configured but no epoch committed "
                f"after t={commit_floor:.2f} "
                f"({len(commits)} commit(s) overall)",
            )
    else:
        skip("checkpoint_liveness", "checkpointing disabled by design")

    # -- recovery completeness ----------------------------------------------
    if profile.recovery_required:
        check("recovery_completeness")
        for injection in run.injections:
            if injection.kind not in _FLAP_KINDS:
                continue
            if injection.kind not in RECOVERABLE_KINDS:
                continue  # pragma: no cover - flap kinds are recoverable
            if injection.recovered_at is not None:
                continue
            pe_ids = tuple(injection.detail.get("pe_ids", ()))
            if pe_ids and not _victims_exist(system, pe_ids):
                continue  # victims removed by a rescale: nothing to restart
            restart_delay = getattr(system.config, "pe_restart_delay", 1.0)
            earliest_recovery = (
                injection.time
                + injection.detail.get("downtime", 0.0)
                + restart_delay
            )
            if earliest_recovery >= system.now:
                continue  # the recovery could not have completed in-window
            violate(
                "recovery_completeness",
                f"step {injection.step_index} ({injection.kind} -> "
                f"{injection.target}) never finished recovering",
            )
    else:
        skip("recovery_completeness", "profile waives recovery")

    # -- epoch-clock monotonicity -------------------------------------------
    check("epoch_monotonicity")
    store = system.checkpoint_store
    for (job_id, pe_id), chain in sorted(store.all_chains().items()):
        epochs = [entry.epoch for entry in chain]
        if any(b <= a for a, b in zip(epochs, epochs[1:])):
            violate(
                "epoch_monotonicity",
                f"checkpoint chain of ({job_id}, {pe_id}) not strictly "
                f"increasing: {epochs}",
            )
    seen_epochs: Dict[int, str] = {}
    labeled = [
        (op.epoch, f"rescale {op.region}->{op.new_width}")
        for op in system.elastic.history
        if op.epoch > 0
    ] + [
        (reclaim.epoch, f"reclaim {reclaim.region}ch{reclaim.channels}")
        for reclaim in system.elastic.reclaims
    ]
    for epoch, label in labeled:
        if epoch in seen_epochs:
            violate(
                "epoch_monotonicity",
                f"epoch {epoch} issued twice: {seen_epochs[epoch]} and {label}",
            )
        seen_epochs[epoch] = label
        if epoch > store.epochs.current:
            violate(
                "epoch_monotonicity",
                f"{label} carries epoch {epoch} beyond the clock "
                f"({store.epochs.current})",
            )

    # -- per-connection FIFO ------------------------------------------------
    if not profile.fifo_order:
        skip("fifo_per_connection", "profile makes no FIFO promise")
    elif fifo_probe is not None:
        check("fifo_per_connection")
        for link, last, seq in fifo_probe.violations:
            violate(
                "fifo_per_connection",
                f"link {link[0] or '<ext>'}->{link[1]} delivered send #{seq} "
                f"after #{last}",
            )
    else:
        skip("fifo_per_connection", "no probe attached")

    # -- no phantom reroutes ------------------------------------------------
    check("no_phantom_reroutes")
    masked: Dict[Tuple[str, str, int], bool] = {}
    for reroute in system.elastic.reroutes:
        key = (reroute.job_id, reroute.region, reroute.channel)
        if reroute.masked:
            if masked.get(key):
                violate(
                    "no_phantom_reroutes",
                    f"channel {key} masked twice without an unmask",
                )
            masked[key] = True
        else:
            if not masked.get(key):
                violate(
                    "no_phantom_reroutes",
                    f"channel {key} unmasked without a prior mask",
                )
            masked[key] = False

    # -- no stuck rescale / quiesced splitter -------------------------------
    check("no_stuck_rescale")
    for operation in system.elastic.active_operations():
        violate(
            "no_stuck_rescale",
            f"rescale of {operation.region!r} ({operation.job_id}) still "
            "in flight after drain",
        )
    for job in system.sam.running_jobs():
        for plan in job.compiled.parallel_regions.values():
            splitter = job.operator_instance(plan.splitter)
            if splitter is not None and getattr(splitter, "is_quiesced", False):
                violate(
                    "no_stuck_rescale",
                    f"splitter of {plan.name!r} ({job.job_id}) left quiesced",
                )

    # -- no step errors -----------------------------------------------------
    check("no_step_errors")
    for index, error in run.errors:
        violate("no_step_errors", f"step {index} raised: {error}")

    return report
