"""The failing-scenario shrinker.

A scenario the search flagged usually carries bystander steps — latency
waves and load surges that rode along while one flap did the damage.
The shrinker bisects the step list (delta-debugging style: drop halves,
then quarters, down to single steps, looping to a fixed point) and
keeps a removal only when the reduced scenario *still fails* the
predicate, yielding the minimal repro that is then serialized
(``Scenario.to_dict``) into the regression corpus under
``tests/corpus/``.

Shrinking is deterministic: candidates are tried in a fixed order and
the predicate re-executes real runs, so the same failing input always
shrinks to the same minimized scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

from repro.chaos.scenario import Scenario, Step


@dataclass
class ShrinkResult:
    """What one shrink pass achieved.

    Attributes:
        scenario: The minimized, still-failing scenario.
        original_steps: Step count before shrinking.
        runs: Predicate executions consumed.
        removed: Step descriptions dropped along the way, in removal
            order.
    """

    scenario: Scenario
    original_steps: int
    runs: int = 0
    removed: List[str] = field(default_factory=list)

    @property
    def steps(self) -> int:
        """Step count of the minimized scenario."""
        return len(self.scenario.steps)


def shrink_scenario(
    scenario: Scenario,
    still_failing: Callable[[Scenario], bool],
    max_runs: int = 64,
) -> ShrinkResult:
    """Reduce a failing scenario to a minimal still-failing repro.

    Args:
        scenario: The scenario the search flagged (must currently fail
            ``still_failing`` — the shrinker trusts the caller on that
            and only ever *keeps* reductions that still fail).
        still_failing: Re-runs a candidate and reports whether the
            failure persists (typically: the oracle suite still finds a
            violation).
        max_runs: Hard cap on predicate executions; the best-so-far
            scenario is returned when it is exhausted.

    Returns:
        The :class:`ShrinkResult` with the minimized scenario — 1-step
        minimal when a single step reproduces the failure.
    """
    steps = list(scenario.steps)
    result = ShrinkResult(scenario=scenario, original_steps=len(steps))

    def rebuild(subset: List[Step]) -> Scenario:
        return Scenario(
            name=scenario.name,
            steps=list(subset),
            description=scenario.description,
        )

    def describe(scenario_step: Step) -> str:
        return (
            f"{scenario_step.perturbation.KIND}@{scenario_step.at:.4f}"
        )

    changed = True
    while changed and len(steps) > 1:
        changed = False
        chunk = max(1, len(steps) // 2)
        while chunk >= 1:
            index = 0
            while index < len(steps) and len(steps) > 1:
                trial = steps[:index] + steps[index + chunk:]
                if not trial:
                    index += chunk
                    continue
                if result.runs >= max_runs:
                    result.scenario = rebuild(steps)
                    return result
                result.runs += 1
                if still_failing(rebuild(trial)):
                    result.removed.extend(
                        describe(s) for s in steps[index:index + chunk]
                    )
                    steps = trial
                    changed = True
                else:
                    index += chunk
            chunk //= 2
    result.scenario = rebuild(steps)
    return result
