"""Resilience scorecards: what one chaos run did to the application.

A :class:`ResilienceScorecard` condenses a scenario run into the numbers
the roadmap asks every robustness claim to stand on:

* **tuple accounting** — expected vs received, exact losses and
  duplicates, judged on the globally contiguous ``seq`` stamped by
  :class:`~repro.apps.workloads.ChaosFeed`;
* **state recovery** — the fraction of keyed state captured at each
  crash that is present in the live operators afterwards (1.0 means
  every key continued from at least its at-crash value);
* **recovery latency** — per-fault crash-to-recovered times, stamped by
  the engine's restart observer;
* **control-plane health** — ORCA events delivered and their queue
  latency (sim time, so deterministic), handler errors;
* **transport accounting** — in-flight drops on crashes and fault drops.

Every field derives from *simulated* time and seeded streams only —
never wall clock — so the rendered scorecard of a seeded run is
byte-identical across repeat executions, which is exactly what the CI
``chaos-smoke`` determinism check diffs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.chaos.engine import ScenarioRun
    from repro.obs.health import HealthMonitor
    from repro.orca.service import OrcaService
    from repro.runtime.job import Job
    from repro.runtime.system import SystemS


def tuple_accounting(
    received_seqs: Sequence[int], expected: int
) -> Tuple[int, int, int]:
    """Exact loss/duplicate accounting over contiguous sequence numbers.

    Args:
        received_seqs: Every ``seq`` the sink saw, in arrival order.
        expected: Number of tuples generated (``feed.emitted``).

    Returns:
        ``(distinct_received, lost, duplicates)``.
    """
    distinct = set(received_seqs)
    lost = expected - len(distinct)
    duplicates = len(received_seqs) - len(distinct)
    return len(distinct), lost, duplicates


def _recovery_components(
    at_crash: Dict[Any, Any], final: Dict[Any, Any]
) -> Tuple[float, float]:
    """``(recovered, total)`` weight of one keyed map vs its snapshot."""
    total = 0.0
    recovered = 0.0
    for key, value in at_crash.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            total += 1.0
            recovered += 1.0 if key in final else 0.0
        else:
            total += float(value)
            other = final.get(key, 0)
            if isinstance(other, bool) or not isinstance(other, (int, float)):
                other = float(value)  # type changed: count as present
            recovered += min(float(other), float(value))
    return recovered, total


def state_recovery_fraction(
    at_crash: Dict[Any, Any], final: Dict[Any, Any]
) -> float:
    """How much of a crash-time keyed snapshot survives in live state.

    Numeric values compare by magnitude (``min(final, at_crash)`` counts
    as recovered — monotone counters that kept growing score 1.0);
    non-numeric values count by key presence.

    Args:
        at_crash: ``key -> value`` captured at the instant of the crash.
        final: ``key -> value`` merged from live operators afterwards.

    Returns:
        Recovered fraction in [0, 1]; 1.0 for an empty snapshot.
    """
    recovered, total = _recovery_components(at_crash, final)
    return recovered / total if total else 1.0


def live_keyed_state(
    job: "Job", operator_names: Iterable[str], state_name: Optional[str] = None
) -> Dict[str, Dict[Any, Any]]:
    """Merge the live keyed state of a set of operators, per state name.

    Values are merged *within* each keyed-state name (never across
    states — a ``count`` of 3 and a ``sum`` of 500 under the same key
    are unrelated quantities).  Keys owned by exactly one channel merge
    trivially; if a key appears on several operators (mid-detour),
    numeric values keep the maximum (counters are monotone) and other
    values keep the last seen.

    Args:
        job: The job owning the operators.
        operator_names: Operator full names to scan (e.g. every channel
            instance of a region).
        state_name: Restrict to one keyed state (None: all).

    Returns:
        ``state_name -> {key: value}`` — the same shape crash snapshots
        use, ready for :func:`collect_scorecard`'s ``final_state``.
    """
    merged: Dict[str, Dict[Any, Any]] = {}
    for op_name in operator_names:
        instance = job.operator_instance(op_name)
        if instance is None or not instance.state.in_use:
            continue
        for name, keyed in instance.state.keyed_states().items():
            if state_name is not None and name != state_name:
                continue
            bucket = merged.setdefault(name, {})
            for key, value in keyed.items():
                current = bucket.get(key)
                if (
                    isinstance(current, (int, float))
                    and not isinstance(current, bool)
                    and isinstance(value, (int, float))
                    and not isinstance(value, bool)
                ):
                    bucket[key] = max(current, value)
                else:
                    bucket[key] = value
    return merged


@dataclass
class ResilienceScorecard:
    """The measured outcome of one chaos scenario run.

    All times are simulated seconds; every field is deterministic for a
    fixed seed (see the module docstring).
    """

    scenario: str
    seed: int
    duration: float
    injections: int
    injections_by_kind: Dict[str, int] = field(default_factory=dict)
    noop_injections: int = 0
    step_errors: int = 0
    tuples_expected: int = 0
    tuples_received: int = 0
    tuples_lost: int = 0
    duplicates: int = 0
    state_recovery: float = 1.0
    crash_snapshots: int = 0
    recovery_times: Tuple[float, ...] = ()
    unrecovered_faults: int = 0
    orca_events: int = 0
    orca_latency_mean: float = 0.0
    orca_latency_max: float = 0.0
    orca_handler_errors: int = 0
    dropped_in_flight: int = 0
    dropped_by_fault: int = 0
    #: items discarded because their destination PE was down (per-run delta)
    dropped_at_down_pe: int = 0
    #: items sitting in victim operator buffers at crash instants (those
    #: died with the process — restart-empty semantics, not a bug)
    buffered_at_crash: int = 0
    #: transport delivery guarantee the run executed under; reliable
    #: modes add a "delivery:" line to the render (best_effort keeps the
    #: historical 7-line format byte-identical)
    delivery: str = "best_effort"
    #: reliable modes: wire units re-sent after an ack timeout (per-run delta)
    retransmissions: int = 0
    #: reliable modes: ack events received by senders (per-run delta)
    acks: int = 0
    #: exactly-once: arrivals suppressed by the receiver watermark (per-run
    #: delta)
    duplicates_suppressed: int = 0
    #: exactly-once: units replayed from the buffer after a restart
    #: (per-run delta)
    replayed: int = 0
    #: health plane: SLO alerts fired during the run (None: the caller
    #: did not wire a monitor — the historical render stays byte-identical)
    health_alerts: Optional[int] = None
    #: health plane: alerts that escalated to page severity
    health_pages: int = 0
    #: health plane: worst per-link lag watermark seen at any tick
    peak_link_lag: float = 0.0
    #: health plane: worst per-link in-flight depth seen at any tick
    peak_queue_depth: int = 0
    #: health plane: final bottleneck attribution ("" when calm)
    bottleneck: str = ""

    @property
    def accounted_losses(self) -> int:
        """Ceiling on explainable tuple loss (crash/fault accounting).

        Every lost tuple must be covered by an in-flight condemnation, a
        lossy link fault, a down-PE discard, or a crash-time operator
        buffer — ``tuples_lost`` exceeding this sum means the system lost
        data *without* any crash to blame, which is the fuzzer's
        unaccounted-loss invariant violation.
        """
        return (
            self.dropped_in_flight
            + self.dropped_by_fault
            + self.dropped_at_down_pe
            + self.buffered_at_crash
        )

    @property
    def mean_recovery(self) -> float:
        """Mean crash-to-recovered latency (0.0 with no recoveries)."""
        if not self.recovery_times:
            return 0.0
        return sum(self.recovery_times) / len(self.recovery_times)

    @property
    def max_recovery(self) -> float:
        """Worst crash-to-recovered latency (0.0 with no recoveries)."""
        return max(self.recovery_times, default=0.0)

    def lines(self) -> List[str]:
        """Render the scorecard as deterministic, diff-stable text."""
        by_kind = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(self.injections_by_kind.items())
        )
        recoveries = ", ".join(f"{t:.3f}" for t in self.recovery_times)
        out = [
            f"scenario: {self.scenario} (seed {self.seed}, "
            f"{self.duration:.2f} sim-s)",
            f"injections: {self.injections} [{by_kind}] "
            f"noops={self.noop_injections} errors={self.step_errors}",
            f"tuples: expected={self.tuples_expected} "
            f"received={self.tuples_received} lost={self.tuples_lost} "
            f"duplicates={self.duplicates}",
            f"state recovery: {self.state_recovery * 100:.2f}% "
            f"over {self.crash_snapshots} crash snapshot(s)",
            f"recovery times (s): [{recoveries}] "
            f"mean={self.mean_recovery:.3f} max={self.max_recovery:.3f} "
            f"unrecovered={self.unrecovered_faults}",
            f"orca: events={self.orca_events} "
            f"queue latency mean={self.orca_latency_mean:.4f}s "
            f"max={self.orca_latency_max:.4f}s "
            f"handler errors={self.orca_handler_errors}",
            f"transport: dropped_in_flight={self.dropped_in_flight} "
            f"dropped_by_fault={self.dropped_by_fault} "
            f"dropped_at_down_pe={self.dropped_at_down_pe} "
            f"buffered_at_crash={self.buffered_at_crash}",
        ]
        if self.delivery != "best_effort":
            out.append(
                f"delivery: {self.delivery} "
                f"retransmissions={self.retransmissions} "
                f"acks={self.acks} "
                f"duplicates_suppressed={self.duplicates_suppressed} "
                f"replayed={self.replayed}"
            )
        if self.health_alerts is not None:
            out.append(
                f"health: alerts={self.health_alerts} "
                f"pages={self.health_pages} "
                f"peak_lag={self.peak_link_lag:.6f} "
                f"peak_queue={self.peak_queue_depth} "
                f"bottleneck={self.bottleneck or '-'}"
            )
        return out

    def render(self) -> str:
        """The full scorecard text (newline-terminated)."""
        return "\n".join(self.lines()) + "\n"

    def gauges(self) -> Dict[str, float]:
        """The scorecard as SRM gauge values (``chaos*`` names)."""
        return {
            "chaosTuplesExpected": float(self.tuples_expected),
            "chaosTuplesLost": float(self.tuples_lost),
            "chaosDuplicates": float(self.duplicates),
            "chaosStateRecovery": self.state_recovery,
            "chaosMeanRecovery": self.mean_recovery,
            "chaosMaxRecovery": self.max_recovery,
            "chaosOrcaLatencyMax": self.orca_latency_max,
        }


def collect_scorecard(
    system: "SystemS",
    run: "ScenarioRun",
    seed: int,
    received_seqs: Sequence[int],
    expected: int,
    final_state: Optional[Dict[str, Dict[Any, Any]]] = None,
    orca: Optional["OrcaService"] = None,
    health: Optional["HealthMonitor"] = None,
) -> ResilienceScorecard:
    """Assemble a scorecard from a finished scenario run.

    Args:
        system: The system the run executed on.
        run: The finished :class:`~repro.chaos.engine.ScenarioRun`.
        seed: The run's root seed (recorded for the header).
        received_seqs: Every ``seq`` the probe sink received.
        expected: Tuples generated by the feed (``feed.emitted``).
        final_state: Live keyed state to judge crash snapshots against,
            shaped ``state_name -> {key: value}`` (what
            :func:`live_keyed_state` returns).  None scores every
            captured snapshot as unrecovered.
        orca: Orchestrator whose event-queue statistics to include.
            These are *service-lifetime* numbers (the queue does not
            track per-run baselines); transport and no-op counters, by
            contrast, are reported as per-run deltas.
        health: Health monitor (``system.obs.health``) whose alert and
            peak-pressure summary to include.  None omits the
            ``health:`` line entirely, keeping historical scorecards
            byte-identical.

    Returns:
        The populated :class:`ResilienceScorecard`.
    """
    from repro.chaos.engine import RECOVERABLE_KINDS  # late: import order

    received, lost, duplicates = tuple_accounting(received_seqs, expected)
    by_kind: Dict[str, int] = {}
    recovery_times: List[float] = []
    unrecovered = 0
    fractions: List[float] = []
    buffered_at_crash = 0
    for injection in run.injections:
        by_kind[injection.kind] = by_kind.get(injection.kind, 0) + 1
        buffered_at_crash += injection.detail.get("buffered_at_crash", 0)
        if injection.recovery_time is not None:
            recovery_times.append(injection.recovery_time)
        elif injection.kind in RECOVERABLE_KINDS:
            unrecovered += 1
        snapshot = injection.detail.get("_state_at_crash")
        if snapshot:
            # compare per keyed-state name: identical keys in different
            # states (a count of 3, a sum of 500) are unrelated values
            recovered = total = 0.0
            for state_name, entries in snapshot.items():
                r, t = _recovery_components(
                    entries, (final_state or {}).get(state_name, {})
                )
                recovered += r
                total += t
            fractions.append(recovered / total if total else 1.0)
    # per-run deltas over the run-start baselines: several runs may share
    # one system, and lifetime totals would double-count earlier runs
    base = run.baselines
    scorecard = ResilienceScorecard(
        scenario=run.scenario.name,
        seed=seed,
        duration=system.now - run.started_at,
        injections=len(run.injections),
        injections_by_kind=by_kind,
        noop_injections=len(system.failures.noops) - base.get("noops", 0),
        step_errors=len(run.errors),
        tuples_expected=expected,
        tuples_received=received,
        tuples_lost=lost,
        duplicates=duplicates,
        state_recovery=(
            sum(fractions) / len(fractions) if fractions else 1.0
        ),
        crash_snapshots=len(fractions),
        recovery_times=tuple(recovery_times),
        unrecovered_faults=unrecovered,
        orca_events=(orca.queue.delivered_count if orca is not None else 0),
        orca_latency_mean=(
            orca.queue_latency_stats().mean if orca is not None else 0.0
        ),
        orca_latency_max=(
            orca.queue_latency_stats().maximum if orca is not None else 0.0
        ),
        orca_handler_errors=(
            len(orca.handler_errors) if orca is not None else 0
        ),
        dropped_in_flight=(
            system.transport.dropped_in_flight
            - base.get("dropped_in_flight", 0)
        ),
        dropped_by_fault=(
            system.transport.dropped_by_fault
            - base.get("dropped_by_fault", 0)
        ),
        dropped_at_down_pe=(
            system.transport.total_dropped - base.get("total_dropped", 0)
        ),
        buffered_at_crash=buffered_at_crash,
        delivery=system.transport.delivery,
        retransmissions=(
            system.transport.retransmissions - base.get("retransmissions", 0)
        ),
        acks=system.transport.acks - base.get("acks", 0),
        duplicates_suppressed=(
            system.transport.duplicates_suppressed
            - base.get("duplicates_suppressed", 0)
        ),
        replayed=system.transport.replayed - base.get("replayed", 0),
        health_alerts=(health.alerts_fired if health is not None else None),
        health_pages=(health.pages_fired if health is not None else 0),
        peak_link_lag=(health.peak_link_lag if health is not None else 0.0),
        peak_queue_depth=(
            health.peak_queue_depth if health is not None else 0
        ),
        bottleneck=(health.peak_bottleneck if health is not None else ""),
    )
    system.chaos.publish_scorecard_gauges(run.scenario.name, scorecard.gauges())
    return scorecard
