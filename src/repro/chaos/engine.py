"""The deterministic chaos-campaign engine.

The engine executes :class:`~repro.chaos.scenario.Scenario` objects on a
running :class:`~repro.runtime.system.SystemS`: every step is scheduled
on the simulation kernel (jitter drawn from a per-scenario seeded
stream), fired through its perturbation, and recorded as a
:class:`ChaosInjection`.  Each injection is

* appended to :attr:`ChaosEngine.injections` (the campaign journal),
* pushed to every registered injection listener — the ORCA service
  registers here and turns injections into ``chaos_injected`` events
  (subject to :class:`~repro.orca.scopes.ChaosScope` matching, so a
  routine can equally be tested *blind* to injected faults by simply not
  registering the scope),
* reflected into SRM as ``chaos*`` gauges under the synthetic
  ``__chaos__`` job, so campaign progress is queryable through the same
  metric store as everything else.

Recovery is tracked automatically: the engine observes SAM's completed
PE restarts and stamps ``recovered_at`` on the matching crash-class
injections, which is where scorecard recovery times come from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from repro.chaos.perturbations import detail_public_view
from repro.chaos.scenario import Scenario
from repro.runtime.pe import PERuntime, PEState
from repro.runtime.srm import MetricSample
from repro.sim.kernel import ScheduledEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.job import Job
    from repro.runtime.system import SystemS

#: injection kinds whose targets are expected to come back (flaps and
#: crashes) — only these get recovery stamps, and only these count as
#: unrecovered in scorecards (the single source of truth for both)
RECOVERABLE_KINDS = frozenset(
    {"crash_pe", "pe_flap", "fail_host", "host_flap"}
)

#: job id the engine's SRM gauges are stored under (never a real job, so
#: orchestrator metric polls scoped to managed jobs are not polluted)
CHAOS_JOB_ID = "__chaos__"


@dataclass
class ChaosInjection:
    """One fired chaos step, as recorded in the campaign journal.

    Attributes:
        run_id: The owning scenario run.
        scenario: Scenario name.
        step_index: Index of the step within the scenario.
        kind: Perturbation kind (``pe_flap``, ``latency_spike``, ...).
        target: Human-readable target (PE id, host, region, "feed").
        time: Sim time the step fired.
        job_id: The run's job, when job-scoped.
        detail: Perturbation-specific payload; ``_``-prefixed keys are
            engine-internal (state snapshots) and excluded from events.
        recovered_at: Sim time the target finished recovering (crash
            kinds only; None while down or for irreversible kinds).
    """

    run_id: str
    scenario: str
    step_index: int
    kind: str
    target: str
    time: float
    job_id: Optional[str] = None
    detail: Dict[str, Any] = field(default_factory=dict)
    recovered_at: Optional[float] = None

    @property
    def recovery_time(self) -> Optional[float]:
        """Seconds from injection to recovery (None while unrecovered)."""
        if self.recovered_at is None:
            return None
        return self.recovered_at - self.time

    def public_detail(self) -> Dict[str, Any]:
        """The detail map with engine-internal keys stripped."""
        return detail_public_view(self.detail)


@dataclass
class ScenarioRun:
    """One scheduled execution of a scenario.

    Attributes:
        run_id: Unique id (``chaos-1``, ``chaos-2``, ...).
        scenario: The scenario being executed.
        job: The job perturbations resolve operators against (optional).
        feed: The :class:`~repro.apps.workloads.ChaosFeed` load
            perturbations control (optional).
        started_at: Sim time of the scenario's t=0.
        step_times: Resolved absolute firing time per step (seeded
            jitter applied).
        injections: The run's fired injections, in order.
        errors: ``(step_index, repr(exc))`` for steps whose perturbation
            raised — recorded, never propagated into the kernel.
    """

    run_id: str
    scenario: Scenario
    job: Optional["Job"] = None
    feed: Optional[Any] = None
    started_at: float = 0.0
    step_times: List[float] = field(default_factory=list)
    injections: List[ChaosInjection] = field(default_factory=list)
    errors: List[tuple] = field(default_factory=list)
    cancelled_steps: int = 0
    #: system-lifetime counter values at run start, so scorecards can
    #: report per-run deltas even when several runs share one system
    baselines: Dict[str, int] = field(default_factory=dict)
    _handles: List[ScheduledEvent] = field(default_factory=list)

    @property
    def steps_fired(self) -> int:
        """How many steps have fired so far."""
        return len(self.injections) + len(self.errors)

    @property
    def done(self) -> bool:
        """Whether every step has fired or been cancelled."""
        return self.steps_fired + self.cancelled_steps >= len(self.step_times)


class ChaosEngine:
    """Schedules and journals chaos scenarios on one simulated system."""

    def __init__(self, system: "SystemS") -> None:
        """Wire the engine into a system (done by ``SystemS.__init__``).

        Args:
            system: The simulated middleware instance to disturb.
        """
        self.system = system
        self.kernel = system.kernel
        #: every fired injection across all runs, in firing order
        self.injections: List[ChaosInjection] = []
        #: callbacks invoked with each ChaosInjection (the ORCA service
        #: registers here to emit ``chaos_injected`` events)
        self.injection_listeners: List[Callable[[ChaosInjection], None]] = []
        #: every scenario run ever scheduled, in creation order
        self.runs: List[ScenarioRun] = []
        self._next_run = 1
        #: refcount of open CheckpointFault windows (commits stay torn
        #: while > 0; the pre-campaign hook is restored when it hits 0)
        self._ckpt_fault_depth = 0
        self._ckpt_fault_previous = None
        system.sam.pe_restart_observers.append(self._on_pe_restarted)

    # -- scheduling ---------------------------------------------------------

    def run_scenario(
        self,
        scenario: Scenario,
        job: Optional["Job"] = None,
        feed: Optional[Any] = None,
        start_in: float = 0.0,
    ) -> ScenarioRun:
        """Schedule every step of a scenario on the kernel.

        Args:
            scenario: The scenario to execute.
            job: Job that operator-targeted perturbations resolve
                against (required for PE/region perturbations).
            feed: The workload feed load perturbations control.
            start_in: Seconds from now until the scenario's t=0.

        Returns:
            The tracking :class:`ScenarioRun` (already in ``runs``).

        Raises:
            ChaosError: The scenario fails :meth:`Scenario.validate`
                (empty, blank name, negative step times/jitter) —
                rejected before anything is scheduled.
        """
        scenario.validate()
        rng = self.system.random.stream(f"chaos:{scenario.name}")
        run = ScenarioRun(
            run_id=f"chaos-{self._next_run}",
            scenario=scenario,
            job=job,
            feed=feed,
            started_at=self.kernel.now + start_in,
            baselines={
                "noops": len(self.system.failures.noops),
                "dropped_in_flight": self.system.transport.dropped_in_flight,
                "dropped_by_fault": self.system.transport.dropped_by_fault,
                "total_dropped": self.system.transport.total_dropped,
                "retransmissions": self.system.transport.retransmissions,
                "acks": self.system.transport.acks,
                "duplicates_suppressed": (
                    self.system.transport.duplicates_suppressed
                ),
                "replayed": self.system.transport.replayed,
            },
        )
        self._next_run += 1
        for index, scenario_step in enumerate(scenario.steps):
            at = run.started_at + scenario_step.resolve_at(rng)
            run.step_times.append(at)
            run._handles.append(
                self.kernel.schedule_at(
                    max(at, self.kernel.now),
                    self._fire,
                    run,
                    index,
                    label=f"{run.run_id}-step{index}",
                )
            )
        self.runs.append(run)
        obs = getattr(self.system, "obs", None)
        if obs is not None:
            # the scenario's t=0 lands in the flight recorder, so a dump
            # shows where the campaign started relative to its injections
            obs.record_control_event(
                "chaos:scenario",
                run.started_at,
                run=run.run_id,
                scenario=scenario.name,
                steps=len(scenario.steps),
                job="" if job is None else job.job_id,
            )
        return run

    def cancel_run(self, run: ScenarioRun) -> int:
        """Cancel every not-yet-fired step of a run.

        Steps are judged by the run's own journal (injections + errors),
        not by timestamps — a step firing at the *current* sim instant
        is never double-counted as retracted.

        Args:
            run: The run to stop.

        Returns:
            How many steps were retracted.
        """
        fired = {i.step_index for i in run.injections}
        fired.update(index for index, _ in run.errors)
        cancelled = 0
        for index, handle in enumerate(run._handles):
            if index not in fired and not handle.cancelled:
                handle.cancel()
                cancelled += 1
        run.cancelled_steps += cancelled
        return cancelled

    def _fire(self, run: ScenarioRun, index: int) -> None:
        scenario_step = run.scenario.steps[index]
        try:
            target, detail = scenario_step.perturbation.inject(self, run)
        except Exception as exc:  # record, never crash the kernel
            run.errors.append((index, repr(exc)))
            return
        injection = ChaosInjection(
            run_id=run.run_id,
            scenario=run.scenario.name,
            step_index=index,
            kind=scenario_step.perturbation.KIND,
            target=target,
            time=self.kernel.now,
            job_id=run.job.job_id if run.job is not None else None,
            detail=detail,
        )
        if (
            injection.kind in RECOVERABLE_KINDS
            and not injection.detail.get("pe_ids")
        ):
            # no victim PEs (e.g. a host flap on an empty host): there is
            # nothing whose restart could ever stamp recovery — the fault
            # is trivially recovered the moment it lands
            injection.recovered_at = injection.time
        run.injections.append(injection)
        self.injections.append(injection)
        self._publish_gauges(run)
        for listener in list(self.injection_listeners):
            listener(injection)

    # -- checkpoint-fault window (refcounted for overlapping steps) ---------

    def arm_checkpoint_fault(self) -> None:
        """Open one commit-fault window (stacks with open windows)."""
        if self._ckpt_fault_depth == 0:
            self._ckpt_fault_previous = self.system.checkpoints.commit_fault
            self.system.checkpoints.commit_fault = lambda pe: True
        self._ckpt_fault_depth += 1

    def disarm_checkpoint_fault(self) -> None:
        """Close one commit-fault window; commits resume when all closed."""
        if self._ckpt_fault_depth == 0:
            return
        self._ckpt_fault_depth -= 1
        if self._ckpt_fault_depth == 0:
            self.system.checkpoints.commit_fault = self._ckpt_fault_previous
            self._ckpt_fault_previous = None

    # -- recovery tracking --------------------------------------------------

    def _pe_anywhere(self, pe_id: str) -> Optional[PERuntime]:
        """Find a PE by id across every job SAM knows (crashed host faults
        can span jobs)."""
        for job in self.system.sam.jobs.values():
            for pe in job.pes:
                if pe.pe_id == pe_id:
                    return pe
        return None

    def _on_pe_restarted(self, pe: PERuntime) -> None:
        """SAM observer: stamp recovery on *every* matching crash injection.

        A PE can be the victim of several journaled injections (a flap
        plus a recorded-no-op crash, or two faults racing) — all of them
        recover together when the last victim PE is RUNNING again.
        """
        for injection in self.injections:
            if injection.recovered_at is not None:
                continue
            if injection.kind not in RECOVERABLE_KINDS:
                continue
            pe_ids = injection.detail.get("pe_ids", ())
            if pe.pe_id not in pe_ids:
                continue
            victims = [self._pe_anywhere(pe_id) for pe_id in pe_ids]
            all_up = all(
                victim.state is PEState.RUNNING
                for victim in victims
                if victim is not None  # removed PEs can never come back
            )
            if all_up:
                injection.recovered_at = self.kernel.now

    # -- SRM gauges ---------------------------------------------------------

    def _publish_gauges(self, run: ScenarioRun) -> None:
        """Reflect one run's progress into SRM under the ``__chaos__`` job.

        Counts cover the *run* only (the gauges are stored per scenario,
        and concurrent campaigns must not clobber each other's numbers).
        """
        now = self.kernel.now
        by_kind: Dict[str, int] = {}
        for injection in run.injections:
            by_kind[injection.kind] = by_kind.get(injection.kind, 0) + 1
        samples = [
            self._gauge(run, "chaosInjections", float(len(run.injections)), now),
            self._gauge(
                run,
                "chaosActiveLinkFaults",
                float(len(self.system.transport.active_link_faults())),
                now,
            ),
        ]
        for kind, count in sorted(by_kind.items()):
            samples.append(
                self._gauge(run, f"chaosInjections.{kind}", float(count), now)
            )
        self.system.srm.store_metrics(samples)

    def publish_scorecard_gauges(
        self, scenario_name: str, values: Dict[str, float]
    ) -> None:
        """Push scorecard measurements into SRM as ``chaos*`` gauges.

        Args:
            scenario_name: Stored as the sample's PE id suffix, so
                concurrent campaigns do not clobber each other.
            values: Gauge name -> value (e.g. ``{"chaosTuplesLost": 0}``).
        """
        now = self.kernel.now
        samples = [
            MetricSample(
                job_id=CHAOS_JOB_ID,
                app_name="chaos",
                pe_id=f"chaos:{scenario_name}",
                operator=None,
                port=None,
                name=name,
                value=float(value),
                collection_ts=now,
                is_custom=True,
            )
            for name, value in sorted(values.items())
        ]
        self.system.srm.store_metrics(samples)

    def _gauge(
        self, run: ScenarioRun, name: str, value: float, now: float
    ) -> MetricSample:
        return MetricSample(
            job_id=CHAOS_JOB_ID,
            app_name="chaos",
            pe_id=f"chaos:{run.scenario.name}",
            operator=None,
            port=None,
            name=name,
            value=value,
            collection_ts=now,
            is_custom=True,
        )

    # -- inspection ---------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        """Snapshot served by the ORCA ``chaos_status()`` inspection.

        Beyond the injector's :meth:`~repro.runtime.failures.FailureInjector.stats`
        counters and the journal summary, the snapshot breaks active link
        faults down by effect (``latency``/``partition``/``loss`` — one
        fault can count toward several) and totals run progress
        (``runs_done``, ``step_errors``, ``cancelled_steps``) so long
        fuzz searches are inspectable from ORCA mid-flight.
        """
        injector = self.system.failures.stats()
        link_faults = self.system.transport.active_link_faults()
        by_effect = {"latency": 0, "partition": 0, "loss": 0}
        for fault in link_faults:
            if fault.extra_latency > 0.0:
                by_effect["latency"] += 1
            if fault.partition:
                by_effect["partition"] += 1
            if fault.drop_probability > 0.0:
                by_effect["loss"] += 1
        return {
            "runs": len(self.runs),
            "runs_done": sum(1 for run in self.runs if run.done),
            "injections": len(self.injections),
            "step_errors": sum(len(run.errors) for run in self.runs),
            "cancelled_steps": sum(run.cancelled_steps for run in self.runs),
            "active_link_faults": len(link_faults),
            "active_link_faults_by_effect": by_effect,
            "injector": {
                "injected": injector.injected,
                "by_kind": injector.by_kind,
                "noops": injector.noops,
                "pending": injector.pending,
            },
            "last_injection": (
                {
                    "scenario": self.injections[-1].scenario,
                    "kind": self.injections[-1].kind,
                    "target": self.injections[-1].target,
                    "time": self.injections[-1].time,
                }
                if self.injections
                else None
            ),
        }
