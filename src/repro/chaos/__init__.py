"""repro.chaos — deterministic chaos campaigns for adaptation routines.

The paper's evaluation triggers a *single* fault; user-defined adaptation
earns its keep under *combinations* of runtime disturbances with
adversarial timing.  This package turns the one-shot
:class:`~repro.runtime.failures.FailureInjector` into a seeded
campaign engine:

* :mod:`repro.chaos.perturbations` — the disturbance library: PE/host
  crash-and-flap, transport latency spikes / partitions / loss, input
  rate surges and key-skew shifts, torn checkpoint commits, and live
  rescales;
* :mod:`repro.chaos.scenario` — the declarative ``Scenario`` /
  ``Campaign`` DSL (timed steps, seeded jitter) plus composable presets
  (``rolling_host_outage``, ``gray_network``, ``flash_crowd``, ...);
* :mod:`repro.chaos.engine` — the ``ChaosEngine`` executing scenarios on
  the simulation kernel, journaling every injection, publishing
  ``chaos_injected`` ORCA events and ``chaos*`` SRM gauges, and stamping
  recovery times;
* :mod:`repro.chaos.scorecard` — the ``ResilienceScorecard``: exact
  tuple loss/duplicates, state-recovery fraction, recovery latency, and
  ORCA event latency, rendered as byte-stable text for determinism
  checks;
* :mod:`repro.chaos.fuzz` — the adversarial layer on top: system-wide
  invariant oracles, a barrier-targeted search driver over the
  seed/step-time space, and a shrinker that reduces failures to minimal
  repros serialized (``Scenario.to_dict``) into the regression corpus
  under ``tests/corpus/``.

See ``docs/chaos.md`` for the full DSL, scorecard, and fuzzing
reference and ``examples/chaos_campaign.py`` /
``examples/chaos_fuzz.py`` for runnable walkthroughs.
"""

from repro.chaos.engine import CHAOS_JOB_ID, ChaosEngine, ChaosInjection, ScenarioRun
from repro.chaos.perturbations import (
    PERTURBATION_KINDS,
    ChaosError,
    CheckpointFault,
    CrashPE,
    FailHost,
    HostFlap,
    KeySkewShift,
    LatencySpike,
    LinkLoss,
    LinkPartition,
    PEFlap,
    Perturbation,
    RateSurge,
    Rescale,
    RestartPE,
    perturbation_from_dict,
    perturbation_to_dict,
)
from repro.chaos.scenario import (
    Campaign,
    Scenario,
    Step,
    flash_crowd,
    gray_network,
    rolling_channel_outage,
    rolling_host_outage,
    step,
    torn_checkpoints,
)
from repro.chaos.scorecard import (
    ResilienceScorecard,
    collect_scorecard,
    live_keyed_state,
    state_recovery_fraction,
    tuple_accounting,
)

__all__ = [
    "CHAOS_JOB_ID",
    "PERTURBATION_KINDS",
    "Campaign",
    "ChaosEngine",
    "ChaosError",
    "ChaosInjection",
    "CheckpointFault",
    "CrashPE",
    "FailHost",
    "HostFlap",
    "KeySkewShift",
    "LatencySpike",
    "LinkLoss",
    "LinkPartition",
    "PEFlap",
    "Perturbation",
    "RateSurge",
    "Rescale",
    "ResilienceScorecard",
    "RestartPE",
    "Scenario",
    "ScenarioRun",
    "Step",
    "collect_scorecard",
    "flash_crowd",
    "gray_network",
    "live_keyed_state",
    "perturbation_from_dict",
    "perturbation_to_dict",
    "rolling_channel_outage",
    "rolling_host_outage",
    "state_recovery_fraction",
    "step",
    "torn_checkpoints",
    "tuple_accounting",
]
