"""The declarative chaos-scenario DSL and its preset library.

A :class:`Scenario` is a named list of timed :class:`Step`\\ s, each
wrapping one :class:`~repro.chaos.perturbations.Perturbation`.  Step
times are relative to the scenario's start; a step may declare a
``jitter`` window, in which case its firing time is drawn uniformly from
``[at, at + jitter)`` using the run's *seeded* random stream — schedules
are randomized **within** the seed, so two runs of the same scenario on
the same seed fire at identical instants and produce byte-identical
scorecards.

A :class:`Campaign` bundles a scenario with the seed and horizon a
benchmark runs it under, which is the unit
``benchmarks/test_chaos_campaigns.py`` iterates over.

The presets at the bottom are the composable starting points named in
the roadmap: ``rolling_host_outage``, ``rolling_channel_outage``,
``gray_network``, ``flash_crowd``, and ``torn_checkpoints``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.chaos.perturbations import (
    ChaosError,
    CheckpointFault,
    HostFlap,
    KeySkewShift,
    LatencySpike,
    LinkLoss,
    LinkPartition,
    PEFlap,
    Perturbation,
    RateSurge,
    Rescale,
    perturbation_from_dict,
    perturbation_to_dict,
)


@dataclass(frozen=True)
class Step:
    """One timed entry of a scenario.

    Attributes:
        at: Seconds after the scenario start this step fires.
        perturbation: The disturbance to inject.
        jitter: Optional randomization window: the actual firing time is
            ``at + U[0, jitter)`` drawn from the run's seeded stream.
    """

    at: float
    perturbation: Perturbation
    jitter: float = 0.0

    def resolve_at(self, rng: random.Random) -> float:
        """The step's firing offset for one run (seeded jitter applied)."""
        if self.jitter <= 0.0:
            return self.at
        return self.at + rng.random() * self.jitter

    def validate(self, index: int = 0) -> "Step":
        """Reject unschedulable steps with a precise error.

        Args:
            index: Position within the owning scenario (for the message).

        Returns:
            self, for chaining.

        Raises:
            ChaosError: Negative/non-finite ``at`` or ``jitter``, or a
                payload that is not a :class:`Perturbation`.
        """
        if not math.isfinite(self.at) or self.at < 0.0:
            raise ChaosError(
                f"step {index}: 'at' must be finite and >= 0, got {self.at!r}"
            )
        if not math.isfinite(self.jitter) or self.jitter < 0.0:
            raise ChaosError(
                f"step {index}: 'jitter' must be finite and >= 0, "
                f"got {self.jitter!r}"
            )
        if not isinstance(self.perturbation, Perturbation):
            raise ChaosError(
                f"step {index}: perturbation must be a Perturbation, "
                f"got {type(self.perturbation).__name__}"
            )
        return self

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to a JSON-safe mapping (see :meth:`from_dict`)."""
        return {
            "at": self.at,
            "jitter": self.jitter,
            "perturbation": perturbation_to_dict(self.perturbation),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Step":
        """Rebuild a step from its :meth:`to_dict` form.

        Args:
            data: ``{"at", "jitter", "perturbation"}``.

        Returns:
            The reconstructed step.

        Raises:
            ChaosError: Malformed mapping or unknown perturbation kind.
        """
        try:
            return cls(
                at=float(data["at"]),
                perturbation=perturbation_from_dict(data["perturbation"]),
                jitter=float(data.get("jitter", 0.0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ChaosError(f"malformed step mapping: {exc!r}") from exc


def step(at: float, perturbation: Perturbation, jitter: float = 0.0) -> Step:
    """Sugar for building :class:`Step` lists inline."""
    return Step(at=at, perturbation=perturbation, jitter=jitter)


@dataclass
class Scenario:
    """A named, ordered collection of timed perturbation steps.

    Attributes:
        name: Scenario identifier (appears in events and scorecards).
        steps: The timed steps, in declaration order.
        description: One-line human summary.
    """

    name: str
    steps: List[Step] = field(default_factory=list)
    description: str = ""

    def add(self, at: float, perturbation: Perturbation, jitter: float = 0.0) -> "Scenario":
        """Append a step and return self (builder style)."""
        self.steps.append(Step(at=at, perturbation=perturbation, jitter=jitter))
        return self

    def horizon(self) -> float:
        """Latest nominal step offset (jitter windows included)."""
        return max((s.at + s.jitter for s in self.steps), default=0.0)

    def validate(self) -> "Scenario":
        """Reject unrunnable scenarios with a precise error.

        Called by :meth:`~repro.chaos.engine.ChaosEngine.run_scenario`
        before anything is scheduled, so a bad scenario fails loudly at
        submission instead of as silent no-ops mid-campaign.

        Returns:
            self, for chaining.

        Raises:
            ChaosError: Empty/blank name, no steps, or any invalid step
                (negative ``at``/``jitter``, non-perturbation payload).
        """
        if not isinstance(self.name, str) or not self.name.strip():
            raise ChaosError(f"scenario name must be non-empty, got {self.name!r}")
        if not self.steps:
            raise ChaosError(f"scenario {self.name!r} has no steps")
        for index, scenario_step in enumerate(self.steps):
            try:
                scenario_step.validate(index)
            except ChaosError as exc:
                raise ChaosError(f"scenario {self.name!r}: {exc}") from exc
        return self

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to a JSON-safe mapping (the corpus file format)."""
        return {
            "name": self.name,
            "description": self.description,
            "steps": [s.to_dict() for s in self.steps],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Scenario":
        """Rebuild a scenario from its :meth:`to_dict` form.

        Args:
            data: ``{"name", "description", "steps"}``.

        Returns:
            The reconstructed scenario (structurally round-trip-equal:
            ``Scenario.from_dict(s.to_dict()).to_dict() == s.to_dict()``).

        Raises:
            ChaosError: Malformed mapping or unknown perturbation kind.
        """
        try:
            steps = [Step.from_dict(entry) for entry in data.get("steps", [])]
            return cls(
                name=data["name"],
                steps=steps,
                description=data.get("description", ""),
            )
        except (KeyError, TypeError) as exc:
            raise ChaosError(f"malformed scenario mapping: {exc!r}") from exc


@dataclass
class Campaign:
    """One benchmarkable chaos run: a scenario plus its run parameters.

    Attributes:
        name: Campaign identifier (scorecard/result file name).
        scenario: The scenario to execute.
        seed: Root seed of the run's :class:`~repro.sim.rand.RandomStreams`.
        duration: Sim-seconds to run after the scenario starts.
        checkpointed: Whether the stack under test checkpoints — the
            benchmark asserts zero tuple loss and >= 99% state recovery
            only for checkpoint-enabled configurations.
        description: One-line human summary.
    """

    name: str
    scenario: Scenario
    seed: int = 42
    duration: float = 30.0
    checkpointed: bool = True
    description: str = ""

    def validate(self) -> "Campaign":
        """Reject unrunnable campaigns with a precise error.

        Returns:
            self, for chaining.

        Raises:
            ChaosError: Non-positive/non-finite duration, a non-integer
                seed, or an invalid scenario.
        """
        if not math.isfinite(self.duration) or self.duration <= 0.0:
            raise ChaosError(
                f"campaign {self.name!r}: duration must be finite and > 0, "
                f"got {self.duration!r}"
            )
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise ChaosError(
                f"campaign {self.name!r}: seed must be an int, got {self.seed!r}"
            )
        self.scenario.validate()
        return self

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to a JSON-safe mapping (the corpus file format)."""
        return {
            "name": self.name,
            "scenario": self.scenario.to_dict(),
            "seed": self.seed,
            "duration": self.duration,
            "checkpointed": self.checkpointed,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Campaign":
        """Rebuild a campaign from its :meth:`to_dict` form.

        Args:
            data: ``{"name", "scenario", "seed", "duration",
                "checkpointed", "description"}``.

        Returns:
            The reconstructed campaign.

        Raises:
            ChaosError: Malformed mapping or unknown perturbation kind.
        """
        try:
            return cls(
                name=data["name"],
                scenario=Scenario.from_dict(data["scenario"]),
                seed=int(data.get("seed", 42)),
                duration=float(data.get("duration", 30.0)),
                checkpointed=bool(data.get("checkpointed", True)),
                description=data.get("description", ""),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ChaosError(f"malformed campaign mapping: {exc!r}") from exc


# ---------------------------------------------------------------------------
# presets
# ---------------------------------------------------------------------------


def rolling_host_outage(
    hosts: Sequence[str],
    start: float = 5.0,
    stagger: float = 6.0,
    downtime: float = 2.0,
    rehydrate: bool = True,
) -> Scenario:
    """Take hosts down one after another, reviving each before the next.

    Args:
        hosts: Host names, failed in order.
        start: Offset of the first outage.
        stagger: Seconds between consecutive outages.
        downtime: Seconds each host stays dead.
        rehydrate: Restore state when the host's PEs restart.

    Returns:
        The scenario (one :class:`HostFlap` per host).
    """
    scenario = Scenario(
        "rolling_host_outage",
        description="sequential host crash-and-revive across the cluster",
    )
    for i, host in enumerate(hosts):
        scenario.add(
            start + i * stagger,
            HostFlap(host=host, downtime=downtime, rehydrate=rehydrate),
        )
    return scenario


def rolling_channel_outage(
    operators: Sequence[str],
    start: float = 5.0,
    stagger: float = 5.0,
    downtime: float = 1.5,
    rehydrate: bool = True,
) -> Scenario:
    """Flap parallel-region channel PEs one after another.

    The canonical crash-detour-reclaim stress: each flap masks the
    channel, seeds its detours from the last committed checkpoint, and
    reclaims the accrued state at unmask.

    Args:
        operators: Channel operator full names (e.g. ``work__c1``),
            flapped in order.
        start: Offset of the first flap.
        stagger: Seconds between consecutive flaps.
        downtime: Seconds each channel PE stays dead.
        rehydrate: Restore state on restart.

    Returns:
        The scenario (one :class:`PEFlap` per channel operator).
    """
    scenario = Scenario(
        "rolling_channel_outage",
        description="sequential crash-and-restart of region channel PEs",
    )
    for i, op_name in enumerate(operators):
        scenario.add(
            start + i * stagger,
            PEFlap(operator=op_name, downtime=downtime, rehydrate=rehydrate),
        )
    return scenario


def gray_network(
    start: float = 4.0,
    waves: int = 3,
    every: float = 5.0,
    extra_latency: float = 0.05,
    spike_length: float = 2.0,
    partition_length: float = 0.8,
    dst_host: Optional[str] = None,
    jitter: float = 0.0,
    loss_probability: float = 0.0,
    loss_length: float = 0.0,
) -> Scenario:
    """A degraded-but-not-dead network: latency waves + short partitions.

    No data is lost by default (partitions hold and flush, TCP-style),
    but delivery timing and ordering pressure spike — the scenario
    adaptive routines misdiagnose most easily.  ``loss_probability > 0``
    adds a per-wave ``LinkLoss`` window on top, which turns the scenario
    genuinely lossy — run it on a reliable-delivery transport (or drop
    the zero-loss expectation).

    Args:
        start: Offset of the first wave.
        waves: Number of spike/partition waves.
        every: Seconds between waves.
        extra_latency: Added seconds during each spike.
        spike_length: Duration of each latency spike.
        partition_length: Duration of each wave's partition.
        dst_host: Restrict faults to links toward this host (None: all).
        jitter: Seeded randomization window per step.
        loss_probability: Per-item drop probability of each wave's
            ``LinkLoss`` window (0 keeps the scenario lossless).
        loss_length: Duration of each wave's loss window (0 falls back
            to the partition length).

    Returns:
        The scenario.
    """
    scenario = Scenario(
        "gray_network",
        description="latency waves and short hold-and-flush partitions",
    )
    for wave in range(waves):
        base = start + wave * every
        scenario.add(
            base,
            LatencySpike(
                extra=extra_latency, duration=spike_length, dst_host=dst_host
            ),
            jitter=jitter,
        )
        scenario.add(
            base + spike_length,
            LinkPartition(duration=partition_length, dst_host=dst_host),
            jitter=jitter,
        )
        if loss_probability > 0.0:
            scenario.add(
                base + spike_length + partition_length,
                LinkLoss(
                    drop_probability=loss_probability,
                    duration=loss_length or partition_length,
                    dst_host=dst_host,
                ),
                jitter=jitter,
            )
    return scenario


def flash_crowd(
    at: float = 5.0,
    factor: float = 4.0,
    duration: float = 8.0,
    hot_fraction: float = 0.8,
    hot_keys: Sequence[str] = (),
    rescale_region: Optional[str] = None,
    rescale_width: int = 4,
) -> Scenario:
    """A sudden load spike with skewed keys, optionally answered by a
    rescale.

    Args:
        at: Offset of the surge.
        factor: Rate multiplier during the surge.
        duration: Surge length; the rate and skew restore afterwards.
        hot_fraction: Fraction of surge traffic on the hot keys.
        hot_keys: The hot key set (empty: the feed's default).
        rescale_region: When set, a live rescale of this region is
            started mid-surge (the adaptation under test).
        rescale_width: Width requested by the mid-surge rescale.

    Returns:
        The scenario.
    """
    scenario = Scenario(
        "flash_crowd",
        description="input-rate surge with key skew (and optional rescale)",
    )
    scenario.add(at, RateSurge(factor=factor, duration=duration))
    scenario.add(
        at,
        KeySkewShift(
            hot_fraction=hot_fraction, hot_keys=tuple(hot_keys), duration=duration
        ),
    )
    if rescale_region is not None:
        scenario.add(
            at + duration / 2.0,
            Rescale(region=rescale_region, width=rescale_width),
        )
    return scenario


def torn_checkpoints(
    operator: str,
    start: float = 4.0,
    fault_window: float = 3.0,
    crash_after: float = 1.0,
    downtime: float = 1.5,
) -> Scenario:
    """Tear checkpoint commits, then crash mid-window.

    The recovery must fall back to the last epoch committed *before* the
    window — the torn-epoch path of :mod:`repro.checkpoint` under
    adversarial timing.

    Args:
        operator: The stateful operator whose PE is flapped.
        start: Offset the commit-fault window opens.
        fault_window: Seconds commits stay torn.
        crash_after: Seconds into the window the crash lands.
        downtime: Seconds the PE stays dead.

    Returns:
        The scenario.
    """
    scenario = Scenario(
        "torn_checkpoints",
        description="commit faults racing a crash (torn-epoch fallback)",
    )
    scenario.add(start, CheckpointFault(duration=fault_window))
    scenario.add(
        start + crash_after,
        PEFlap(operator=operator, downtime=downtime, rehydrate=True),
    )
    return scenario
