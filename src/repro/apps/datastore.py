"""External data stores the applications interact with.

Three stores back the use cases:

* :class:`CorpusStore` — the on-disk corpus of negative tweets that the
  sentiment application writes and the (simulated) Hadoop job reads
  (Sec. 5.1: "if the tweet has a negative sentiment, it is stored on disk
  for later batch processing");
* :class:`CauseModelStore` — the versioned cause model the Hadoop job
  produces and the streaming application reloads (Sec. 5.1);
* :class:`ProfileDataStore` — the deduplicating profile store C2
  applications write and C3 applications read (Sec. 5.3: "C3 applications
  do not see duplicate profiles because they read directly from the data
  store, which has no duplicate profile entry").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Tuple


@dataclass
class CorpusEntry:
    text: str
    ts: float


class CorpusStore:
    """Append-only store of negative tweets (the batch job's input)."""

    def __init__(self) -> None:
        self._entries: List[CorpusEntry] = []

    def append(self, text: str, ts: float) -> None:
        self._entries.append(CorpusEntry(text=text, ts=ts))

    def entries_since(self, ts: float) -> List[CorpusEntry]:
        return [e for e in self._entries if e.ts >= ts]

    def all_entries(self) -> List[CorpusEntry]:
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)


@dataclass(frozen=True)
class CauseModel:
    """One version of the cause model: a set of known cause phrases."""

    version: int
    causes: FrozenSet[str]
    computed_at: float = 0.0

    def knows(self, tokens: List[str]) -> Optional[str]:
        """Return the first known cause appearing among ``tokens``."""
        for token in tokens:
            if token in self.causes:
                return token
        return None


class CauseModelStore:
    """Versioned store of the current cause model.

    Operators poll :attr:`version` cheaply on the data path and reload
    when it changed — modelling the paper's "the streaming application
    automatically reloads the output of the Hadoop job as soon as the job
    finishes".
    """

    def __init__(self, initial_causes: Tuple[str, ...] = ("flash", "screen")) -> None:
        self._model = CauseModel(version=1, causes=frozenset(initial_causes))
        self.history: List[CauseModel] = [self._model]

    @property
    def version(self) -> int:
        return self._model.version

    @property
    def current(self) -> CauseModel:
        return self._model

    def publish(self, causes: FrozenSet[str], computed_at: float) -> CauseModel:
        model = CauseModel(
            version=self._model.version + 1,
            causes=causes,
            computed_at=computed_at,
        )
        self._model = model
        self.history.append(model)
        return model


class ProfileDataStore:
    """Deduplicating store of enriched user profiles keyed by profile id."""

    def __init__(self) -> None:
        self._profiles: Dict[str, Dict[str, Any]] = {}
        self.total_writes = 0

    def upsert(self, profile_id: str, attributes: Dict[str, Any]) -> bool:
        """Merge attributes into the profile; True if the id is new."""
        self.total_writes += 1
        existing = self._profiles.get(profile_id)
        if existing is None:
            self._profiles[profile_id] = dict(attributes)
            return True
        existing.update(attributes)
        return False

    def get(self, profile_id: str) -> Optional[Dict[str, Any]]:
        profile = self._profiles.get(profile_id)
        return dict(profile) if profile is not None else None

    def __len__(self) -> int:
        return len(self._profiles)

    def profiles_with_attribute(self, attribute: str) -> List[Tuple[str, Dict[str, Any]]]:
        return [
            (pid, dict(attrs))
            for pid, attrs in self._profiles.items()
            if attribute in attrs
        ]

    def count_with_attribute(self, attribute: str) -> int:
        return sum(1 for attrs in self._profiles.values() if attribute in attrs)
