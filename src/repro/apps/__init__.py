"""The paper's use-case applications and orchestrators.

* :mod:`repro.apps.sentiment` — the Twitter sentiment-analysis application
  of Fig. 1 / Sec. 5.1 (adaptation to incoming data distribution);
* :mod:`repro.apps.trend` — the "Trend Calculator" financial application
  of Sec. 5.2 (adaptation to failures via replica failover);
* :mod:`repro.apps.socialmedia` — the C1/C2/C3 social-media profiling
  applications of Sec. 5.3 (on-demand dynamic composition);
* :mod:`repro.apps.figure2` — the split/merge composite application of
  Figs. 2-3;
* :mod:`repro.apps.elastic_trend` — the auto-scaling trend application
  built on elastic parallel regions (:mod:`repro.elastic`), with an
  orchestrator that widens/narrows the analytics region at runtime;
* :mod:`repro.apps.orchestrators` — the three ORCA logics as library code;
* :mod:`repro.apps.workloads` — seeded synthetic workload generators that
  stand in for the paper's Twitter/MySpace/stock feeds;
* :mod:`repro.apps.datastore` / :mod:`repro.apps.hadoop` — the external
  components the applications interact with (deduplicating profile store,
  simulated Hadoop model-recomputation jobs).
"""
