"""The C1/C2/C3 social-media profiling applications of Sec. 5.3.

Three application categories compose dynamically through exported streams
and a shared profile data store:

* **C1** (``TwitterStreamReader``, ``MySpaceStreamReader``) — read a
  site's update stream, keep profiles posting negatively about the
  product of interest, and *export* them (properties
  ``{"category": "C1", ...}``);
* **C2** (``TwitterQuery``, ``BlogQuery``, ``FacebookQuery``) — *import*
  every C1 stream, run keyword-based searches against their site to
  enrich the profile with extra attributes, and integrate results into
  the deduplicating data store.  Each C2 application maintains custom
  metrics ``nProfiles_gender`` / ``nProfiles_age`` / ``nProfiles_location``
  counting profiles it stored carrying each attribute (duplicates across
  C2 apps included — exactly the caveat Sec. 5.3 notes);
* **C3** (``AttributeAggregator``) — submitted on demand with an
  ``attribute`` parameter; reads the data store (no duplicates), computes
  the sentiment segmentation for that attribute, and signals completion
  through the sink's final-punctuation metric, upon which the
  orchestrator cancels it.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Any, Dict, List, Optional

from repro.apps.datastore import ProfileDataStore
from repro.apps.workloads import ProfileWorkload, _LOCATIONS
from repro.spl.application import Application
from repro.spl.library import CallbackSource, Export, Filter, Import, Sink
from repro.spl.metrics import MetricKind
from repro.spl.operators import Operator, OperatorContext
from repro.spl.tuples import StreamTuple

SEGMENT_ATTRIBUTES = ("gender", "age", "location")


# ---------------------------------------------------------------------------
# C1: stream readers
# ---------------------------------------------------------------------------


def build_c1_application(
    app_name: str,
    workload: ProfileWorkload,
    source_period: float = 1.0,
) -> Application:
    """A C1 application: site stream -> negative filter -> export."""
    app = Application(app_name)
    g = app.graph
    src = g.add_operator(
        "reader",
        CallbackSource,
        params={"generator": workload.generator(), "period": source_period},
    )
    neg = g.add_operator(
        "negfilter",
        Filter,
        params={"predicate": lambda t: t["sentiment"] == "neg"},
    )
    exp = g.add_operator(
        "export",
        Export,
        params={"properties": {"category": "C1", "site": workload.source}},
    )
    g.connect(src.oport(0), neg.iport(0))
    g.connect(neg.oport(0), exp.iport(0))
    return app


# ---------------------------------------------------------------------------
# C2: keyword-search enrichment
# ---------------------------------------------------------------------------


class ProfileEnricher(Operator):
    """Simulated keyword-based search against one site (C2 core).

    Parameters: ``site`` (which site is queried), ``datastore``
    (:class:`ProfileDataStore`), ``discover_probability`` (chance the
    search reveals each missing attribute), ``seed``.

    The discovered attributes model the paper's "search results are
    integrated into existing profiles in a data store".  The custom
    ``nProfiles_<attr>`` counters count stored profiles carrying each
    attribute after enrichment.
    """

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        self.site: str = self.param("site")
        self.datastore: ProfileDataStore = self.param("datastore")
        self.discover_probability: float = float(
            self.param("discover_probability", 0.35)
        )
        self._rng = random.Random(int(self.param("seed", 97)))
        self._attr_metrics = {
            attr: self.create_custom_metric(
                f"nProfiles_{attr}",
                MetricKind.COUNTER,
                f"profiles stored with the {attr} attribute",
            )
            for attr in SEGMENT_ATTRIBUTES
        }

    def _search(self, profile: Dict[str, Any]) -> Dict[str, Any]:
        """The keyword query: probabilistically fill missing attributes."""
        discovered = dict(profile.get("attributes", {}))
        rng = self._rng
        if "gender" not in discovered and rng.random() < self.discover_probability:
            discovered["gender"] = rng.choice(("f", "m"))
        if "age" not in discovered and rng.random() < self.discover_probability:
            discovered["age"] = rng.randint(16, 75)
        if "location" not in discovered and rng.random() < self.discover_probability:
            discovered["location"] = rng.choice(_LOCATIONS)
        return discovered

    def on_tuple(self, tup: StreamTuple, port: int) -> None:
        attributes = self._search(tup.values)
        attributes["sentiment"] = tup["sentiment"]
        self.datastore.upsert(tup["profile_id"], attributes)
        for attr, metric in self._attr_metrics.items():
            if attr in attributes:
                metric.increment()
        self.submit(
            {
                "profile_id": tup["profile_id"],
                "site": self.site,
                "attributes": attributes,
            }
        )


def build_c2_application(
    app_name: str,
    site: str,
    datastore: ProfileDataStore,
    discover_probability: float = 0.35,
    seed: int = 97,
) -> Application:
    """A C2 application: import C1 profiles -> enrich -> store."""
    app = Application(app_name)
    g = app.graph
    imp = g.add_operator(
        "import",
        Import,
        params={"subscription": {"category": "C1"}},
    )
    enrich = g.add_operator(
        "enrich",
        ProfileEnricher,
        params={
            "site": site,
            "datastore": datastore,
            "discover_probability": discover_probability,
            "seed": seed,
        },
    )
    done = g.add_operator("stored", Sink, params={"record": False})
    g.connect(imp.oport(0), enrich.iport(0))
    g.connect(enrich.oport(0), done.iport(0))
    return app


# ---------------------------------------------------------------------------
# C3: on-demand segmentation
# ---------------------------------------------------------------------------


class DataStoreSource(Operator):
    """Batch source: reads every stored profile with the target attribute.

    The ``attribute`` comes from the submission-time parameters (each C3
    job targets one attribute).  After the last batch it emits FINAL
    punctuation — the signal Sec. 5.3's orchestrator watches (via the
    sink's ``nFinalPunctsProcessed`` built-in metric) to cancel the job.
    """

    N_INPUTS = 0
    N_OUTPUTS = 1

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        self.datastore: ProfileDataStore = self.param("datastore")
        self.batch_size = int(self.param("batch_size", 200))
        self.period = float(self.param("period", 0.5))
        self.attribute = ctx.get_submission_time_value("attribute")
        self._pending: List[tuple] = []
        self._started = False

    def on_initialize(self) -> None:
        self._pending = self.datastore.profiles_with_attribute(self.attribute or "")
        self.ctx.schedule(self.period, self._emit_batch)

    def _emit_batch(self) -> None:
        batch, self._pending = (
            self._pending[: self.batch_size],
            self._pending[self.batch_size:],
        )
        for profile_id, attrs in batch:
            self.submit(
                {
                    "profile_id": profile_id,
                    "attribute": self.attribute,
                    "value": attrs.get(self.attribute),
                    "sentiment": attrs.get("sentiment", "neg"),
                }
            )
        if self._pending:
            self.ctx.schedule(self.period, self._emit_batch)
        else:
            self.submit_final()


class SentimentSegmenter(Operator):
    """Correlates sentiment with one profile attribute (C3 core).

    Accumulates per-attribute-value sentiment counts; on FINAL emits one
    result tuple with the segmentation and forwards the punctuation.
    """

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        self.attribute = ctx.get_submission_time_value("attribute")
        self._counts: Dict[Any, Counter] = {}
        self.n_profiles = self.create_custom_metric(
            "nProfilesSegmented", MetricKind.COUNTER
        )

    @staticmethod
    def _bucket(attribute: Optional[str], value: Any) -> Any:
        if attribute == "age" and isinstance(value, int):
            return f"{(value // 10) * 10}s"
        return value

    def on_tuple(self, tup: StreamTuple, port: int) -> None:
        bucket = self._bucket(self.attribute, tup["value"])
        self._counts.setdefault(bucket, Counter())[tup["sentiment"]] += 1
        self.n_profiles.increment()

    def on_all_ports_final(self) -> None:
        segmentation = {
            str(bucket): dict(counts) for bucket, counts in self._counts.items()
        }
        self.submit(
            {
                "attribute": self.attribute,
                "segmentation": segmentation,
                "profiles": int(self.n_profiles.value),
            }
        )
        # base class forwards FINAL afterwards


def build_c3_application(
    datastore: ProfileDataStore,
    results: Optional[List[Dict[str, Any]]] = None,
    app_name: str = "AttributeAggregator",
) -> Application:
    """The C3 application; submit with params={"attribute": ...}."""
    app = Application(app_name)
    app.declare_parameter("attribute")
    g = app.graph
    src = g.add_operator(
        "storeread", DataStoreSource, params={"datastore": datastore}
    )
    seg = g.add_operator("segment", SentimentSegmenter)
    sink_params: Dict[str, Any] = {"record": False}
    if results is not None:
        sink_params["consumer"] = lambda tup: results.append(dict(tup.values))
    out = g.add_operator("sink", Sink, params=sink_params)
    g.connect(src.oport(0), seg.iport(0))
    g.connect(seg.oport(0), out.iport(0))
    return app


def build_all_socialmedia_applications(
    datastore: ProfileDataStore,
    results: Optional[List[Dict[str, Any]]] = None,
    profile_rate: int = 10,
    seed: int = 23,
) -> Dict[str, Application]:
    """All six applications of the Sec. 5.3 experiment, by name."""
    twitter = ProfileWorkload(source="twitter", rate=profile_rate, seed=seed)
    myspace = ProfileWorkload(source="myspace", rate=profile_rate, seed=seed + 1)
    return {
        "TwitterStreamReader": build_c1_application("TwitterStreamReader", twitter),
        "MySpaceStreamReader": build_c1_application("MySpaceStreamReader", myspace),
        "TwitterQuery": build_c2_application(
            "TwitterQuery", "twitter", datastore, seed=seed + 10
        ),
        "BlogQuery": build_c2_application(
            "BlogQuery", "boardreader", datastore, seed=seed + 11
        ),
        "FacebookQuery": build_c2_application(
            "FacebookQuery", "facebook", datastore, seed=seed + 12
        ),
        "AttributeAggregator": build_c3_application(
            datastore, results=results
        ),
    }
