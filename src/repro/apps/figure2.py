"""The split/merge composite application of Figs. 2-3.

``composite1`` is a reusable split-and-merge sub-graph of four operators
(op3: Split, op4/op5: workers, op6: Merge).  The application instantiates
it twice — ``c1`` processing data from ``op1`` and ``c2`` processing data
from ``op2`` — exactly as Fig. 2.

The partition tags reproduce the physical layout of Fig. 3:

* PE 1: ``op1``, ``c1.op3``, ``c1.op5`` — part of the first composite;
* PE 2: ``c1.op4``, ``c1.op6``, ``c2.op4``, ``c2.op6`` — *operators of two
  different composite instances fused into one PE*;
* PE 3: ``op2``, ``c2.op3``, ``c2.op5`` plus the sinks.

With two hosts, the load-balancing scheduler puts PEs 1 and 2 on one host
and PE 3 on the other (Fig. 3's two-host split).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.spl.application import Application
from repro.spl.composite import CompositeBuilder, CompositeDefinition
from repro.spl.library import Beacon, Functor, Merge, Sink, Split
from repro.spl.tuples import StreamTuple


def _make_worker(tag: str):
    def work(tup: StreamTuple) -> Dict[str, Any]:
        values = dict(tup.values)
        values.setdefault("path", [])
        values = {**values, "path": values["path"] + [tag]}
        return values

    return work


def make_composite1(
    pe_map: Optional[Dict[str, str]] = None,
) -> CompositeDefinition:
    """The reusable composite of Fig. 2.

    ``pe_map`` maps internal operator names (op3..op6) to partition tags,
    letting callers choose the fusion (Fig. 3 uses different partitions
    for different instances).
    """
    pe_map = pe_map or {}

    def assemble(b: CompositeBuilder) -> None:
        op3 = b.add_operator(
            "op3",
            Split,
            params={"router": lambda t: t.get("iter", 0) % 2, "n_outputs": 2},
            partition=pe_map.get("op3"),
        )
        op4 = b.add_operator(
            "op4",
            Functor,
            params={"fn": _make_worker("op4")},
            partition=pe_map.get("op4"),
        )
        op5 = b.add_operator(
            "op5",
            Functor,
            params={"fn": _make_worker("op5")},
            partition=pe_map.get("op5"),
        )
        op6 = b.add_operator(
            "op6", Merge, params={"n_inputs": 2}, partition=pe_map.get("op6")
        )
        b.connect(b.input(0), op3.iport(0))
        b.connect(op3.oport(0), op4.iport(0))
        b.connect(op3.oport(1), op5.iport(0))
        b.connect(op4.oport(0), op6.iport(0))
        b.connect(op5.oport(0), op6.iport(1))
        b.bind_output(0, op6.oport(0))

    return CompositeDefinition("composite1", n_inputs=1, n_outputs=1, assemble=assemble)


def build_figure2_application(
    per_tick: int = 2, period: float = 1.0, limit: Optional[int] = None
) -> Application:
    """The Fig. 2 application with the Fig. 3 partitioning."""
    app = Application("Figure2")
    g = app.graph
    op1 = g.add_operator(
        "op1",
        Beacon,
        params={"values": {"origin": "op1"}, "per_tick": per_tick,
                "period": period, "limit": limit},
        partition="pe1",
    )
    # First instance: op3'/op5' in PE 1, op4'/op6' in PE 2 (Fig. 3).
    # (Instantiated before op2 so the deterministic PE numbering matches
    # the paper's figure: the shared PE is number 2.)
    c1 = g.instantiate(
        make_composite1({"op3": "pe1", "op5": "pe1", "op4": "pe2", "op6": "pe2"}),
        "c1",
        inputs=[op1.oport(0)],
    )
    op2 = g.add_operator(
        "op2",
        Beacon,
        params={"values": {"origin": "op2"}, "per_tick": per_tick,
                "period": period, "limit": limit},
        partition="pe3",
    )
    # Second instance: op3''/op5'' in PE 3, op4''/op6'' in PE 2.
    c2 = g.instantiate(
        make_composite1({"op3": "pe3", "op5": "pe3", "op4": "pe2", "op6": "pe2"}),
        "c2",
        inputs=[op2.oport(0)],
    )
    sink1 = g.add_operator("sink1", Sink, partition="pe1")
    sink2 = g.add_operator("sink2", Sink, partition="pe3")
    g.connect(c1.output(0), sink1.iport(0))
    g.connect(c2.output(0), sink2.iport(0))
    return app


def expected_figure3_layout() -> Dict[int, List[str]]:
    """The PE -> operators mapping of Fig. 3 (for tests and the bench)."""
    return {
        1: ["op1", "c1.op3", "c1.op5", "sink1"],
        2: ["c1.op4", "c1.op6", "c2.op4", "c2.op6"],
        3: ["op2", "c2.op3", "c2.op5", "sink2"],
    }
