"""The "Trend Calculator" financial application of Sec. 5.2.

Processes a stock-market stream and applies, per incoming symbol, a set of
financial algorithms over a **600-second sliding time window**: minimum
and maximum trade prices, average price, and the Bollinger bands above and
below the average.

By design the application employs **no checkpointing** (the paper: "to
reduce end-to-end latency and increase application throughput") — so when
a PE crashes, its windows are lost and the application "needs to process
tuples for 600 seconds to fully recover its state".  Each emitted result
carries a ``coverage`` attribute (seconds of data in the window) so
experiments can mark results as trustworthy/diverged, reproducing the
dashed-box divergence of Fig. 9(b).

The partitioning puts the source in its own PE and the calculator+sink in
another, so killing the calculator PE loses all window state while the
feed keeps flowing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.apps.workloads import TradeWorkload
from repro.spl.application import Application
from repro.spl.library import CallbackSource
from repro.spl.metrics import MetricKind
from repro.spl.operators import Operator, OperatorContext
from repro.spl.tuples import StreamTuple
from repro.spl.windows import SlidingTimeWindow


@dataclass
class TrendPoint:
    """One output sample recorded by the result recorder."""

    ts: float
    symbol: str
    minimum: float
    maximum: float
    average: float
    upper_band: float
    lower_band: float
    coverage: float  #: seconds of data backing the numbers
    window_count: int


class TrendRecorderHub:
    """Collects the output streams of every replica (stands in for the GUI).

    One Application object backs all replica jobs, so the sink identifies
    its replica from the ``replica`` submission-time parameter and records
    into the hub under that key.
    """

    def __init__(self) -> None:
        self._points: Dict[str, List[TrendPoint]] = {}

    def record(self, replica: str, tup: StreamTuple) -> None:
        self._points.setdefault(replica, []).append(
            TrendPoint(
                ts=tup["ts"],
                symbol=tup["symbol"],
                minimum=tup["min"],
                maximum=tup["max"],
                average=tup["avg"],
                upper_band=tup["upper"],
                lower_band=tup["lower"],
                coverage=tup["coverage"],
                window_count=tup["count"],
            )
        )

    def replicas(self) -> List[str]:
        return sorted(self._points)

    def points(self, replica: str) -> List[TrendPoint]:
        return list(self._points.get(replica, []))

    def points_for(self, replica: str, symbol: str) -> List[TrendPoint]:
        return [p for p in self._points.get(replica, []) if p.symbol == symbol]

    def series(
        self, replica: str, symbol: str, attr: str = "average"
    ) -> List[tuple]:
        return [(p.ts, getattr(p, attr)) for p in self.points_for(replica, symbol)]


class RecordingSink(Operator):
    """Replica-aware terminal operator feeding a :class:`TrendRecorderHub`."""

    N_OUTPUTS = 0

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        self.hub: Optional[TrendRecorderHub] = self.param("hub", None)
        self.replica = ctx.get_submission_time_value("replica", "0") or "0"

    def on_tuple(self, tup: StreamTuple, port: int) -> None:
        if self.hub is not None:
            self.hub.record(self.replica, tup)


class TrendCalculator(Operator):
    """Per-symbol sliding-window min/max/avg/Bollinger (the algorithms of
    Sec. 5.2).

    Parameters: ``window_span`` (default 600 s), ``bollinger_k``
    (default 2.0).
    """

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        self.window_span = float(self.param("window_span", 600.0))
        self.bollinger_k = float(self.param("bollinger_k", 2.0))
        self._windows: Dict[str, SlidingTimeWindow] = {}
        self.n_symbols = self.create_custom_metric(
            "nSymbols", MetricKind.GAUGE, "distinct symbols with open windows"
        )

    def window_for(self, symbol: str) -> SlidingTimeWindow:
        window = self._windows.get(symbol)
        if window is None:
            window = SlidingTimeWindow(self.window_span)
            self._windows[symbol] = window
            self.n_symbols.set(len(self._windows))
        return window

    def on_tuple(self, tup: StreamTuple, port: int) -> None:
        symbol = tup["symbol"]
        window = self.window_for(symbol)
        now = self.now()
        window.insert(now, tup["price"])
        upper, lower = window.bollinger_bands(self.bollinger_k)
        self.submit(
            {
                "symbol": symbol,
                "ts": now,
                "min": window.minimum(),
                "max": window.maximum(),
                "avg": window.mean(),
                "upper": upper,
                "lower": lower,
                "coverage": window.coverage,
                "count": len(window),
            }
        )


def build_trend_application(
    workload_factory: Callable[[], TradeWorkload],
    hub: Optional[TrendRecorderHub] = None,
    window_span: float = 600.0,
    source_period: float = 1.0,
    app_name: str = "TrendCalculator",
) -> Application:
    """Assemble the Trend Calculator.

    Two PEs: ``feed`` (source) and ``calc`` (calculator + output sink).
    The ``replica`` submission-time parameter labels output for the GUI.
    ``workload_factory`` builds one independent (identically seeded) feed
    per submitted replica, so healthy replicas see the same market data —
    which is what makes the two graphs of Fig. 9(a) identical.
    """
    app = Application(app_name)
    app.declare_parameter("replica", "0")
    g = app.graph

    def make_generator() -> Callable[[float, int], List[Dict[str, Any]]]:
        # Called once per operator *instance* => one identically-seeded
        # independent feed per replica job.
        return workload_factory().generator()

    src = g.add_operator(
        "feed",
        CallbackSource,
        params={"generator_factory": make_generator, "period": source_period},
        partition="feed",
    )
    calc = g.add_operator(
        "calc",
        TrendCalculator,
        params={"window_span": window_span},
        partition="calc",
    )
    out = g.add_operator(
        "out",
        RecordingSink,
        params={"hub": hub},
        partition="calc",
    )
    g.connect(src.oport(0), calc.iport(0))
    g.connect(calc.oport(0), out.iport(0))
    return app
