"""Synthetic workload generators.

The paper's experiments consume live feeds (Twitter's 10% sample stream,
MySpace, stock tickers).  Offline we generate seeded synthetic equivalents
that preserve the *properties the experiments measure*:

* tweets carry a product, a sentiment, and a root-cause phrase whose
  distribution shifts at a configurable time (Fig. 8's "around epoch 250
  we feed a stream of tweets in which users complain about antenna
  issues");
* stock trades follow per-symbol random walks (Sec. 5.2's windowed
  min/max/average/Bollinger computations need plausible numeric series);
* social profiles arrive with a source, a topic sentiment, and a random
  subset of the attributes (gender/age/location) whose discovery counts
  drive the dynamic composition of Sec. 5.3.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence

#: Vocabulary of non-cause filler words for tweet text.
_FILLER = (
    "today", "really", "again", "why", "just", "phone", "using", "my",
    "the", "this", "update", "new", "still", "ever", "worst", "love",
)

_POSITIVE_WORDS = ("love", "great", "awesome", "amazing", "happy")
_NEGATIVE_WORDS = ("hate", "broken", "terrible", "awful", "annoying")

_FIRST_NAMES = (
    "alex", "sam", "jo", "pat", "max", "kim", "lee", "ray", "dana", "cruz",
)

_LOCATIONS = ("ny", "sf", "chicago", "austin", "boston", "seattle")


@dataclass
class CausePhase:
    """One phase of the tweet workload: from ``start`` on, draw causes
    according to ``cause_weights``."""

    start: float
    cause_weights: Dict[str, float]


@dataclass
class TweetWorkload:
    """Seeded tweet stream with a cause-distribution shift.

    Defaults model the paper's experiment: pre-shift complaints are about
    ``flash`` and ``screen`` (the pre-computed model's known causes);
    post-shift complaints are overwhelmingly about ``antenna``.
    """

    product: str = "iphone"
    rate: int = 5  #: tweets per generation tick
    negative_fraction: float = 0.65
    product_fraction: float = 0.8  #: rest mention other products
    phases: Sequence[CausePhase] = field(
        default_factory=lambda: (
            CausePhase(0.0, {"flash": 0.5, "screen": 0.4, "battery": 0.1}),
            CausePhase(
                250.0,
                {"antenna": 0.75, "flash": 0.1, "screen": 0.1, "battery": 0.05},
            ),
        )
    )
    seed: int = 7

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def _phase_at(self, now: float) -> CausePhase:
        current = self.phases[0]
        for phase in self.phases:
            if phase.start <= now:
                current = phase
        return current

    def _draw_cause(self, now: float) -> str:
        weights = self._phase_at(now).cause_weights
        causes = list(weights)
        return self._rng.choices(causes, weights=[weights[c] for c in causes])[0]

    def make_tweet(self, now: float) -> Dict[str, Any]:
        rng = self._rng
        negative = rng.random() < self.negative_fraction
        on_product = rng.random() < self.product_fraction
        product = self.product if on_product else rng.choice(("android", "tablet"))
        words: List[str] = [product]
        if negative:
            cause = self._draw_cause(now)
            words.append(rng.choice(_NEGATIVE_WORDS))
            words.append(cause)
        else:
            cause = ""
            words.append(rng.choice(_POSITIVE_WORDS))
        words.extend(rng.choice(_FILLER) for _ in range(rng.randint(3, 6)))
        rng.shuffle(words)
        return {
            "text": " ".join(words),
            "user": rng.choice(_FIRST_NAMES) + str(rng.randint(1, 999)),
            "product": product,
            "true_sentiment": "neg" if negative else "pos",
            "true_cause": cause,
            "ts": now,
        }

    def generator(self) -> Callable[[float, int], List[Dict[str, Any]]]:
        """A tick generator for :class:`~repro.spl.library.CallbackSource`."""

        def generate(now: float, count: int) -> List[Dict[str, Any]]:
            return [self.make_tweet(now) for _ in range(self.rate)]

        return generate


@dataclass
class TradeWorkload:
    """Per-symbol random-walk stock trades."""

    symbols: Sequence[str] = ("IBM", "MSFT", "GOOG")
    rate: int = 3  #: trades per tick (one per random symbol)
    start_price: float = 100.0
    volatility: float = 0.5
    seed: int = 11

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._prices: Dict[str, float] = {s: self.start_price for s in self.symbols}

    def make_trade(self, now: float) -> Dict[str, Any]:
        rng = self._rng
        symbol = rng.choice(list(self.symbols))
        price = self._prices[symbol] + rng.gauss(0.0, self.volatility)
        price = max(price, 1.0)
        self._prices[symbol] = price
        return {
            "symbol": symbol,
            "price": round(price, 4),
            "volume": rng.randint(1, 500),
            "ts": now,
        }

    def generator(self) -> Callable[[float, int], List[Dict[str, Any]]]:
        def generate(now: float, count: int) -> List[Dict[str, Any]]:
            return [self.make_trade(now) for _ in range(self.rate)]

        return generate


@dataclass
class ProfileWorkload:
    """Social-media profiles with partially-known attributes.

    ``source`` tags the originating site (the two C1 applications use
    different sources); each profile carries a random subset of the
    segmentation attributes, plus a sentiment on the configured topic —
    C1 applications forward only negative-sentiment profiles.
    """

    source: str = "twitter"
    rate: int = 10
    negative_fraction: float = 0.7
    attribute_probabilities: Dict[str, float] = field(
        default_factory=lambda: {"gender": 0.6, "age": 0.45, "location": 0.3}
    )
    seed: int = 23

    def __post_init__(self) -> None:
        # crc32, not hash(): str hashing is salted per process, and a
        # process-dependent seed would make every committed artifact
        # downstream of this workload nondeterministic across runs
        self._rng = random.Random(
            self.seed + zlib.crc32(self.source.encode("utf8")) % 1000
        )
        self._next_id = 0

    def make_profile(self, now: float) -> Dict[str, Any]:
        rng = self._rng
        self._next_id += 1
        attrs: Dict[str, Any] = {}
        if rng.random() < self.attribute_probabilities.get("gender", 0):
            attrs["gender"] = rng.choice(("f", "m"))
        if rng.random() < self.attribute_probabilities.get("age", 0):
            attrs["age"] = rng.randint(16, 75)
        if rng.random() < self.attribute_probabilities.get("location", 0):
            attrs["location"] = rng.choice(_LOCATIONS)
        return {
            "profile_id": f"{self.source}-{self._next_id}",
            "source": self.source,
            "sentiment": "neg" if rng.random() < self.negative_fraction else "pos",
            "attributes": attrs,
            "ts": now,
        }

    def generator(self) -> Callable[[float, int], List[Dict[str, Any]]]:
        def generate(now: float, count: int) -> List[Dict[str, Any]]:
            return [self.make_profile(now) for _ in range(self.rate)]

        return generate


@dataclass
class ChaosFeed:
    """Keyed workload with live rate and key-skew controls.

    The feed of the chaos subsystem (:mod:`repro.chaos`): a seeded keyed
    stream whose *rate* and *key distribution* can be perturbed while the
    job runs — ``RateSurge`` multiplies the per-tick output and
    ``KeySkewShift`` concentrates a fraction of the traffic on a hot key
    set.  Every tuple carries a globally contiguous ``seq``, which is what
    resilience scorecards use for exact tuple-loss and duplicate
    accounting: the feed owns the counter (not the operator instance), so
    a crashed-and-restarted source PE continues the sequence instead of
    restarting it.

    Attributes:
        n_keys: Size of the key universe (``k0 .. k{n-1}``).
        base_rate: Tuples per generation tick at rate factor 1.0.
        seed: Seed of the feed's private random stream.
        key_prefix: Prefix of generated key names.
    """

    n_keys: int = 16
    base_rate: int = 1
    seed: int = 17
    key_prefix: str = "k"

    def __post_init__(self) -> None:
        """Initialize the seeded stream and the live control knobs."""
        self._rng = random.Random(self.seed)
        self._seq = 0
        self.rate_factor = 1.0
        self.hot_fraction = 0.0
        self.hot_keys: Sequence[str] = ()
        #: bumped on every skew change, so observers can tell apart
        #: value-identical shifts
        self.skew_token = 0
        #: (token, hot_fraction, hot_keys) entries of windowed shifts;
        #: the *top* entry is in force, so overlapping windows (nested
        #: or staggered) unwind once all are popped
        self._skew_stack: list = []
        self._next_push_token = 1
        #: the skew windows unwind *to*: the uniform distribution, or
        #: whatever a direct (persistent) set_skew call installed last
        self._base_skew: tuple = (0.0, ())

    @property
    def emitted(self) -> int:
        """Tuples generated so far (the expected-count side of scorecards)."""
        return self._seq

    # -- live controls (driven by chaos perturbations) ----------------------

    def set_rate_factor(self, factor: float) -> float:
        """Scale the per-tick output; returns the previous factor."""
        previous = self.rate_factor
        self.rate_factor = max(0.0, float(factor))
        return previous

    def _apply_skew(self, hot_fraction: float, hot_keys: Sequence[str]) -> None:
        """Install one skew (resolving the default hot-key set)."""
        self.hot_fraction = min(1.0, max(0.0, float(hot_fraction)))
        if self.hot_fraction > 0.0:
            self.hot_keys = tuple(hot_keys) or tuple(
                f"{self.key_prefix}{i}" for i in range(min(2, self.n_keys))
            )
        else:
            self.hot_keys = tuple(hot_keys)
        self.skew_token += 1

    def set_skew(
        self, hot_fraction: float, hot_keys: Sequence[str] = ()
    ) -> Dict[str, Any]:
        """Concentrate ``hot_fraction`` of the traffic on ``hot_keys``.

        This is the *persistent* control: it also becomes the baseline
        that windowed shifts (:meth:`push_skew`) unwind back to.

        Args:
            hot_fraction: Probability in [0, 1] a tuple draws a hot key.
            hot_keys: The hot key set (default: the first two keys).

        Returns:
            The previous skew settings, for restoration.
        """
        previous = {"hot_fraction": self.hot_fraction, "hot_keys": self.hot_keys}
        self._apply_skew(hot_fraction, hot_keys)
        self._base_skew = (self.hot_fraction, self.hot_keys)
        return previous

    def clear_skew(self) -> None:
        """Return to the uniform key distribution (drops pushed shifts)."""
        self._skew_stack = []
        self._base_skew = (0.0, ())
        self._apply_skew(0.0, ())

    def push_skew(self, hot_fraction: float, hot_keys: Sequence[str] = ()) -> int:
        """Apply a *windowed* skew shift; returns a token for :meth:`pop_skew`.

        Pushed shifts form a stack: the newest entry is in force, and
        popping any entry (in whatever order the windows expire —
        nested, staggered, or value-identical) re-applies the newest
        surviving one, falling back to the baseline (the last persistent
        :meth:`set_skew`, or uniform) when none remain.  This is what
        chaos ``KeySkewShift`` windows use.
        """
        token = self._next_push_token
        self._next_push_token += 1
        self._apply_skew(hot_fraction, hot_keys)
        self._skew_stack.append((token, self.hot_fraction, self.hot_keys))
        return token

    def pop_skew(self, token: int) -> None:
        """Retire one pushed shift; the newest surviving shift (or the
        baseline) takes over.  Unknown tokens are ignored."""
        before = len(self._skew_stack)
        self._skew_stack = [e for e in self._skew_stack if e[0] != token]
        if len(self._skew_stack) == before:
            return
        if self._skew_stack:
            _, fraction, keys = self._skew_stack[-1]
            self._apply_skew(fraction, keys)
        else:
            self._apply_skew(*self._base_skew)

    # -- generation ---------------------------------------------------------

    def _draw_key(self) -> str:
        rng = self._rng
        if self.hot_fraction > 0.0 and self.hot_keys and (
            rng.random() < self.hot_fraction
        ):
            return rng.choice(list(self.hot_keys))
        return f"{self.key_prefix}{rng.randrange(self.n_keys)}"

    def make_item(self, now: float) -> Dict[str, Any]:
        """Generate one keyed tuple with the next global sequence number."""
        item = {"key": self._draw_key(), "seq": self._seq, "ts": now}
        self._seq += 1
        return item

    def generator(self) -> Callable[[float, int], List[Dict[str, Any]]]:
        """A tick generator for :class:`~repro.spl.library.CallbackSource`."""

        def generate(now: float, count: int) -> List[Dict[str, Any]]:
            n = max(0, int(round(self.base_rate * self.rate_factor)))
            return [self.make_item(now) for _ in range(n)]

        return generate
