"""Synthetic workload generators.

The paper's experiments consume live feeds (Twitter's 10% sample stream,
MySpace, stock tickers).  Offline we generate seeded synthetic equivalents
that preserve the *properties the experiments measure*:

* tweets carry a product, a sentiment, and a root-cause phrase whose
  distribution shifts at a configurable time (Fig. 8's "around epoch 250
  we feed a stream of tweets in which users complain about antenna
  issues");
* stock trades follow per-symbol random walks (Sec. 5.2's windowed
  min/max/average/Bollinger computations need plausible numeric series);
* social profiles arrive with a source, a topic sentiment, and a random
  subset of the attributes (gender/age/location) whose discovery counts
  drive the dynamic composition of Sec. 5.3.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence

#: Vocabulary of non-cause filler words for tweet text.
_FILLER = (
    "today", "really", "again", "why", "just", "phone", "using", "my",
    "the", "this", "update", "new", "still", "ever", "worst", "love",
)

_POSITIVE_WORDS = ("love", "great", "awesome", "amazing", "happy")
_NEGATIVE_WORDS = ("hate", "broken", "terrible", "awful", "annoying")

_FIRST_NAMES = (
    "alex", "sam", "jo", "pat", "max", "kim", "lee", "ray", "dana", "cruz",
)

_LOCATIONS = ("ny", "sf", "chicago", "austin", "boston", "seattle")


@dataclass
class CausePhase:
    """One phase of the tweet workload: from ``start`` on, draw causes
    according to ``cause_weights``."""

    start: float
    cause_weights: Dict[str, float]


@dataclass
class TweetWorkload:
    """Seeded tweet stream with a cause-distribution shift.

    Defaults model the paper's experiment: pre-shift complaints are about
    ``flash`` and ``screen`` (the pre-computed model's known causes);
    post-shift complaints are overwhelmingly about ``antenna``.
    """

    product: str = "iphone"
    rate: int = 5  #: tweets per generation tick
    negative_fraction: float = 0.65
    product_fraction: float = 0.8  #: rest mention other products
    phases: Sequence[CausePhase] = field(
        default_factory=lambda: (
            CausePhase(0.0, {"flash": 0.5, "screen": 0.4, "battery": 0.1}),
            CausePhase(
                250.0,
                {"antenna": 0.75, "flash": 0.1, "screen": 0.1, "battery": 0.05},
            ),
        )
    )
    seed: int = 7

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def _phase_at(self, now: float) -> CausePhase:
        current = self.phases[0]
        for phase in self.phases:
            if phase.start <= now:
                current = phase
        return current

    def _draw_cause(self, now: float) -> str:
        weights = self._phase_at(now).cause_weights
        causes = list(weights)
        return self._rng.choices(causes, weights=[weights[c] for c in causes])[0]

    def make_tweet(self, now: float) -> Dict[str, Any]:
        rng = self._rng
        negative = rng.random() < self.negative_fraction
        on_product = rng.random() < self.product_fraction
        product = self.product if on_product else rng.choice(("android", "tablet"))
        words: List[str] = [product]
        if negative:
            cause = self._draw_cause(now)
            words.append(rng.choice(_NEGATIVE_WORDS))
            words.append(cause)
        else:
            cause = ""
            words.append(rng.choice(_POSITIVE_WORDS))
        words.extend(rng.choice(_FILLER) for _ in range(rng.randint(3, 6)))
        rng.shuffle(words)
        return {
            "text": " ".join(words),
            "user": rng.choice(_FIRST_NAMES) + str(rng.randint(1, 999)),
            "product": product,
            "true_sentiment": "neg" if negative else "pos",
            "true_cause": cause,
            "ts": now,
        }

    def generator(self) -> Callable[[float, int], List[Dict[str, Any]]]:
        """A tick generator for :class:`~repro.spl.library.CallbackSource`."""

        def generate(now: float, count: int) -> List[Dict[str, Any]]:
            return [self.make_tweet(now) for _ in range(self.rate)]

        return generate


@dataclass
class TradeWorkload:
    """Per-symbol random-walk stock trades."""

    symbols: Sequence[str] = ("IBM", "MSFT", "GOOG")
    rate: int = 3  #: trades per tick (one per random symbol)
    start_price: float = 100.0
    volatility: float = 0.5
    seed: int = 11

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._prices: Dict[str, float] = {s: self.start_price for s in self.symbols}

    def make_trade(self, now: float) -> Dict[str, Any]:
        rng = self._rng
        symbol = rng.choice(list(self.symbols))
        price = self._prices[symbol] + rng.gauss(0.0, self.volatility)
        price = max(price, 1.0)
        self._prices[symbol] = price
        return {
            "symbol": symbol,
            "price": round(price, 4),
            "volume": rng.randint(1, 500),
            "ts": now,
        }

    def generator(self) -> Callable[[float, int], List[Dict[str, Any]]]:
        def generate(now: float, count: int) -> List[Dict[str, Any]]:
            return [self.make_trade(now) for _ in range(self.rate)]

        return generate


@dataclass
class ProfileWorkload:
    """Social-media profiles with partially-known attributes.

    ``source`` tags the originating site (the two C1 applications use
    different sources); each profile carries a random subset of the
    segmentation attributes, plus a sentiment on the configured topic —
    C1 applications forward only negative-sentiment profiles.
    """

    source: str = "twitter"
    rate: int = 10
    negative_fraction: float = 0.7
    attribute_probabilities: Dict[str, float] = field(
        default_factory=lambda: {"gender": 0.6, "age": 0.45, "location": 0.3}
    )
    seed: int = 23

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed + hash(self.source) % 1000)
        self._next_id = 0

    def make_profile(self, now: float) -> Dict[str, Any]:
        rng = self._rng
        self._next_id += 1
        attrs: Dict[str, Any] = {}
        if rng.random() < self.attribute_probabilities.get("gender", 0):
            attrs["gender"] = rng.choice(("f", "m"))
        if rng.random() < self.attribute_probabilities.get("age", 0):
            attrs["age"] = rng.randint(16, 75)
        if rng.random() < self.attribute_probabilities.get("location", 0):
            attrs["location"] = rng.choice(_LOCATIONS)
        return {
            "profile_id": f"{self.source}-{self._next_id}",
            "source": self.source,
            "sentiment": "neg" if rng.random() < self.negative_fraction else "pos",
            "attributes": attrs,
            "ts": now,
        }

    def generator(self) -> Callable[[float, int], List[Dict[str, Any]]]:
        def generate(now: float, count: int) -> List[Dict[str, Any]]:
            return [self.make_profile(now) for _ in range(self.rate)]

        return generate
