"""Simulated Hadoop / BigInsights batch jobs.

Sec. 5.1 of the paper: "the set of possible causes for user frustration
are pre-computed using a Hadoop job ... the second operator then executes
a script that issues a new Hadoop job that recomputes the possible user
frustration causes using the file containing the latest tweets with
negative sentiment".

The simulated cluster runs a cause-extraction MapReduce over the corpus
store: tokenize every negative tweet, count token frequencies (map +
reduce), drop stop words, and publish the tokens that explain at least
``support_fraction`` of the corpus as the new cause model.  The job takes
``duration`` simulated seconds — during which the streaming application
keeps misclassifying, exactly as in Fig. 8 between the threshold crossing
and the ratio recovery.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import List, Optional

from repro.apps.datastore import CauseModelStore, CorpusStore
from repro.sim.kernel import Kernel

#: Words never considered causes (product names, sentiment/filler words).
_STOP_WORDS = frozenset(
    "iphone android tablet hate broken terrible awful annoying love great "
    "awesome amazing happy today really again why just phone using my the "
    "this update new still ever worst".split()
)


@dataclass
class HadoopJobRecord:
    """Bookkeeping for one batch job execution."""

    job_id: int
    submitted_at: float
    duration: float
    completed_at: Optional[float] = None
    causes: tuple = ()

    @property
    def is_complete(self) -> bool:
        return self.completed_at is not None


class SimulatedHadoopCluster:
    """Runs cause-recomputation jobs against a corpus store."""

    def __init__(
        self,
        kernel: Kernel,
        corpus: CorpusStore,
        model_store: CauseModelStore,
        duration: float = 30.0,
        support_fraction: float = 0.15,
        lookback: float = 120.0,
    ) -> None:
        self.kernel = kernel
        self.corpus = corpus
        self.model_store = model_store
        self.duration = duration
        self.support_fraction = support_fraction
        self.lookback = lookback
        self.jobs: List[HadoopJobRecord] = []

    def submit_cause_recomputation(self) -> HadoopJobRecord:
        """Start a batch job; the model store is updated on completion."""
        record = HadoopJobRecord(
            job_id=len(self.jobs) + 1,
            submitted_at=self.kernel.now,
            duration=self.duration,
        )
        self.jobs.append(record)
        self.kernel.schedule(
            self.duration, self._complete, record, label=f"hadoop-{record.job_id}"
        )
        return record

    def _complete(self, record: HadoopJobRecord) -> None:
        causes = self.extract_causes()
        record.completed_at = self.kernel.now
        record.causes = tuple(sorted(causes))
        self.model_store.publish(frozenset(causes), computed_at=self.kernel.now)

    def extract_causes(self) -> List[str]:
        """The MapReduce: frequent non-stop-word tokens in recent tweets."""
        since = max(0.0, self.kernel.now - self.lookback)
        entries = self.corpus.entries_since(since)
        if not entries:
            entries = self.corpus.all_entries()
        counts: Counter = Counter()
        for entry in entries:
            seen_in_tweet = set()
            for token in entry.text.split():
                if token in _STOP_WORDS or len(token) < 3:
                    continue
                if token not in seen_in_tweet:
                    counts[token] += 1
                    seen_in_tweet.add(token)
        if not entries:
            return []
        threshold = max(1, math.ceil(self.support_fraction * len(entries)))
        return [token for token, count in counts.items() if count >= threshold]
