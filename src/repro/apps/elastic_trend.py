"""Elastic Trend: an auto-scaling variant of the Sec. 5.2 trend calculator.

The trade feed fans into a **parallel region** of per-symbol analytics
workers, partitioned by symbol so each worker owns its symbols' state.
Each worker is deliberately rate-limited (a fixed per-channel service
rate stands in for CPU-bound analytics), so a feed that outpaces
``width x rate`` builds worker backlog — the exact overload situation the
paper's Sec. 1 motivates, answered here with *fission* instead of load
shedding: an ORCA orchestrator subscribes to ``channel_congested`` events
and widens the region live, with zero tuple loss.

::

                     +-> work__c0 (rate r) -+
    feed -> analytics__split                 -> analytics__merge -> out
                     +-> work__c1 (rate r) -+

:class:`AutoScalingTrendOrchestrator` demonstrates the full ORCA loop for
elasticity: scope registration (:class:`ParallelRegionScope`), scale-out
on congestion events, optional policy-driven scale-in on a periodic
timer, and width inspection through the service API.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.orca.contexts import (
    ChannelCongestedContext,
    RegionRescaledContext,
    TimerContext,
)
from repro.orca.orchestrator import Orchestrator
from repro.orca.scopes import ParallelRegionScope, TimerScope
from repro.elastic.policy import ScalingPolicy
from repro.spl.application import Application
from repro.spl.library import Beacon, Functor, Sink, Throttle
from repro.spl.metrics import MetricKind
from repro.spl.operators import OperatorContext
from repro.spl.parallel import parallel
from repro.spl.tuples import StreamTuple

REGION = "analytics"
DEFAULT_SYMBOLS = ("IBM", "AAPL", "MSFT", "ORCL", "HPQ", "GOOG")


class TrendWorker(Throttle):
    """Rate-limited per-symbol trend analytics (one parallel channel).

    A :class:`~repro.spl.library.Throttle` whose drain hook computes
    per-symbol count/mean/min/max: it serves at most ``rate`` tuples per
    second, buffering the excess (the inherited ``nBuffered`` gauge is the
    region's congestion metric), holds FINAL until the buffer is empty,
    and reports its backlog to the elastic drain barrier.  The ``_pseq``
    stamp of the region's splitter is propagated onto the output so the
    order-preserving merger can restore global order.

    Statistics are **channel-local**: re-parallelizing the region remaps
    symbols across channels (hash % width), and a symbol landing on a new
    channel restarts its running stats — the same state-loss trade-off the
    paper makes for crash recovery (Sec. 5.2: no checkpointing, windows
    refill).  Cross-rescale state migration is future work (ROADMAP).
    """

    def __init__(self, ctx: OperatorContext) -> None:
        ctx.params.setdefault("rate", 25.0)
        super().__init__(ctx)
        #: symbol -> (count, total, minimum, maximum)
        self._stats: Dict[str, Tuple[int, float, float, float]] = {}
        self.n_analyzed = self.create_custom_metric(
            "nAnalyzed", MetricKind.COUNTER, "trades fully analyzed"
        )

    def process(self, tup: StreamTuple) -> Dict[str, Any]:
        symbol = tup["symbol"]
        price = float(tup["price"])
        count, total, minimum, maximum = self._stats.get(
            symbol, (0, 0.0, price, price)
        )
        count += 1
        total += price
        minimum = min(minimum, price)
        maximum = max(maximum, price)
        self._stats[symbol] = (count, total, minimum, maximum)
        self.n_analyzed.increment()
        out: Dict[str, Any] = {
            "symbol": symbol,
            "price": price,
            "seq": tup.get("seq"),
            "avg": total / count,
            "min": minimum,
            "max": maximum,
            "trades": count,
            "channel": self.ctx.full_name,
        }
        if "_pseq" in tup:
            out["_pseq"] = tup["_pseq"]  # keep the merger's ordering stamp
        return out


def build_elastic_trend_application(
    width: int = 1,
    max_width: int = 8,
    worker_rate: float = 20.0,
    feed_rate: float = 60.0,
    limit: Optional[int] = None,
    congestion_threshold: float = 15.0,
    symbols: Tuple[str, ...] = DEFAULT_SYMBOLS,
    app_name: str = "ElasticTrend",
) -> Application:
    """Assemble the elastic trend application.

    ``feed_rate`` is the trade arrival rate (tuples/second); each worker
    channel serves ``worker_rate`` tuples/second, so sustained operation
    needs ``width >= feed_rate / worker_rate`` — the auto-scaling
    orchestrator discovers that width at runtime from congestion events.
    Every trade carries a unique ``seq`` so sinks can verify exactly-once
    delivery across rescales.
    """
    app = Application(app_name)
    g = app.graph
    per_tick = max(1, int(feed_rate // 10))
    feed = g.add_operator(
        "feed",
        Beacon,
        params={
            "values": {},
            "per_tick": per_tick,
            "period": per_tick / feed_rate,
            "limit": limit,
        },
        partition="feed",
    )
    trades = g.add_operator(
        "trades",
        Functor,
        params={
            "fn": lambda t: {
                "seq": t["iter"],
                "symbol": symbols[t["iter"] % len(symbols)],
                "price": 100.0 + (t["iter"] * 7 % 40) / 4.0,
            }
        },
        partition="feed",
    )
    work = g.add_operator(
        "work",
        TrendWorker,
        params={"rate": worker_rate},
        parallel=parallel(
            width=width,
            partition_by="symbol",
            name=REGION,
            max_width=max_width,
            congestion_metric="nBuffered",
            congestion_threshold=congestion_threshold,
        ),
    )
    out = g.add_operator("out", Sink, partition="out")
    g.connect(feed.oport(0), trades.iport(0))
    g.connect(trades.oport(0), work.iport(0))
    g.connect(work.oport(0), out.iport(0))
    return app


class AutoScalingTrendOrchestrator(Orchestrator):
    """ORCA logic that drives the region's elasticity.

    * On start: registers one :class:`ParallelRegionScope` for the region
      (both ``channel_congested`` and ``region_rescaled``), optionally a
      periodic scale-in timer, and submits the application.
    * On ``channel_congested``: widens the region by one channel (up to
      ``max_width``), guarding against overlapping rescales.
    * On ``region_rescaled``: records the transition and re-reads the
      width through the inspection API.
    * On the timer (when a ``scale_in_policy`` is given): builds a
      :class:`~repro.elastic.policy.RegionObservation` from the service's
      per-channel backlog inspection and applies the policy's decision —
      the timer path only ever narrows the region; widening stays
      event-driven for fast reaction.
    """

    SCALE_IN_TIMER = "scale-in-check"

    def __init__(
        self,
        app_name: str = "ElasticTrend",
        region: str = REGION,
        max_width: int = 8,
        scale_in_policy: Optional[ScalingPolicy] = None,
        scale_in_period: float = 60.0,
    ) -> None:
        super().__init__()
        self.app_name = app_name
        self.region = region
        self.max_width = max_width
        self.scale_in_policy = scale_in_policy
        self.scale_in_period = scale_in_period
        self.job_id: Optional[str] = None
        self.rescaling = False
        #: (old_width, new_width, epoch) per completed rescale
        self.rescale_history: List[Tuple[int, int, int]] = []
        #: (requested_width, error) per failed rescale attempt
        self.failed_rescales: List[Tuple[int, Optional[str]]] = []
        #: width as re-read through ParallelRegionScope inspection
        self.observed_width: Optional[int] = None
        self.congestion_events = 0

    def handleOrcaStart(self, context) -> None:  # noqa: N802
        scope = ParallelRegionScope("elastic-region")
        scope.addApplicationFilter(self.app_name)
        scope.addRegionFilter(self.region)
        self.orca.registerEventScope(scope)
        if self.scale_in_policy is not None:
            self.orca.registerEventScope(
                TimerScope("elastic-timer").addTimerFilter(self.SCALE_IN_TIMER)
            )
            self.orca.create_timer(
                self.scale_in_period,
                periodic=True,
                timer_id=self.SCALE_IN_TIMER,
            )
        job = self.orca.submit_application(self.app_name)
        self.job_id = job.job_id
        self.observed_width = self.orca.channel_width(self.job_id, self.region)

    def handleChannelCongestedEvent(  # noqa: N802
        self, context: ChannelCongestedContext, scopes: List[str]
    ) -> None:
        self.congestion_events += 1
        if self.rescaling or context.job_id != self.job_id:
            return
        width = self.orca.channel_width(self.job_id, self.region)
        if width >= self.max_width:
            return
        self.rescaling = True
        self.orca.set_channel_width(self.job_id, self.region, width + 1)

    def handleRegionRescaledEvent(  # noqa: N802
        self, context: RegionRescaledContext, scopes: List[str]
    ) -> None:
        # Always release the in-flight guard — a failed rescale (drain
        # timeout, unplaceable channel) must not wedge auto-scaling forever.
        self.rescaling = False
        if not context.succeeded:
            self.failed_rescales.append((context.new_width, context.error))
            return
        self.rescale_history.append(
            (context.old_width, context.new_width, context.epoch)
        )
        self.observed_width = self.orca.channel_width(self.job_id, self.region)

    def handleTimerEvent(  # noqa: N802
        self, context: TimerContext, scopes: List[str]
    ) -> None:
        if (
            self.scale_in_policy is None
            or self.rescaling
            or self.job_id is None
            or not self.orca.job_is_running(self.job_id)
        ):
            return
        observation = self.orca.region_observation(self.job_id, self.region)
        target = self.scale_in_policy.decide(observation)
        if target is not None and target < observation.width:
            self.rescaling = True
            self.orca.set_channel_width(self.job_id, self.region, target)
