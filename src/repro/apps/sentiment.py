"""The sentiment-analysis application of Fig. 1 / Sec. 5.1.

Pipeline (operator numbering follows Fig. 1):

* ``op1`` TweetSource — consumes the (synthetic) Twitter feed;
* ``op3`` SentimentClassifier — filters to the product of interest and
  classifies each tweet as positive/negative by keyword matching;
* ``op5`` CauseMatcher — correlates each negative tweet with a known
  cause from the (reloadable) cause model, stores the tweet in the corpus
  for later batch processing, and maintains the two custom metrics the
  orchestrator subscribes to: ``nKnownCause`` and ``nUnknownCause``;
* ``op6`` Aggregate — aggregates causes over tumbling windows to find the
  top causes of user frustration;
* ``op7`` Display — sink consumed by the display application.

The adaptation logic (Fig. 1's op8/op9) is deliberately *absent* from the
graph: the whole point of the paper is that it moves to the ORCA logic
(:class:`repro.apps.orchestrators.SentimentOrca`).  For the ablation
benchmark we also provide :func:`build_embedded_adaptation_application`,
the pre-orchestrator variant in which op8/op9 live in the graph.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Dict, List, Optional

from repro.apps.datastore import CauseModelStore, CorpusStore
from repro.apps.workloads import TweetWorkload
from repro.spl.application import Application
from repro.spl.library import Aggregate, CallbackSource, Sink
from repro.spl.metrics import MetricKind
from repro.spl.operators import Operator, OperatorContext
from repro.spl.tuples import StreamTuple

NEGATIVE_WORDS = frozenset(("hate", "broken", "terrible", "awful", "annoying"))
POSITIVE_WORDS = frozenset(("love", "great", "awesome", "amazing", "happy"))


class SentimentClassifier(Operator):
    """Filters to the product of interest; classifies sentiment (op3).

    Parameters: ``product``.  Output attributes add ``sentiment``
    ('pos'/'neg') and ``tokens``.  Tweets about other products are
    discarded (counted in the ``nOffTopic`` custom metric).
    """

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        self.product: str = self.param("product", "iphone")
        self.n_off_topic = self.create_custom_metric(
            "nOffTopic", MetricKind.COUNTER, "tweets not about the product"
        )

    def on_tuple(self, tup: StreamTuple, port: int) -> None:
        tokens = tup["text"].split()
        if self.product not in tokens:
            self.n_off_topic.increment()
            return
        negative = any(t in NEGATIVE_WORDS for t in tokens)
        positive = any(t in POSITIVE_WORDS for t in tokens)
        sentiment = "neg" if negative and not positive else "pos"
        self.submit(tup.with_values(sentiment=sentiment, tokens=tokens))


class CauseMatcher(Operator):
    """Correlates negative tweets with known causes (op5).

    Parameters: ``model_store`` (:class:`CauseModelStore`) and ``corpus``
    (:class:`CorpusStore`).  The operator reloads the model whenever the
    store's version changes — the paper's "the new set of causes is then
    automatically reloaded".
    """

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        self.model_store: CauseModelStore = self.param("model_store")
        self.corpus: CorpusStore = self.param("corpus")
        self._model = self.model_store.current
        self.n_known = self.create_custom_metric(
            "nKnownCause", MetricKind.COUNTER, "negative tweets with a known cause"
        )
        self.n_unknown = self.create_custom_metric(
            "nUnknownCause", MetricKind.COUNTER, "negative tweets with unknown cause"
        )
        self.n_reloads = self.create_custom_metric(
            "nModelReloads", MetricKind.COUNTER, "cause model reloads"
        )
        #: optional shared dict mirroring the counters — the embedded
        #: (pre-orchestrator) variant's op8 reads it, standing in for the
        #: custom-metric stream s' of Fig. 1.
        self.metrics_mirror: Optional[Dict[str, float]] = self.param(
            "metrics_mirror", None
        )

    def on_tuple(self, tup: StreamTuple, port: int) -> None:
        if self.model_store.version != self._model.version:
            self._model = self.model_store.current
            self.n_reloads.increment()
        if tup.get("sentiment") != "neg":
            return
        self.corpus.append(tup["text"], ts=self.now())
        cause = self._model.knows(tup["tokens"])
        if cause is None:
            self.n_unknown.increment()
            cause = "unknown"
        else:
            self.n_known.increment()
        if self.metrics_mirror is not None:
            self.metrics_mirror["nKnownCause"] = self.n_known.value
            self.metrics_mirror["nUnknownCause"] = self.n_unknown.value
        self.submit(tup.with_values(cause=cause))


def _aggregate_causes(batch: List[StreamTuple]) -> Dict[str, Any]:
    counts = Counter(t["cause"] for t in batch)
    top = counts.most_common(3)
    return {
        "window_size": len(batch),
        "top_causes": [c for c, _ in top],
        "counts": dict(counts),
    }


def build_sentiment_application(
    workload: TweetWorkload,
    corpus: CorpusStore,
    model_store: CauseModelStore,
    product: str = "iphone",
    source_period: float = 1.0,
    aggregate_window: int = 20,
    display_consumer: Optional[Callable[[StreamTuple], None]] = None,
    matcher_mirror: Optional[Dict[str, float]] = None,
) -> Application:
    """Assemble the Sec. 5.1 application (control logic NOT included)."""
    app = Application("SentimentAnalysis")
    g = app.graph
    op1 = g.add_operator(
        "op1",
        CallbackSource,
        params={"generator": workload.generator(), "period": source_period},
        partition="ingest",
    )
    op3 = g.add_operator(
        "op3", SentimentClassifier, params={"product": product}, partition="ingest"
    )
    op5 = g.add_operator(
        "op5",
        CauseMatcher,
        params={
            "model_store": model_store,
            "corpus": corpus,
            "metrics_mirror": matcher_mirror,
        },
        partition="analytics",
    )
    op6 = g.add_operator(
        "op6",
        Aggregate,
        params={"count": aggregate_window, "aggregator": _aggregate_causes},
        partition="analytics",
    )
    op7 = g.add_operator(
        "op7",
        Sink,
        params={"consumer": display_consumer, "record": False},
        partition="analytics",
    )
    g.connect(op1.oport(0), op3.iport(0))
    g.connect(op3.oport(0), op5.iport(0))
    g.connect(op5.oport(0), op6.iport(0))
    g.connect(op6.oport(0), op7.iport(0))
    return app


class EmbeddedAdaptationMonitor(Operator):
    """The pre-orchestrator op8: watches the known/unknown counters.

    Used only by the ablation variant: this operator receives the
    aggregated stream, reads the CauseMatcher's counters through the
    shared mirror (standing in for the custom-metric stream s' of
    Fig. 1), and emits a trigger tuple when unknown > known.
    """

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        self.threshold: float = float(self.param("threshold", 1.0))
        self.smoothing: int = int(self.param("smoothing", 5))
        self.matcher_metrics = self.param("matcher_metrics")  # dict-like proxy
        self._prev_known = 0.0
        self._prev_unknown = 0.0
        self._recent: List[tuple] = []

    def on_tuple(self, tup: StreamTuple, port: int) -> None:
        # Same policy as the orchestrated variant: the counters are
        # cumulative, the condition looks at the mix of *recent* tweets.
        known = self.matcher_metrics.get("nKnownCause", 0.0)
        unknown = self.matcher_metrics.get("nUnknownCause", 0.0)
        d_known = known - self._prev_known
        d_unknown = unknown - self._prev_unknown
        self._prev_known, self._prev_unknown = known, unknown
        if d_known == 0 and d_unknown == 0:
            return
        self._recent.append((d_known, d_unknown))
        if len(self._recent) > self.smoothing:
            self._recent.pop(0)
        sum_known = sum(k for k, _ in self._recent)
        sum_unknown = sum(u for _, u in self._recent)
        ratio = sum_unknown / max(sum_known, 1.0)
        if ratio > self.threshold:
            self.submit({"trigger": True, "ratio": ratio})


class EmbeddedAdaptationActuator(Operator):
    """The pre-orchestrator op9: calls the external recomputation script."""

    N_OUTPUTS = 0

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        self.script: Callable[[], Any] = self.param("script")
        self.min_interval: float = float(self.param("min_interval", 600.0))
        self._last_trigger: Optional[float] = None
        self.n_triggers = self.create_custom_metric("nTriggers", MetricKind.COUNTER)

    def on_tuple(self, tup: StreamTuple, port: int) -> None:
        now = self.now()
        if self._last_trigger is not None and now - self._last_trigger < self.min_interval:
            return
        self._last_trigger = now
        self.n_triggers.increment()
        self.script()


def build_embedded_adaptation_application(
    workload: TweetWorkload,
    corpus: CorpusStore,
    model_store: CauseModelStore,
    script: Callable[[], Any],
    product: str = "iphone",
    source_period: float = 1.0,
    aggregate_window: int = 20,
    threshold: float = 1.0,
    min_interval: float = 600.0,
) -> Application:
    """Fig. 1 as-is: data processing AND control logic in one graph.

    This is the baseline the paper argues against — the adaptation logic
    (op8/op9) is welded into the graph, so neither part can be reused.
    The ablation benchmark compares it against the orchestrated variant.
    """
    matcher_metrics: Dict[str, float] = {}
    app = build_sentiment_application(
        workload,
        corpus,
        model_store,
        product=product,
        source_period=source_period,
        aggregate_window=aggregate_window,
        matcher_mirror=matcher_metrics,
    )
    app.name = "SentimentAnalysisEmbedded"
    g = app.graph
    op8 = g.add_operator(
        "op8",
        EmbeddedAdaptationMonitor,
        params={"threshold": threshold, "matcher_metrics": matcher_metrics},
        partition="analytics",
    )
    op9 = g.add_operator(
        "op9",
        EmbeddedAdaptationActuator,
        params={"script": script, "min_interval": min_interval},
        partition="analytics",
    )
    # splice: op6 -> op8 -> op9 (in addition to op6 -> op7)
    op6 = g.operator("op6")
    g.connect(op6.oport(0), op8.iport(0))
    g.connect(op8.oport(0), op9.iport(0))
    return app
