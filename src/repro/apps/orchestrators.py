"""The three orchestrators of Sec. 5, as reusable library code.

* :class:`SentimentOrca` — Sec. 5.1: watches the ``nKnownCause`` /
  ``nUnknownCause`` custom metrics and triggers the (simulated) Hadoop
  cause-recomputation when unknown overtakes known, with a 10-minute
  re-trigger guard.  (The paper's C++ version is 114 lines.)
* :class:`FailoverOrca` — Sec. 5.2: runs N replicas of the Trend
  Calculator in exclusive host pools, tracks active/backup status in a
  status board (optionally mirrored to a file for the GUI), and on a PE
  failure of the active replica fails over to the oldest healthy replica
  before restarting the failed PE.  (Paper: 196 lines.)
* :class:`CompositionOrca` — Sec. 5.3: wires C2->C1 dependencies, starts
  the C2 layer (which pulls C1 up automatically), spawns a C3 job when
  enough *new* profiles with an attribute accumulated, and cancels the C3
  job when its sink observes final punctuation.  (Paper: 139 lines.)
"""

from __future__ import annotations

import inspect
from typing import Any, Dict, List, Optional, TextIO, Tuple

from repro.apps.hadoop import SimulatedHadoopCluster
from repro.apps.socialmedia import SEGMENT_ATTRIBUTES
from repro.orca.contexts import (
    JobCancellationContext,
    JobSubmissionContext,
    OperatorMetricContext,
    OrcaStartContext,
    PEFailureContext,
)
from repro.orca.orchestrator import Orchestrator
from repro.orca.scopes import (
    JobCancellationScope,
    JobSubmissionScope,
    OperatorMetricScope,
    PEFailureScope,
)
from repro.runtime.pe import PEState


class SentimentOrca(Orchestrator):
    """Adaptation to incoming data distribution (Sec. 5.1)."""

    def __init__(
        self,
        hadoop: SimulatedHadoopCluster,
        app_name: str = "SentimentAnalysis",
        threshold: float = 1.0,
        retrigger_guard: float = 600.0,
        smoothing: int = 5,
    ) -> None:
        super().__init__()
        self.hadoop = hadoop
        self.app_name = app_name
        self.threshold = threshold
        self.retrigger_guard = retrigger_guard
        self.smoothing = max(1, smoothing)
        self.job = None
        #: measured (epoch, ratio) series — the y/x data of Fig. 8
        self.ratio_series: List[Tuple[int, float]] = []
        self.trigger_times: List[float] = []
        self._known: Optional[Tuple[int, float]] = None
        self._unknown: Optional[Tuple[int, float]] = None
        self._prev_known = 0.0
        self._prev_unknown = 0.0
        self._recent_deltas: List[Tuple[float, float]] = []

    def handleOrcaStart(self, context: OrcaStartContext) -> None:  # noqa: N802
        oms = OperatorMetricScope("causeMetrics")
        oms.addApplicationFilter(self.app_name)
        oms.addOperatorMetric(["nKnownCause", "nUnknownCause"])
        self._orca.registerEventScope(oms)
        self.job = self._orca.submit_application(self.app_name)

    def handleOperatorMetricEvent(  # noqa: N802
        self, context: OperatorMetricContext, scopes: List[str]
    ) -> None:
        if context.metric == "nKnownCause":
            self._known = (context.epoch, context.value)
        elif context.metric == "nUnknownCause":
            self._unknown = (context.epoch, context.value)
        else:
            return
        if self._known is None or self._unknown is None:
            return
        if self._known[0] != self._unknown[0]:
            return  # not measured in the same round (Fig. 6 line 19)
        self._evaluate(self._known[0], self._known[1], self._unknown[1])

    def _evaluate(self, epoch: int, known: float, unknown: float) -> None:
        # Per-round deltas: the counters are cumulative, the policy looks
        # at the mix of *recent* tweets (smoothed over a few poll rounds to
        # avoid spurious triggers on tiny samples).
        d_known = known - self._prev_known
        d_unknown = unknown - self._prev_unknown
        self._prev_known, self._prev_unknown = known, unknown
        if d_known < 0 or d_unknown < 0:
            # counters reset (PE restart): restart the delta baseline
            self._recent_deltas.clear()
            return
        if d_known == 0 and d_unknown == 0:
            return
        self._recent_deltas.append((d_known, d_unknown))
        if len(self._recent_deltas) > self.smoothing:
            self._recent_deltas.pop(0)
        sum_known = sum(k for k, _ in self._recent_deltas)
        sum_unknown = sum(u for _, u in self._recent_deltas)
        ratio = sum_unknown / max(sum_known, 1.0)
        self.ratio_series.append((epoch, ratio))
        if ratio <= self.threshold:
            return
        now = self._orca.now
        if self.trigger_times and now - self.trigger_times[-1] < self.retrigger_guard:
            return  # one job per 10 minutes (Sec. 5.1's guard)
        self.trigger_times.append(now)
        self._orca.run_external(self.hadoop.submit_cause_recomputation)


class FailoverOrca(Orchestrator):
    """Adaptation to failures via replica failover (Sec. 5.2)."""

    def __init__(
        self,
        app_name: str = "TrendCalculator",
        n_replicas: int = 3,
        status_stream: Optional[TextIO] = None,
    ) -> None:
        super().__init__()
        self.app_name = app_name
        self.n_replicas = n_replicas
        self.status_stream = status_stream
        #: job_id -> {"replica": str, "status": "active"|"backup", "submit_time": float}
        self.replicas: Dict[str, Dict[str, Any]] = {}
        #: (time, failed job, promoted job) — recorded failovers
        self.failovers: List[Tuple[float, str, str]] = []

    # -- helpers -----------------------------------------------------------

    def active_job_id(self) -> Optional[str]:
        for job_id, record in self.replicas.items():
            if record["status"] == "active":
                return job_id
        return None

    def _is_healthy(self, job_id: str) -> bool:
        job = self._orca.job(job_id)
        return all(pe.state is PEState.RUNNING for pe in job.pes)

    def _write_status(self) -> None:
        """Propagate replica status to the file the GUI reads (Sec. 5.2)."""
        if self.status_stream is None:
            return
        for job_id, record in sorted(self.replicas.items()):
            self.status_stream.write(
                f"{self._orca.now:.3f} replica={record['replica']} "
                f"job={job_id} status={record['status']}\n"
            )

    # -- handlers ------------------------------------------------------------

    def handleOrcaStart(self, context: OrcaStartContext) -> None:  # noqa: N802
        self._orca.set_exclusive_host_pools(self.app_name)
        for i in range(self.n_replicas):
            job = self._orca.submit_application(
                self.app_name, params={"replica": str(i)}
            )
            self.replicas[job.job_id] = {
                "replica": str(i),
                "status": "active" if i == 0 else "backup",
                "submit_time": self._orca.now,
            }
        pfs = PEFailureScope("replicaFailures")
        pfs.addApplicationFilter(self.app_name)
        self._orca.registerEventScope(pfs)
        self._write_status()

    def handlePEFailureEvent(  # noqa: N802
        self, context: PEFailureContext, scopes: List[str]
    ) -> None:
        record = self.replicas.get(context.job_id)
        if record is None:
            return
        if record["status"] == "active":
            # Fail over to the oldest healthy replica (longest history =>
            # most likely full sliding windows, Sec. 5.2).
            candidates = [
                (job_id, rec)
                for job_id, rec in self.replicas.items()
                if job_id != context.job_id and self._is_healthy(job_id)
            ]
            if candidates:
                promoted_id, promoted = min(
                    candidates, key=lambda item: item[1]["submit_time"]
                )
                promoted["status"] = "active"
                record["status"] = "backup"
                self.failovers.append((self._orca.now, context.job_id, promoted_id))
                self._write_status()
        self._orca.restart_pe(context.pe_id)


class CompositionOrca(Orchestrator):
    """On-demand dynamic application composition (Sec. 5.3)."""

    C1_APPS = ("TwitterStreamReader", "MySpaceStreamReader")
    C2_APPS = ("TwitterQuery", "BlogQuery", "FacebookQuery")

    def __init__(
        self,
        threshold: int = 1500,
        attributes: Tuple[str, ...] = SEGMENT_ATTRIBUTES,
        c3_app: str = "AttributeAggregator",
        c1_gc_timeout: float = 5.0,
    ) -> None:
        super().__init__()
        self.threshold = threshold
        self.attributes = attributes
        self.c3_app = c3_app
        self.c1_gc_timeout = c1_gc_timeout
        #: latest count per (C2 app, attribute)
        self.counts: Dict[Tuple[str, str], float] = {}
        #: profile count at the last C3 submission, per attribute
        self.baseline: Dict[str, float] = {}
        #: attribute -> running C3 job id
        self.c3_jobs: Dict[str, str] = {}
        self.c3_history: List[Tuple[float, str, str]] = []  #: (t, attr, job)
        self.events: List[Tuple[str, str, float]] = []  #: (kind, app, time)

    def handleOrcaStart(self, context: OrcaStartContext) -> None:  # noqa: N802
        self._register_scopes()
        deps = self._orca.deps
        for c1 in self.C1_APPS:
            deps.create_app_config(
                c1, c1, garbage_collectable=True, gc_timeout=self.c1_gc_timeout
            )
        for c2 in self.C2_APPS:
            deps.create_app_config(c2, c2)
            for c1 in self.C1_APPS:
                # C1 apps build no internal state: uptime requirement 0.
                deps.register_dependency(c2, c1, uptime_requirement=0.0)
        for c2 in self.C2_APPS:
            deps.start(c2)

    def _register_scopes(self) -> None:
        counts_scope = OperatorMetricScope("profileCounts")
        counts_scope.addApplicationFilter(list(self.C2_APPS))
        counts_scope.addOperatorMetric(
            [f"nProfiles_{attr}" for attr in self.attributes]
        )
        self._orca.registerEventScope(counts_scope)
        final_scope = OperatorMetricScope("finalPunct")
        final_scope.addApplicationFilter(self.c3_app)
        final_scope.addOperatorTypeFilter("Sink")
        final_scope.addOperatorMetric(
            OperatorMetricScope.nFinalPunctsProcessed
        )
        self._orca.registerEventScope(final_scope)
        self._orca.registerEventScope(JobSubmissionScope("submissions"))
        self._orca.registerEventScope(JobCancellationScope("cancellations"))

    def handleJobSubmissionEvent(  # noqa: N802
        self, context: JobSubmissionContext, scopes: List[str]
    ) -> None:
        self.events.append(("submit", context.app_name, context.time))

    def handleJobCancellationEvent(  # noqa: N802
        self, context: JobCancellationContext, scopes: List[str]
    ) -> None:
        self.events.append(("cancel", context.app_name, context.time))

    def handleOperatorMetricEvent(  # noqa: N802
        self, context: OperatorMetricContext, scopes: List[str]
    ) -> None:
        if "finalPunct" in scopes:
            if context.value >= 1 and context.job_id in self.c3_jobs.values():
                self._finish_c3(context.job_id)
            return
        if not context.metric.startswith("nProfiles_"):
            return
        attribute = context.metric[len("nProfiles_"):]
        self.counts[(context.app_name, attribute)] = context.value
        self._maybe_spawn_c3(attribute)

    def _aggregate(self, attribute: str) -> float:
        return sum(
            value
            for (app, attr), value in self.counts.items()
            if attr == attribute
        )

    def _maybe_spawn_c3(self, attribute: str) -> None:
        if attribute in self.c3_jobs:
            return  # one segmentation job per attribute at a time
        total = self._aggregate(attribute)
        if total - self.baseline.get(attribute, 0.0) < self.threshold:
            return
        job = self._orca.submit_application(
            self.c3_app, params={"attribute": attribute}
        )
        self.c3_jobs[attribute] = job.job_id
        self.baseline[attribute] = total
        self.c3_history.append((self._orca.now, attribute, job.job_id))

    def _finish_c3(self, job_id: str) -> None:
        for attribute, running_id in list(self.c3_jobs.items()):
            if running_id == job_id:
                self._orca.cancel_job(job_id)
                del self.c3_jobs[attribute]


def orca_logic_loc(cls: type) -> int:
    """Non-blank, non-comment source lines of an ORCA logic class.

    Used to reproduce the paper's orchestrator-size claims (114 / 196 /
    139 lines of C++ for the three use cases).
    """
    source = inspect.getsource(cls)
    count = 0
    in_docstring = False
    for line in source.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith('"""') or stripped.startswith("'''"):
            # toggle on docstring delimiters (handles one-line docstrings)
            quotes = stripped.count('"""') + stripped.count("'''")
            if quotes == 1:
                in_docstring = not in_docstring
            continue
        if in_docstring:
            continue
        if stripped.startswith("#"):
            continue
        count += 1
    return count
