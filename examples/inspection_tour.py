#!/usr/bin/env python
"""A tour of the ORCA inspection API (Sec. 4.2) and the visualization tools.

The paper's second key challenge: events must come with enough context to
"disambiguate logical and physical views of an application".  This example
submits the Fig. 2 application and walks through every inspection query
the paper lists, plus the DOT/ASCII renderings of both views.

Run:  python examples/inspection_tour.py
"""

from repro import ManagedApplication, Orchestrator, OrcaDescriptor, SystemS
from repro.apps.figure2 import build_figure2_application
from repro.tools import (
    render_application_ascii,
    render_deployment_ascii,
    render_system_dot,
)


class TourOrca(Orchestrator):
    def handleOrcaStart(self, context):
        self.job = self.orca.submit_application("Figure2")


def main() -> None:
    system = SystemS(hosts=2, seed=42)
    app = build_figure2_application()
    service = system.submit_orchestrator(
        OrcaDescriptor(
            name="Tour",
            logic=TourOrca,
            applications=[ManagedApplication(name=app.name, application=app)],
        )
    )
    system.run_for(5.0)
    job = service.logic.job

    print("== logical view (what the developer wrote, Fig. 2) ==")
    print(render_application_ascii(app))

    print("\n== physical view (what actually runs, Fig. 3) ==")
    print(render_deployment_ascii(job))

    print("\n== the paper's inspection queries (Sec. 4.2) ==")
    pe_id = service.pe_of_operator(job.job_id, "c1.op4")
    print(f"PE id for operator instance c1.op4:            {pe_id}")
    print(f"Which operators reside in {pe_id}?              "
          f"{service.operators_in_pe(pe_id)}")
    print(f"Which composites reside in {pe_id}?             "
          f"{sorted(service.composites_in_pe(pe_id))}")
    print(f"Enclosing composite of c1.op4:                 "
          f"{service.enclosing_composite('Figure2', 'c1.op4')}")
    print(f"Same-OS-process neighbours of c1.op4:          "
          f"{service.colocated_operators(job.job_id, 'c1.op4')}")
    print(f"Host of {pe_id}:                                "
          f"{service.host_of_pe(pe_id)}")
    print(f"All PEs of {job.job_id}:                           "
          f"{service.pes_of_job(job.job_id)}")
    print(f"Operators of type Split:                       "
          f"{service.operators_of_type('Figure2', 'Split')}")

    print("\n== Graphviz rendering of the live system ==")
    dot = render_system_dot(system)
    print(dot[:400] + "\n  ... (render with: dot -Tsvg)")


if __name__ == "__main__":
    main()
