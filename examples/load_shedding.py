#!/usr/bin/env python
"""Load shedding under transient overload — the paper's Sec. 1 example.

"When the application is overloaded due to a transient high input data
rate, it may need to temporarily apply load shedding policies to maintain
answer timeliness."

The application: a bursty source -> LoadShedder -> Throttle (models a
slow consumer; its custom ``nBuffered`` gauge is the congestion signal)
-> sink.  The orchestrator polls the gauge and adapts through control
commands (Sec. 3: the ORCA service routes control commands to operator
instances):

* backlog above the high-water mark -> raise the shedding fraction;
* backlog back at zero              -> stop shedding.

Run:  python examples/load_shedding.py
"""

from repro import ManagedApplication, Orchestrator, OrcaDescriptor, SystemS
from repro.orca import OperatorMetricScope
from repro.spl import Application
from repro.spl.library import CallbackSource, LoadShedder, Sink, Throttle


def build_bursty_app(burst_start=100.0, burst_end=200.0) -> Application:
    def generate(now, count):
        rate = 30 if burst_start <= now < burst_end else 4
        return [{"seq": count + i, "ts": now} for i in range(rate)]

    app = Application("Bursty")
    g = app.graph
    src = g.add_operator(
        "src", CallbackSource, params={"generator": generate, "period": 1.0},
        partition="p1",
    )
    shed = g.add_operator(
        "shed", LoadShedder, params={"fraction": 0.0}, partition="p1"
    )
    slow = g.add_operator(
        "slow", Throttle, params={"rate": 8.0}, partition="p2"
    )
    sink = g.add_operator("sink", Sink, params={"record": False}, partition="p2")
    g.connect(src.oport(0), shed.iport(0))
    g.connect(shed.oport(0), slow.iport(0))
    g.connect(slow.oport(0), sink.iport(0))
    return app


class SheddingOrca(Orchestrator):
    """Backlog-driven shedding policy (high/low water marks)."""

    HIGH_WATER = 40.0
    STEP = 0.3

    def __init__(self):
        super().__init__()
        self.job = None
        self.actions = []
        self.backlog_series = []
        self._fraction = 0.0

    def handleOrcaStart(self, context):
        scope = OperatorMetricScope("backlog")
        scope.addOperatorInstanceFilter("slow")
        scope.addOperatorMetric("nBuffered")
        self.orca.registerEventScope(scope)
        self.job = self.orca.submit_application("Bursty")

    def handleOperatorMetricEvent(self, context, scopes):
        self.backlog_series.append((context.collection_ts, context.value))
        if context.value > self.HIGH_WATER and self._fraction < 0.9:
            self._fraction = min(self._fraction + self.STEP, 0.9)
        elif context.value == 0 and self._fraction > 0.0:
            self._fraction = 0.0
        else:
            return
        self.orca.send_control(
            self.job.job_id, "shed", "setSheddingFraction",
            {"fraction": self._fraction},
        )
        self.actions.append((self.orca.now, self._fraction))


def main() -> None:
    system = SystemS(hosts=2, seed=42)
    app = build_bursty_app()
    logic = SheddingOrca()
    system.submit_orchestrator(
        OrcaDescriptor(
            name="SheddingOrca",
            logic=lambda: logic,
            applications=[ManagedApplication(name=app.name, application=app)],
            metric_poll_interval=5.0,
        )
    )
    print("running 300 s (burst between t=100 and t=200) ...")
    system.run_for(300.0)

    print("\nbacklog at the slow consumer (and shedding reactions):")
    actions = dict(
        (round(t), f) for t, f in logic.actions
    )
    for ts, backlog in logic.backlog_series:
        if ts % 15 < 5:
            bar = "#" * int(min(backlog, 70))
            note = ""
            for t, fraction in logic.actions:
                if abs(t - ts) <= 5:
                    note = f"   <- set shedding to {fraction:.1f}"
            print(f"  t={ts:5.0f}  backlog={backlog:5.0f}  {bar}{note}")

    job = logic.job
    shed_op = job.operator_instance("shed")
    print(f"\ntuples shed during the burst: {int(shed_op.metric('nShed').value)}")
    print(f"shedding actions taken: {logic.actions}")
    final_backlog = logic.backlog_series[-1][1]
    print(f"final backlog: {final_backlog:.0f} (shedding released: "
          f"{logic.actions[-1][1] == 0.0})")


if __name__ == "__main__":
    main()
