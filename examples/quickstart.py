#!/usr/bin/env python
"""Quickstart: compose an application, orchestrate it, react to events.

Walks through the paper's core concepts in ~80 lines:

1. assemble the Fig. 2 application (a reusable split/merge composite
   instantiated twice);
2. write an ORCA logic that registers the exact event scopes of the
   paper's Fig. 5 — queueSize metrics of Split/Merge operators inside
   composite1, plus PE failures of the application;
3. submit the orchestrator, watch metric events arrive with epochs,
   crash a PE, and watch the failure handler restart it.

Run:  python examples/quickstart.py
"""

from repro import ManagedApplication, Orchestrator, OrcaDescriptor, SystemS
from repro.apps.figure2 import build_figure2_application
from repro.orca import OperatorMetricScope, PEFailureScope


class QuickstartOrca(Orchestrator):
    """The ORCA logic of the paper's Figs. 5-6, in Python."""

    def handleOrcaStart(self, context):
        # Fig. 5: operator metric subscope with composite-type, operator-
        # type and metric-name filters ...
        oms = OperatorMetricScope("opMetricScope")
        oms.addCompositeTypeFilter("composite1")
        oms.addOperatorTypeFilter(["Split", "Merge"])
        oms.addOperatorMetric(OperatorMetricScope.queueSize)
        # ... and a PE failure subscope with an application filter.
        pfs = PEFailureScope("failureScope")
        pfs.addApplicationFilter("Figure2")
        self.orca.registerEventScope(oms)
        self.orca.registerEventScope(pfs)
        self.job = self.orca.submit_application("Figure2")
        print(f"[{self.orca.now:7.2f}] orchestrator started; submitted {self.job.job_id}")

    def handleOperatorMetricEvent(self, context, scopes):
        print(
            f"[{self.orca.now:7.2f}] metric event: {context.instanceName} "
            f"{context.metric}={context.value:.0f} epoch={context.epoch} "
            f"scopes={scopes}"
        )

    def handlePEFailureEvent(self, context, scopes):
        inside = self.orca.operators_in_pe(context.pe_id)
        composites = self.orca.composites_in_pe(context.pe_id)
        print(
            f"[{self.orca.now:7.2f}] PE FAILURE: {context.pe_id} "
            f"reason={context.reason} epoch={context.epoch}"
        )
        print(f"          operators in failed PE: {inside}")
        print(f"          composites touching it: {sorted(composites)}")
        self.orca.restart_pe(context.pe_id)
        print(f"          -> restart requested")


def main() -> None:
    system = SystemS(hosts=2, seed=42)
    app = build_figure2_application(per_tick=3, period=0.5)

    descriptor = OrcaDescriptor(
        name="QuickstartOrca",
        logic=QuickstartOrca,
        applications=[ManagedApplication(name=app.name, application=app)],
        metric_poll_interval=15.0,  # the paper's default SRM poll rate
    )
    service = system.submit_orchestrator(descriptor)

    print("== running 35 s: two metric poll rounds ==")
    system.run_for(35.0)

    print("== crashing the shared PE (c1.op4/op6 + c2.op4/op6, Fig. 3) ==")
    job = service.logic.job
    system.failures.crash_pe(job.job_id, pe_index=2)
    system.run_for(20.0)

    print("== done ==")
    states = {pe.pe_id: pe.state.value for pe in job.pes}
    print(f"final PE states: {states}")
    assert all(state == "running" for state in states.values())


if __name__ == "__main__":
    main()
