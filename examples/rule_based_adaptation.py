#!/usr/bin/env python
"""Rule-based orchestration — the paper's Sec. 7 outlook, implemented.

Instead of subclassing Orchestrator and hand-writing handlers, policies
are declared as event-condition-action rules; events no rule handles fall
back to default actions (automatic PE restart for failures — the paper's
own example of a sensible default).

The scenario: run the Figure 2 application under two rules —

1. if a sink has processed 200+ tuples, log a milestone (once);
2. if a PE of composite c1 fails, restart it AND notify (custom action);
   failures elsewhere are auto-restarted by the default action.

Run:  python examples/rule_based_adaptation.py
"""

from repro import ManagedApplication, OrcaDescriptor, SystemS
from repro.apps.figure2 import build_figure2_application
from repro.orca.rules import RuleOrchestrator, when
from repro.orca.scopes import OperatorMetricScope, PEFailureScope


def main() -> None:
    system = SystemS(hosts=2, seed=42)
    app = build_figure2_application(per_tick=4, period=0.5)

    milestones = []
    c1_failovers = []

    rules = [
        when(
            "milestone",
            OperatorMetricScope("milestone")
            .addOperatorTypeFilter("Sink")
            .addOperatorMetric("nTuplesProcessed"),
        )
        .given(lambda ctx: ctx.value >= 200)
        .once()
        .then(
            lambda orca, ctx: milestones.append(
                (orca.now, ctx.instance_name, ctx.value)
            )
        ),
        when(
            "c1-failure",
            PEFailureScope("c1-failure").addCompositeInstanceFilter("c1"),
        )
        .then(
            lambda orca, ctx: (
                c1_failovers.append((orca.now, ctx.pe_id)),
                orca.restart_pe(ctx.pe_id),
            )
        ),
    ]

    logic = RuleOrchestrator(rules, submit=["Figure2"])
    service = system.submit_orchestrator(
        OrcaDescriptor(
            name="RuleOrca",
            logic=lambda: logic,
            applications=[ManagedApplication(name=app.name, application=app)],
        )
    )

    print("running 60 s ...")
    system.run_for(60.0)
    print(f"milestone rule fired (once): {milestones}")

    job = logic.jobs[0]
    print("\nkilling PE 1 (contains c1 operators -> matched by the c1 rule)")
    system.failures.crash_pe(job.job_id, pe_index=1)
    system.run_for(5.0)
    print(f"c1 rule handled: {c1_failovers}")
    print(f"defaulted failures so far: {len(logic.defaulted)}")

    print("\nkilling PE 3 (only c2 operators -> default auto-restart)")
    system.failures.crash_pe(job.job_id, pe_index=3)
    system.run_for(5.0)
    print(f"defaulted failures now: {len(logic.defaulted)}")
    states = {pe.pe_id: pe.state.value for pe in job.pes}
    print(f"final PE states: {states}")
    assert all(s == "running" for s in states.values())

    print("\nactuation log (txn-id -> action):")
    for record in service.actuation_log:
        print(f"  txn={record.txn_id:3d}  {record.action:12s} {record.detail}")


if __name__ == "__main__":
    main()
