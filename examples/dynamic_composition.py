#!/usr/bin/env python
"""Use case 5.3 — on-demand dynamic application composition (Fig. 10).

Six applications compose through exported streams and a shared profile
store:

* C1 readers (Twitter/MySpace) export negative-sentiment profiles;
* C2 query apps (Twitter/Blog/Facebook search) import them, enrich the
  profiles with gender/age/location attributes, and store them;
* C3 segmentation jobs are *not* running initially — the orchestrator
  submits one per attribute whenever 1500 new profiles with that
  attribute accumulated, and cancels it once its sink sees final
  punctuation.

The orchestrator also registers C2->C1 dependencies so starting the C2
layer automatically pulls C1 up first (uptime requirement 0 — C1 builds
no state).

Run:  python examples/dynamic_composition.py
"""

from repro import ManagedApplication, OrcaDescriptor, SystemS
from repro.apps.datastore import ProfileDataStore
from repro.apps.orchestrators import CompositionOrca
from repro.apps.socialmedia import build_all_socialmedia_applications


def main() -> None:
    system = SystemS(hosts=6, seed=42)
    store = ProfileDataStore()
    results = []
    apps = build_all_socialmedia_applications(store, results=results, profile_rate=8)

    logic = CompositionOrca(threshold=1500, c1_gc_timeout=5.0)
    descriptor = OrcaDescriptor(
        name="CompositionOrca",
        logic=lambda: logic,
        applications=[
            ManagedApplication(name=name, application=app)
            for name, app in apps.items()
        ],
        metric_poll_interval=5.0,
    )
    system.submit_orchestrator(descriptor)

    print("running 400 s ...")
    system.run_for(400.0)

    print("\njob timeline (expansion / contraction, Fig. 10):")
    for kind, app_name, when in logic.events:
        marker = "+" if kind == "submit" else "-"
        print(f"  {when:7.1f}  {marker} {app_name}")

    print(f"\nC3 jobs spawned: {len(logic.c3_history)}")
    for when, attribute, job_id in logic.c3_history:
        print(f"  t={when:7.1f}  attribute={attribute:9s}  {job_id}")

    print(f"\nsegmentation results produced: {len(results)}")
    for result in results[:3]:
        attribute = result["attribute"]
        buckets = result["segmentation"]
        total = result["profiles"]
        print(f"  {attribute} over {total} profiles:")
        for bucket, counts in sorted(buckets.items())[:4]:
            print(f"    {bucket:10s} {counts}")

    print(f"\nprofile store size (deduplicated): {len(store)}")
    print(f"store writes (incl. duplicates):   {store.total_writes}")
    running = sorted(job.app_name for job in system.sam.running_jobs())
    print(f"running at the end: {running}")


if __name__ == "__main__":
    main()
