#!/usr/bin/env python
"""Use case 5.1 — adaptation to the incoming data distribution (Fig. 8).

A sentiment-analysis application correlates negative tweets about a
product with known causes from a model pre-computed by a (simulated)
Hadoop job.  At t=250 the tweet stream shifts: users start complaining
about antenna problems, which the model does not know.  The orchestrator
watches the application's two custom metrics (nKnownCause /
nUnknownCause); when the unknown/known ratio exceeds 1.0 it triggers a
model recomputation, and the application hot-reloads the refreshed model.

Run:  python examples/sentiment_adaptation.py
"""

from repro import ManagedApplication, OrcaDescriptor, SystemS
from repro.apps.datastore import CauseModelStore, CorpusStore
from repro.apps.hadoop import SimulatedHadoopCluster
from repro.apps.orchestrators import SentimentOrca
from repro.apps.sentiment import build_sentiment_application
from repro.apps.workloads import TweetWorkload


def main() -> None:
    system = SystemS(hosts=4, seed=42)
    corpus = CorpusStore()
    models = CauseModelStore(initial_causes=("flash", "screen"))
    hadoop = SimulatedHadoopCluster(
        system.kernel, corpus, models, duration=30.0
    )
    workload = TweetWorkload(seed=7, rate=20)  # cause shift at t=250
    app = build_sentiment_application(workload, corpus, models)

    logic = SentimentOrca(hadoop, threshold=1.0, retrigger_guard=600.0)
    descriptor = OrcaDescriptor(
        name="SentimentOrca",
        logic=lambda: logic,
        applications=[ManagedApplication(name=app.name, application=app)],
        metric_poll_interval=1.0,  # 1 epoch per second, like Fig. 8's x axis
    )
    system.submit_orchestrator(descriptor)

    print(f"initial model: {sorted(models.current.causes)}")
    print("running 400 epochs ...")
    system.run_for(400.0)

    print("\nunknown/known ratio over time (Fig. 8):")
    print(f"{'epoch':>6}  {'ratio':>6}  ")
    for epoch, ratio in logic.ratio_series:
        if epoch % 20 == 0:
            bar = "#" * int(min(ratio, 8.0) * 8)
            print(f"{epoch:6d}  {ratio:6.2f}  {bar}")

    print(f"\nHadoop jobs triggered: {len(hadoop.jobs)}")
    for job in hadoop.jobs:
        print(
            f"  submitted t={job.submitted_at:.0f}, finished t="
            f"{job.completed_at:.0f}, new causes: {job.causes}"
        )
    print(f"final model: {sorted(models.current.causes)}")

    pre = [r for e, r in logic.ratio_series if e < 250]
    post = [r for e, r in logic.ratio_series if e > 320]
    print(f"\npre-shift mean ratio:  {sum(pre) / len(pre):.3f}  (< 1.0)")
    print(f"peak ratio:            {max(r for _, r in logic.ratio_series):.2f}  (> 1.0)")
    print(f"post-recovery mean:    {sum(post) / len(post):.3f}  (< 1.0 again)")


if __name__ == "__main__":
    main()
