#!/usr/bin/env python
"""Periodic checkpointing & crash recovery walkthrough.

A keyed counter runs inside a partitioned parallel region while the
background checkpoint service snapshots its state every half second of
simulated time (incremental: only dirty keys re-serialize).  Mid-stream
we crash the PE of one channel and watch the full recovery cycle:

1. the splitter masks the dead channel and its keys detour — *seeded*
   from the channel's last committed checkpoint epoch, so counting
   continues instead of restarting from zero;
2. ``restart_pe(rehydrate=True)`` rehydrates the PE from the latest
   committed epoch (a crash on the seed semantics would restart empty);
3. at unmask, the detour-accrued state is *reclaimed* back onto the
   restarted channel (``state_reclaimed`` event).

An orchestrator subscribed to a ``CheckpointScope`` narrates the
``checkpoint_committed`` / ``state_reclaimed`` events as they happen.

See docs/state-and-recovery.md for the machinery.

Run:  python examples/checkpoint_recovery.py
"""

from repro import ManagedApplication, Orchestrator, OrcaDescriptor, SystemS
from repro.orca.scopes import CheckpointScope
from repro.runtime.system import SystemConfig
from repro.spl.application import Application
from repro.spl.library import CallbackSource, KeyedCounter, Sink
from repro.spl.parallel import parallel

N_KEYS = 8


def build_application() -> Application:
    app = Application("CheckpointDemo")
    g = app.graph

    def generate(now, count):
        return [{"key": f"k{count % N_KEYS}", "seq": count}]

    src = g.add_operator(
        "src",
        CallbackSource,
        params={"generator": generate, "period": 0.05},
        partition="feed",
    )
    work = g.add_operator(
        "work",
        KeyedCounter,
        params={"key": "key"},
        parallel=parallel(width=2, name="region", partition_by="key"),
    )
    sink = g.add_operator("sink", Sink, partition="out")
    g.connect(src.oport(0), work.iport(0))
    g.connect(work.oport(0), sink.iport(0))
    return app


class CheckpointNarrator(Orchestrator):
    """Logs every checkpoint/recovery event of the managed job."""

    def __init__(self):
        super().__init__()
        self.job_id = None
        self.commits = 0

    def handleOrcaStart(self, context):
        self.orca.register_event_scope(CheckpointScope("state"))
        self.job_id = self.orca.submit_application("CheckpointDemo").job_id

    def handleCheckpointCommittedEvent(self, context, scopes):
        self.commits += 1
        if self.commits <= 3 or self.commits % 10 == 0:
            print(
                f"  t={context.time:6.2f}  checkpoint_committed epoch "
                f"{context.epoch} pe={context.pe_id} "
                f"(dirty {context.keys_dirty}/{context.keys_total} keys, "
                f"{context.bytes_written} B)"
            )

    def handleStateReclaimedEvent(self, context, scopes):
        print(
            f"  t={context.time:6.2f}  state_reclaimed: channel(s) "
            f"{context.channels} got {context.keys_reclaimed} keys back "
            f"(epoch {context.epoch})"
        )

    def handleRehydrateSkippedEvent(self, context, scopes):
        print(
            f"  t={context.time:6.2f}  rehydrate_skipped: {context.pe_id} "
            "restarted EMPTY (nothing restorable)"
        )


def counts_of(job, op_name):
    instance = job.operator_instance(op_name)
    if instance is None:
        return {}
    return dict(instance.state.keyed("counts").items())


def main() -> None:
    system = SystemS(
        hosts=10, seed=42, config=SystemConfig(checkpoint_interval=0.5)
    )
    service = system.submit_orchestrator(
        OrcaDescriptor(
            name="Narrator",
            logic=CheckpointNarrator,
            applications=[
                ManagedApplication(
                    name="CheckpointDemo", application=build_application()
                )
            ],
        )
    )

    print("running 5 s with checkpointing every 0.5 s ...")
    system.run_for(5.0)
    job = service.jobs[service.logic.job_id]
    before = counts_of(job, "work__c1")
    print(f"\nchannel 1 keyed counts before the crash: {before}")

    pe = job.pe_of_operator("work__c1")
    print(f"\ncrashing {pe.pe_id} (channel 1) mid-stream ...")
    pe.crash("demo")
    system.run_for(1.0)  # keys detour to channel 0, seeded from the epoch
    print(
        "while masked, channel 0 carries channel 1's keys (seeded): "
        f"{ {k: v for k, v in counts_of(job, 'work__c0').items() if k in before} }"
    )

    print("\nrestarting with rehydrate=True ...")
    service.restart_pe(pe.pe_id, rehydrate=True)
    system.run_for(2.0)
    report = pe.last_restore
    print(
        f"restore report: source={report.source!r} epoch={report.epoch} "
        f"ops={list(report.restored_ops)}"
    )
    after = counts_of(job, "work__c1")
    print(f"channel 1 keyed counts after recovery:  {after}")
    regressed = [k for k, v in before.items() if after.get(k, 0) < v]
    print(f"keys that lost progress: {regressed or 'none'}")

    status = service.checkpoint_status(service.logic.job_id)
    print("\ncheckpoint status (newest committed epoch per PE):")
    for pe_id, info in sorted(status.items()):
        print(
            f"  {pe_id}: epoch {info['epoch']} committed at "
            f"t={info['committed_at']:.2f} (age {info['age']:.2f} s)"
        )


if __name__ == "__main__":
    main()
