#!/usr/bin/env python
"""Use case 5.2 — adaptation to failures via replica failover (Fig. 9).

The "Trend Calculator" computes min/max/average/Bollinger bands per stock
symbol over a 600-second sliding window and uses *no checkpointing* — a
crashed PE loses all its window state.  The orchestrator therefore runs
three replicas in exclusive host pools; when a PE of the *active* replica
crashes, it promotes the oldest healthy replica, demotes the failed one,
and restarts the crashed PE, which then needs 600 s of fresh data before
its output is trustworthy again.

Run:  python examples/replica_failover.py
"""

import io

from repro import ManagedApplication, OrcaDescriptor, SystemS
from repro.apps.orchestrators import FailoverOrca
from repro.apps.trend import TrendRecorderHub, build_trend_application
from repro.apps.workloads import TradeWorkload


def main() -> None:
    system = SystemS(hosts=8, seed=42)
    hub = TrendRecorderHub()
    status_file = io.StringIO()  # the file the paper's GUI reads
    app = build_trend_application(
        lambda: TradeWorkload(seed=11), hub=hub, window_span=600.0
    )
    logic = FailoverOrca(n_replicas=3, status_stream=status_file)
    descriptor = OrcaDescriptor(
        name="FailoverOrca",
        logic=lambda: logic,
        applications=[ManagedApplication(name=app.name, application=app)],
    )
    service = system.submit_orchestrator(descriptor)

    print("running 650 s so all windows are full ...")
    system.run_for(650.0)
    print(f"exclusive host reservations: {system.sam.reserved_hosts}")
    for job_id, record in logic.replicas.items():
        hosts = sorted({pe.host_name for pe in service.job(job_id).pes})
        print(
            f"  replica {record['replica']} ({job_id}): {record['status']:6s} "
            f"hosts={hosts}"
        )

    active = logic.active_job_id()
    job = service.job(active)
    print(f"\nkilling the calculator PE of the ACTIVE replica ({active}) ...")
    system.failures.crash_pe(active, pe_index=job.compiled.pe_of("calc"))
    system.run_for(60.0)

    for when, failed, promoted in logic.failovers:
        print(f"failover at t={when:.2f}: {failed} -> {promoted}")
    print("status after failover:")
    for job_id, record in sorted(logic.replicas.items()):
        print(f"  replica {record['replica']}: {record['status']}")

    # Fig. 9(b): the failed replica's output diverges until its windows
    # refill; the promoted replica's output is continuous.
    failed_replica = logic.replicas[active]["replica"]
    promoted_replica = logic.replicas[logic.failovers[0][2]]["replica"]
    failed_points = {p.ts: p for p in hub.points_for(failed_replica, "IBM")}
    good_points = {p.ts: p for p in hub.points_for(promoted_replica, "IBM")}
    common = sorted(set(failed_points) & set(good_points))
    print("\n   t      active avg   restarted avg   |diff|   coverage")
    for ts in common:
        if ts > 651 and int(ts) % 10 == 0:
            good = good_points[ts]
            bad = failed_points[ts]
            print(
                f"{ts:7.1f}  {good.average:11.3f}  {bad.average:13.3f}  "
                f"{abs(good.average - bad.average):7.3f}  {bad.coverage:7.1f}s"
            )

    print("\nstatus file written for the GUI (last lines):")
    for line in status_file.getvalue().splitlines()[-3:]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
