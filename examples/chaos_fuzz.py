"""Adversarial chaos-fuzzing walkthrough: search, shrink, serialize.

Runs the barrier-targeted fuzz search (``repro.chaos.fuzz``) against
the standard elastic + checkpoint stack: sweeps seeds, re-aims step
times at observed runtime barriers (rescale phases, checkpoint
commits, splitter masks), and judges every run with the system-wide
invariant-oracle suite.  On the healthy stack the search comes back
clean; with ``--plant-torn-commits`` the stack is deliberately
weakened (every checkpoint commit torn through the existing
``commit_fault`` hook), the search finds the violation, and the
shrinker reduces it to a minimal repro printed as corpus-ready JSON.

Usage::

    python examples/chaos_fuzz.py                       # healthy stack
    python examples/chaos_fuzz.py --plant-torn-commits  # find + shrink
    python examples/chaos_fuzz.py --plant-torn-commits --check-determinism

See the "Fuzzing workflow" section of ``docs/chaos.md``.
"""

from __future__ import annotations

import argparse
import json

from repro.chaos import KeySkewShift, LatencySpike, PEFlap, RateSurge, Scenario
from repro.chaos.fuzz import (
    FuzzBudget,
    FuzzHarnessConfig,
    fuzz_scenario,
    run_fuzz_case,
    shrink_scenario,
)


def base_scenario() -> Scenario:
    """A noisy mixed scenario: network, load, and one channel flap."""
    return (
        Scenario("fuzz_demo", description="mixed disturbance hunt")
        .add(0.5, LatencySpike(extra=0.05, duration=1.5))
        .add(0.8, RateSurge(factor=2.0, duration=3.0))
        .add(1.02, PEFlap(operator="work__c0", downtime=1.0))
        .add(2.0, KeySkewShift(hot_fraction=0.8, hot_keys=("k0",), duration=2.0))
    )


def run_pipeline(seed: int, rounds: int, torn_commits: bool) -> str:
    """One search (+ shrink on failure); returns a deterministic digest."""
    config = FuzzHarnessConfig(duration=8.0, torn_commits=torn_commits)
    budget = FuzzBudget(seeds=(seed, seed + 5), mutation_rounds=rounds)
    report = fuzz_scenario(
        base_scenario(),
        lambda scenario, s: run_fuzz_case(scenario, config.with_seed(s)),
        budget,
    )
    print("--- search summary ---")
    summary = "\n".join(report.summary_lines())
    print(summary)

    if not report.found_violation:
        print("\nno invariant violation found: the stack held.")
        return summary

    worst = report.worst
    shrunk = shrink_scenario(
        worst.scenario,
        lambda s: bool(
            run_fuzz_case(s, config.with_seed(worst.seed)).violations
        ),
    )
    minimized = json.dumps(shrunk.scenario.to_dict(), indent=2, sort_keys=True)
    print(
        f"\n--- shrunk {shrunk.original_steps} -> {shrunk.steps} step(s) "
        f"in {shrunk.runs} run(s) ---"
    )
    print("minimized scenario (corpus-ready JSON):")
    print(minimized)
    return summary + "\n" + minimized


def main() -> None:
    """Parse arguments and run the walkthrough."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--rounds", type=int, default=2)
    parser.add_argument(
        "--plant-torn-commits",
        action="store_true",
        help="weaken the stack: every checkpoint commit stays torn",
    )
    parser.add_argument(
        "--check-determinism",
        action="store_true",
        help="run the whole pipeline twice and fail unless identical",
    )
    args = parser.parse_args()
    first = run_pipeline(args.seed, args.rounds, args.plant_torn_commits)
    if args.check_determinism:
        print("\n=== repeat run (same seed) ===")
        second = run_pipeline(args.seed, args.rounds, args.plant_torn_commits)
        if first != second:
            raise SystemExit("fuzz pipelines diverged across identical runs!")
        print("determinism check passed: search + shrink are replayable")


if __name__ == "__main__":
    main()
