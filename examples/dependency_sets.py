#!/usr/bin/env python
"""Application sets and dependencies — the Fig. 7 walk-through (Sec. 4.4).

Reproduces the paper's dependency example verbatim: six applications
(fb, tw, fox, msnbc, sn, all) with uptime requirements on the edges and
garbage-collection flags on the nodes.

Expected behaviour (quoted from the paper):

* "assuming that fb, tw, fox, and msnbc are all submitted at the same
  time, the thread sleeps for 80 seconds before submitting all";
* "If sn was to be submitted in the same round as all, sn would be
  submitted first because its required sleeping time (20) is lower than
  all's (80)";
* cancelling an app that feeds a running app is an error (starvation
  guard); garbage collection skips fox (not collectable).

Run:  python examples/dependency_sets.py
"""

from repro import ManagedApplication, Orchestrator, OrcaDescriptor, SystemS
from repro.errors import StarvationError
from repro.orca import JobCancellationScope, JobSubmissionScope
from repro.spl import Application
from repro.spl.library import Beacon, Sink


def make_feed_app(name: str) -> Application:
    """A minimal stand-in application (source -> sink)."""
    app = Application(name)
    g = app.graph
    src = g.add_operator("src", Beacon, params={"values": {"app": name}})
    sink = g.add_operator("sink", Sink, params={"record": False})
    g.connect(src.oport(0), sink.iport(0))
    return app


class Figure7Orca(Orchestrator):
    """Builds the Fig. 7 dependency graph and starts `all` and `sn`."""

    def __init__(self) -> None:
        super().__init__()
        self.timeline = []

    def handleOrcaStart(self, context) -> None:
        self.orca.registerEventScope(JobSubmissionScope("subs"))
        self.orca.registerEventScope(JobCancellationScope("cans"))
        deps = self.orca.deps
        deps.create_app_config("fb", "fb", garbage_collectable=True, gc_timeout=1.0)
        deps.create_app_config("tw", "tw", garbage_collectable=True, gc_timeout=1.0)
        deps.create_app_config("fox", "fox", garbage_collectable=False)
        deps.create_app_config(
            "msnbc", "msnbc", garbage_collectable=True, gc_timeout=1.0
        )
        deps.create_app_config("sn", "sn", garbage_collectable=True, gc_timeout=1.0)
        deps.create_app_config("all", "allmedia", garbage_collectable=True, gc_timeout=1.0)
        deps.register_dependency("sn", "fb", uptime_requirement=20.0)
        deps.register_dependency("sn", "tw", uptime_requirement=20.0)
        deps.register_dependency("all", "fb", uptime_requirement=80.0)
        deps.register_dependency("all", "tw", uptime_requirement=30.0)
        deps.register_dependency("all", "fox", uptime_requirement=45.0)
        deps.register_dependency("all", "msnbc", uptime_requirement=30.0)
        deps.start("all")
        deps.start("sn")

    def handleJobSubmissionEvent(self, context, scopes) -> None:
        self.timeline.append((context.time, "submit", context.config_id))

    def handleJobCancellationEvent(self, context, scopes) -> None:
        kind = "gc-cancel" if context.garbage_collected else "cancel"
        self.timeline.append((context.time, kind, context.config_id))


def main() -> None:
    system = SystemS(hosts=4, seed=42)
    names = ["fb", "tw", "fox", "msnbc", "sn", "allmedia"]
    descriptor = OrcaDescriptor(
        name="Figure7Orca",
        logic=Figure7Orca,
        applications=[
            ManagedApplication(name=n, application=make_feed_app(n)) for n in names
        ],
    )
    service = system.submit_orchestrator(descriptor)
    logic = service.logic

    print("starting `all` and `sn` at t=0 ...")
    system.run_for(100.0)
    print("submission timeline:")
    for when, kind, config in logic.timeline:
        print(f"  t={when:6.1f}  {kind:9s}  {config}")

    print("\ntrying to cancel fb while sn and all still use it ...")
    try:
        service.deps.cancel("fb")
    except StarvationError as exc:
        print(f"  rejected: {exc}")

    print("\ncancelling sn (fb/tw stay: still feeding `all`) ...")
    service.deps.cancel("sn")
    system.run_for(10.0)
    print(f"  running: {sorted(j.app_name for j in system.sam.running_jobs())}")

    print("\ncancelling all (fb/tw/msnbc collected; fox kept: not collectable) ...")
    service.deps.cancel("all")
    system.run_for(10.0)
    print(f"  running: {sorted(j.app_name for j in system.sam.running_jobs())}")
    for when, kind, config in logic.timeline[8:]:
        print(f"  t={when:6.1f}  {kind:9s}  {config}")


if __name__ == "__main__":
    main()
