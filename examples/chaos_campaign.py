"""Chaos campaign walkthrough: stress-test an adaptation stack and read
the resilience scorecard.

Builds a keyed parallel-region application with periodic checkpointing,
submits it through a chaos-aware orchestrator, runs a seeded scenario
preset against it, and prints the scorecard.  Run twice with the same
seed and the scorecards are byte-identical — which is exactly what
``--check-determinism`` does.

Usage::

    python examples/chaos_campaign.py                       # default preset
    python examples/chaos_campaign.py --preset gray_network
    python examples/chaos_campaign.py --seed 7 --check-determinism

See ``docs/chaos.md`` for the full DSL and scorecard reference.
"""

from __future__ import annotations

import argparse

from repro import (
    ManagedApplication,
    Orchestrator,
    OrcaDescriptor,
    SystemConfig,
    SystemS,
)
from repro.apps.workloads import ChaosFeed
from repro.chaos import (
    collect_scorecard,
    flash_crowd,
    gray_network,
    live_keyed_state,
    rolling_channel_outage,
    torn_checkpoints,
)
from repro.orca.scopes import ChaosScope
from repro.spl.application import Application
from repro.spl.library import CallbackSource, KeyedCounter, Sink
from repro.spl.parallel import parallel

PRESETS = {
    "rolling_channel_outage": lambda: rolling_channel_outage(
        ["work__c0", "work__c1"], start=1.02, stagger=5.0, downtime=1.0
    ),
    "gray_network": lambda: gray_network(start=1.02, waves=3, every=4.0),
    "flash_crowd": lambda: flash_crowd(
        at=1.02, factor=3.0, duration=6.0, rescale_region="region"
    ),
    "torn_checkpoints": lambda: torn_checkpoints(
        "work__c0", start=1.0, fault_window=3.0, crash_after=1.02
    ),
}


def build_app(feed: ChaosFeed) -> Application:
    """src -> parallel keyed counter region -> sink."""
    app = Application("ChaosDemo")
    g = app.graph
    src = g.add_operator(
        "src",
        CallbackSource,
        params={"generator": feed.generator(), "period": 0.05},
        partition="feed",
    )
    work = g.add_operator(
        "work",
        KeyedCounter,
        params={"key": "key"},
        parallel=parallel(
            width=2, name="region", partition_by="key", max_width=8,
            reorder_grace=1.0,
        ),
    )
    sink = g.add_operator("sink", Sink, partition="out")
    g.connect(src.oport(0), work.iport(0))
    g.connect(work.oport(0), sink.iport(0))
    return app


class ChaosAwareOrca(Orchestrator):
    """Subscribes to the campaign: every injection becomes an event."""

    def __init__(self) -> None:
        super().__init__()
        self.job = None
        self.injections_seen = []

    def handleOrcaStart(self, context) -> None:  # noqa: N802
        self.orca.registerEventScope(ChaosScope("campaign"))
        self.job = self.orca.submit_application("ChaosDemo")

    def handleChaosInjectedEvent(self, context, scopes) -> None:  # noqa: N802
        self.injections_seen.append(
            f"t={context.time:7.3f}  {context.kind:<18} -> {context.target}"
        )


def run_campaign(preset: str, seed: int) -> str:
    """One seeded campaign run; returns the rendered scorecard."""
    system = SystemS(
        hosts=10,
        seed=seed,
        config=SystemConfig(
            checkpoint_interval=0.25, failure_notification_delay=0.001
        ),
    )
    feed = ChaosFeed(n_keys=12, base_rate=2, seed=5)
    app = build_app(feed)
    logic = ChaosAwareOrca()
    service = system.submit_orchestrator(
        OrcaDescriptor(
            name="ChaosOrca",
            logic=lambda: logic,
            applications=[ManagedApplication(name=app.name, application=app)],
        )
    )
    system.run_for(3.0)  # steady state before the campaign
    scenario = PRESETS[preset]()
    run = system.chaos.run_scenario(scenario, job=logic.job, feed=feed)
    system.run_for(14.0)  # the campaign window
    feed.set_rate_factor(0.0)  # stop the feed ...
    system.run_for(4.0)  # ... and drain the pipeline

    job = logic.job
    sink_op = job.operator_instance("sink")
    plan = job.compiled.parallel_regions["region"]
    scorecard = collect_scorecard(
        system,
        run,
        seed,
        [t["seq"] for t in sink_op.seen],
        feed.emitted,
        final_state=live_keyed_state(
            job, [op for ops in plan.channel_ops for op in ops]
        ),
        orca=service,
    )

    print(f"--- injections the orchestrator saw ({preset}) ---")
    for line in logic.injections_seen:
        print(" ", line)
    print(f"--- chaos_status() ---\n  {service.chaos_status()}")
    print("--- resilience scorecard ---")
    print(scorecard.render())
    return scorecard.render()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--preset", choices=sorted(PRESETS), default="rolling_channel_outage"
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--check-determinism",
        action="store_true",
        help="run the campaign twice and fail unless the scorecards match",
    )
    args = parser.parse_args()
    first = run_campaign(args.preset, args.seed)
    if args.check_determinism:
        print("=== repeat run (same seed) ===")
        second = run_campaign(args.preset, args.seed)
        if first != second:
            raise SystemExit("scorecards differ across identical seeded runs!")
        print("determinism check passed: scorecards are byte-identical")


if __name__ == "__main__":
    main()
