"""Backend-conformance suite for the executor contract.

Both backends — the deterministic sim kernel and the wall-clock
executor — are held to the same observable semantics through the exact
surface documented in :mod:`repro.runtime.exec.base`: event ordering,
timer scheduling and cancellation, the event tap, drain behavior, and
(at the system level) identical pipeline results, batch barrier
flushes, crash condemnation with checkpoint rehydration, and an
unmodified chaos campaign.

Wall-clock cases run at ``time_scale=50`` (50 virtual seconds per real
second), so the whole suite stays fast while every relative ordering is
preserved.
"""

from __future__ import annotations

import pytest

from repro import SystemConfig, SystemS
from repro.chaos import PEFlap, RateSurge, Scenario
from repro.apps.workloads import ChaosFeed
from repro.runtime.exec import (
    EXECUTOR_BACKENDS,
    Executor,
    WallClockExecutor,
    build_executor,
    build_sim_executor,
)
from repro.spl.application import Application
from repro.spl.library import CallbackSource, KeyedCounter, Sink
from repro.spl.parallel import parallel

#: virtual seconds per real second for every wall-clock case
SCALE = 50.0

BACKENDS = list(EXECUTOR_BACKENDS)


def make_executor(backend):
    if backend == "sim":
        return build_sim_executor()
    return WallClockExecutor(time_scale=SCALE)


def backend_system(backend, seed=42, hosts=4, **config_kwargs):
    config_kwargs.setdefault("failure_notification_delay", 0.001)
    return SystemS(
        hosts=hosts,
        seed=seed,
        config=SystemConfig(
            executor=backend,
            wallclock_time_scale=SCALE if backend == "wallclock" else 1.0,
            **config_kwargs,
        ),
    )


def build_counter_app(limit=100, period=0.05, width=2, name="Conf"):
    """Keyed pipeline whose output is a pure function of tick *count*.

    The feed closes over the emitted count, never the clock, so the sim
    and wall-clock backends must produce identical tuple streams.
    """

    def feed(now, count):
        if count >= limit:
            return []
        return [{"seq": count, "key": f"k{count % 4}"}]

    app = Application(name)
    g = app.graph
    src = g.add_operator(
        "src",
        CallbackSource,
        params={"generator": feed, "period": period},
        partition="feed",
    )
    work = g.add_operator(
        "work",
        KeyedCounter,
        params={"key": "key"},
        parallel=parallel(width=width, name="region", partition_by="key", max_width=8),
    )
    sink = g.add_operator("sink", Sink, partition="out")
    g.connect(src.oport(0), work.iport(0))
    g.connect(work.oport(0), sink.iport(0))
    return app


def per_key_counts(sink):
    """Map key -> ordered list of KeyedCounter counts seen at the sink."""
    out = {}
    for t in sink.seen:
        out.setdefault(t["key"], []).append(t["count"])
    return out


# ---------------------------------------------------------------------------
# scheduler contract (executor built directly)
# ---------------------------------------------------------------------------


@pytest.fixture(params=BACKENDS)
def executor(request):
    return make_executor(request.param)


class TestSchedulerContract:
    def test_backends_satisfy_the_abc(self, executor):
        # the sim kernel via virtual-subclass registration, the
        # wall-clock executor by inheritance
        assert isinstance(executor, Executor)
        assert executor.backend_name in BACKENDS
        assert executor.events_processed == 0
        assert executor.pending_count() == 0

    def test_events_run_in_deadline_then_schedule_order(self, executor):
        ran = []
        base = executor.now
        executor.schedule(0.10, ran.append, "late")
        executor.schedule(0.02, ran.append, "early")
        executor.schedule_at(base + 0.06, ran.append, "mid-a")
        executor.schedule_at(base + 0.06, ran.append, "mid-b")  # same deadline
        executor.run_until(base + 0.2)
        assert ran == ["early", "mid-a", "mid-b", "late"]
        assert executor.events_processed == 4
        assert executor.now >= base + 0.2
        assert executor.pending_count() == 0

    def test_cancellation_is_honored_and_idempotent(self, executor):
        ran = []
        handle = executor.schedule(0.02, ran.append, "cancelled")
        keep = executor.schedule(0.04, ran.append, "kept")
        assert handle.time > 0 or executor.wall_clock
        handle.cancel()
        handle.cancel()  # idempotent
        executor.run_for(0.1)
        assert ran == ["kept"]
        assert keep.time <= executor.now

    def test_call_soon_runs_behind_pending_same_time_work(self, executor):
        ran = []
        executor.schedule(0.0, ran.append, "first")
        executor.call_soon(ran.append, "second")
        executor.run_for(0.02)
        assert ran == ["first", "second"]

    def test_chained_periodic_events_advance_within_horizon(self, executor):
        ticks = []

        def tick():
            ticks.append(executor.now)
            if len(ticks) < 5:
                executor.schedule(0.01, tick)

        executor.schedule(0.01, tick)
        executor.run_for(0.2)
        assert len(ticks) == 5
        assert ticks == sorted(ticks)

    def test_step_executes_one_event_then_reports_empty(self, executor):
        ran = []
        executor.schedule(0.0, ran.append, 1)
        executor.schedule(0.01, ran.append, 2)
        assert executor.step() is True
        assert ran == [1]
        assert executor.step() is True
        assert ran == [1, 2]
        assert executor.step() is False

    def test_run_drains_the_queue(self, executor):
        ran = []
        for i in range(4):
            executor.schedule(0.002 * i, ran.append, i)
        executor.run()
        assert ran == [0, 1, 2, 3]

    def test_event_tap_sees_every_executed_event(self, executor):
        tapped = []
        executor.event_tap = tapped.append
        executor.schedule(0.0, lambda: None, label="a")
        executor.schedule(0.01, lambda: None, label="b")
        executor.run_for(0.05)
        assert [e.label for e in tapped] == ["a", "b"]
        assert executor.events_processed == 2

    def test_negative_delay_is_rejected(self, executor):
        with pytest.raises(ValueError):
            executor.schedule(-0.1, lambda: None)

    def test_past_deadline_policy(self, executor):
        """Sim rejects the past (determinism needs a total order); the
        wall-clock backend clamps it to "as soon as possible" because
        real time advances between computing and checking a deadline."""
        executor.schedule(0.01, lambda: None)
        executor.run_for(0.02)
        past = executor.now - 0.005
        if executor.wall_clock:
            ran = []
            executor.schedule_at(past, ran.append, "overdue")
            executor.run_for(0.01)
            assert ran == ["overdue"]
        else:
            with pytest.raises(ValueError):
                executor.schedule_at(past, lambda: None)


# ---------------------------------------------------------------------------
# system-level conformance (full middleware on each backend)
# ---------------------------------------------------------------------------


class TestSystemConformance:
    def _run_pipeline(self, backend, **config_kwargs):
        system = backend_system(backend, **config_kwargs)
        job = system.submit_job(build_counter_app())
        system.run_for(8.0)  # feed exhausts at 5.0 virtual seconds
        return system, job, job.operator_instance("sink")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_pipeline_delivers_every_tuple_exactly_once(self, backend):
        system, job, sink = self._run_pipeline(backend)
        assert sorted(t["seq"] for t in sink.seen) == list(range(100))
        # keyed state sequenced each key contiguously on both backends
        for counts in per_key_counts(sink).values():
            assert counts == list(range(1, len(counts) + 1))

    def test_both_backends_produce_identical_results(self):
        outputs = {}
        for backend in BACKENDS:
            _system, _job, sink = self._run_pipeline(backend)
            outputs[backend] = per_key_counts(sink)
        assert outputs["sim"] == outputs["wallclock"]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_barrier_flushes_partial_batches(self, backend):
        """A batch bigger than the trickle only ships via linger/barrier
        flushes; every tuple must still arrive, on either backend."""
        system, job, sink = self._run_pipeline(
            backend, batch_max_size=64, batch_linger=0.2
        )
        assert sorted(t["seq"] for t in sink.seen) == list(range(100))
        assert sum(system.transport._in_flight.values()) == 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_crash_condemnation_and_rehydration(self, backend):
        """A crashed channel PE bumps its incarnation (condemning stale
        in-flight units) and rehydrates from its checkpoint: per-key
        counts stay contiguous — zero state loss, zero duplicates."""
        system = backend_system(
            backend, checkpoint_interval=0.25, delivery="exactly_once"
        )
        job = system.submit_job(build_counter_app(limit=200, period=0.02))
        system.run_for(1.0)  # several epochs committed
        target = job.pe_of_operator("work__c0")
        incarnation_before = system.transport._incarnations.get(target.pe_id, 0)
        target.crash("conformance")
        system.failures.restart_pe(job.job_id, target.pe_id, rehydrate=True)
        system.run_for(8.0)
        sink = job.operator_instance("sink")
        assert system.transport._incarnations[target.pe_id] > incarnation_before
        assert sorted(t["seq"] for t in sink.seen) == list(range(200))
        for counts in per_key_counts(sink).values():
            assert counts == list(range(1, len(counts) + 1))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_checkpoint_timers_fire_on_cadence(self, backend):
        system = backend_system(backend, checkpoint_interval=0.25)
        system.submit_job(build_counter_app(limit=50, period=0.02))
        system.run_for(2.0)
        committed = [r for r in system.checkpoints.records if r.committed]
        assert len(committed) >= 4

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_chaos_campaign_runs_unmodified(self, backend):
        """The same chaos scenario script — a PE flap plus a rate surge —
        drives either backend through the same engine APIs."""
        system = backend_system(
            backend, checkpoint_interval=0.25, delivery="exactly_once", hosts=6
        )
        feed = ChaosFeed(seed=3, n_keys=8)
        app = Application("ConfChaos")
        g = app.graph
        src = g.add_operator(
            "src",
            CallbackSource,
            params={"generator": feed.generator(), "period": 0.05},
            partition="feed",
        )
        work = g.add_operator(
            "work",
            KeyedCounter,
            params={"key": "key"},
            parallel=parallel(
                width=2, name="region", partition_by="key", max_width=8
            ),
        )
        sink = g.add_operator("sink", Sink, partition="out")
        g.connect(src.oport(0), work.iport(0))
        g.connect(work.oport(0), sink.iport(0))
        job = system.submit_job(app)
        system.run_for(1.0)
        scenario = (
            Scenario("conformance")
            .add(0.5, PEFlap(operator="work__c0", downtime=0.5))
            .add(1.5, RateSurge(factor=3.0, duration=1.0))
        )
        run = system.chaos.run_scenario(scenario, job=job, feed=feed)
        system.run_for(6.0)
        assert run.done
        assert [i.kind for i in run.injections] == ["pe_flap", "rate_surge"]
        assert run.injections[0].recovery_time is not None
        assert len(job.operator_instance("sink").seen) > 0


# ---------------------------------------------------------------------------
# backend selection plumbing
# ---------------------------------------------------------------------------


class TestBackendSelection:
    def test_build_executor_dispatches_on_config(self):
        sim = build_executor(SystemConfig())
        wall = build_executor(SystemConfig(executor="wallclock"))
        assert sim.backend_name == "sim" and not sim.wall_clock
        assert wall.backend_name == "wallclock" and wall.wall_clock

    def test_unknown_backend_is_rejected(self):
        with pytest.raises(ValueError, match="unknown executor backend"):
            build_executor(SystemConfig(executor="quantum"))

    def test_wallclock_time_scale_must_be_positive(self):
        with pytest.raises(ValueError, match="time_scale"):
            WallClockExecutor(time_scale=0.0)

    def test_system_exposes_selected_backend(self):
        system = backend_system("wallclock")
        assert system.kernel.backend_name == "wallclock"
        assert isinstance(system.kernel, Executor)
