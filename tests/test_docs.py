"""Documentation health checks, run in tier-1 and by the CI docs job.

* every relative (intra-repo) markdown link in ``docs/`` and
  ``README.md`` must resolve to an existing file or directory;
* the modules the state/recovery subsystem documents —
  ``repro.spl.state``, ``repro.elastic.controller``, and everything in
  ``repro.checkpoint`` — must carry module, public-class, and
  public-method docstrings (the D1 "undocumented" family; CI also runs
  the equivalent ruff rule set on the same files).
"""

from __future__ import annotations

import ast
import pathlib
import re

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: markdown inline links: [text](target), skipping images handled the same
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: modules the docstring satellite covers (repo-relative)
DOCSTYLE_FILES = [
    "src/repro/spl/state.py",
    "src/repro/elastic/controller.py",
    "src/repro/checkpoint/__init__.py",
    "src/repro/checkpoint/store.py",
    "src/repro/checkpoint/service.py",
    "src/repro/chaos/__init__.py",
    "src/repro/chaos/perturbations.py",
    "src/repro/chaos/scenario.py",
    "src/repro/chaos/engine.py",
    "src/repro/chaos/scorecard.py",
    "src/repro/chaos/fuzz/__init__.py",
    "src/repro/chaos/fuzz/oracles.py",
    "src/repro/chaos/fuzz/harness.py",
    "src/repro/chaos/fuzz/search.py",
    "src/repro/chaos/fuzz/shrink.py",
    "src/repro/obs/__init__.py",
    "src/repro/obs/naming.py",
    "src/repro/obs/metrics.py",
    "src/repro/obs/trace.py",
    "src/repro/obs/flight.py",
    "src/repro/obs/listeners.py",
    "src/repro/obs/hub.py",
    "src/repro/obs/health.py",
    "src/repro/obs/slo.py",
    "src/repro/obs/detect.py",
    "src/repro/runtime/delivery.py",
    "src/repro/tools/timeline.py",
    "src/repro/tools/healthwatch.py",
]


def iter_markdown_files():
    files = [REPO_ROOT / "README.md"]
    docs = REPO_ROOT / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.glob("**/*.md")))
    return files


def iter_relative_links(md_path: pathlib.Path):
    for match in _LINK_RE.finditer(md_path.read_text()):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target


class TestIntraRepoLinks:
    @pytest.mark.parametrize(
        "md_path", iter_markdown_files(), ids=lambda p: str(p.relative_to(REPO_ROOT))
    )
    def test_relative_links_resolve(self, md_path):
        broken = []
        for target in iter_relative_links(md_path):
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (md_path.parent / path_part).resolve()
            if not resolved.exists():
                broken.append(target)
        assert not broken, f"{md_path.name}: broken intra-repo links: {broken}"

    def test_docs_directory_exists_and_is_linked(self):
        docs = REPO_ROOT / "docs"
        assert docs.is_dir() and list(docs.glob("*.md"))
        readme = (REPO_ROOT / "README.md").read_text()
        assert "docs/" in readme  # the README points readers at the docs set


def _missing_docstrings(path: pathlib.Path):
    """D1-family check: undocumented public module/class/function/method."""
    tree = ast.parse(path.read_text())
    missing = []
    if ast.get_docstring(tree) is None:
        missing.append(f"{path.name}: module docstring (D100)")

    def visit(node, prefix):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                if not child.name.startswith("_"):
                    if ast.get_docstring(child) is None:
                        missing.append(f"{prefix}{child.name} (D101)")
                    visit(child, f"{prefix}{child.name}.")
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = child.name
                if name.startswith("_"):
                    continue  # private helpers and dunders are exempt
                if ast.get_docstring(child) is None:
                    missing.append(f"{prefix}{name} (D102/D103)")

    visit(tree, f"{path.name}: ")
    return missing


class TestDocstringLint:
    @pytest.mark.parametrize("rel_path", DOCSTYLE_FILES)
    def test_public_api_is_documented(self, rel_path):
        missing = _missing_docstrings(REPO_ROOT / rel_path)
        assert not missing, "undocumented public API:\n  " + "\n  ".join(missing)
