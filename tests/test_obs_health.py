"""Tests for the repro.obs health plane: sliding-window statistics,
SLO validation and multi-window burn-rate classification, deterministic
bottleneck attribution, transport lag watermarks, byte-stable health
snapshots, exactly-once replay-buffer gauges, ``health_alert`` ORCA
delivery through HealthScope, the health-aware scaling policy, and the
healthwatch dashboard renderer."""

import pytest

from repro import (
    ManagedApplication,
    Orchestrator,
    OrcaDescriptor,
    SystemConfig,
    SystemS,
)
from repro.elastic import HealthAwareScalingPolicy
from repro.elastic.policy import RegionObservation, ScalingPolicy
from repro.obs import SlidingWindow, Slo
from repro.obs.detect import BottleneckDetector, PressureSample
from repro.obs.slo import classify
from repro.orca.scopes import HealthScope
from repro.tools.healthwatch import parse_snapshot, render_dashboard

from tests.conftest import make_linear_app
from tests.test_transport_batching import tup, wire_fixture
from tests.test_transport_delivery import reliable_system


class TestSlidingWindow:
    def test_basic_statistics(self):
        w = SlidingWindow(horizon=10.0)
        w.observe(0.1, 2.0)
        w.observe(0.2, 4.0)
        assert w.count(0.2) == 2
        assert w.total(0.2) == 6.0
        assert w.mean(0.2) == 3.0
        assert w.maximum(0.2) == 4.0
        assert w.rate(0.2) == pytest.approx(0.2)

    def test_eviction_beyond_horizon(self):
        w = SlidingWindow(horizon=10.0)
        w.observe(0.0, 5.0)
        assert w.count(5.0) == 1
        assert w.count(20.0) == 0
        assert w.mean(20.0) == 0.0
        assert w.maximum(20.0) == 0.0

    def test_quantile_interpolates_and_clamps(self):
        w = SlidingWindow(horizon=10.0)
        for _ in range(50):
            w.observe(1.0, 0.02)
        for _ in range(50):
            w.observe(1.0, 0.2)
        p95 = w.quantile(1.0, 0.95)
        assert 0.1 < p95 <= 0.25
        # the +Inf bucket clamps to the observed maximum
        tall = SlidingWindow(horizon=10.0)
        tall.observe(1.0, 50.0)
        assert tall.quantile(1.0, 0.99) <= 50.0

    def test_empty_quantile_is_zero(self):
        w = SlidingWindow(horizon=10.0)
        assert w.quantile(0.0, 0.5) == 0.0

    def test_deterministic_across_identical_feeds(self):
        def build():
            w = SlidingWindow(horizon=5.0)
            for i in range(100):
                w.observe(i * 0.05, (i % 7) * 0.01)
            return w

        a, b = build(), build()
        assert a.mean(5.0) == b.mean(5.0)
        assert a.quantile(5.0, 0.95) == b.quantile(5.0, 0.95)

    def test_validation(self):
        with pytest.raises(ValueError):
            SlidingWindow(horizon=0.0)
        with pytest.raises(ValueError):
            SlidingWindow(horizon=1.0, buckets=0)


class TestSlo:
    def test_valid_construction(self):
        slo = Slo("lat", "latency_p95", 0.1)
        assert slo.warn_burn == 1.0 and slo.page_burn == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Slo("x", "cpu", 0.1)  # unknown signal
        with pytest.raises(ValueError):
            Slo("x", "loss", 0.0)  # objective must be positive
        with pytest.raises(ValueError):
            Slo("x", "lag", 0.1, short_window=5.0, long_window=1.0)
        with pytest.raises(ValueError):
            Slo("x", "lag", 0.1, warn_burn=2.0, page_burn=1.0)

    def test_classify_requires_both_windows(self):
        slo = Slo("x", "lag", 1.0, warn_burn=1.0, page_burn=2.0)
        assert classify(3.0, 3.0, slo) == "page"
        assert classify(1.5, 1.2, slo) == "warn"
        # a short-window blip without a sustained long burn stays quiet
        assert classify(5.0, 0.5, slo) is None
        assert classify(0.5, 5.0, slo) is None
        assert classify(0.2, 0.2, slo) is None


class TestBottleneckDetector:
    def sample(self, target, depth, growth=0.0, service=0.001, retry=0.0):
        return PressureSample(
            target=target,
            kind="link",
            queue_depth=depth,
            queue_growth=growth,
            service_p95=service,
            retry_pressure=retry,
        )

    def test_calm_fleet_has_no_bottleneck(self):
        detector = BottleneckDetector()
        assert detector.evaluate([]) is None
        assert detector.evaluate([self.sample("a", 0.0)]) is None

    def test_deepest_pressured_link_wins(self):
        detector = BottleneckDetector()
        verdict = detector.evaluate(
            [
                self.sample("calm", 2.0),
                self.sample("hot", 10.0, growth=4.0, retry=3.0),
            ]
        )
        assert verdict is not None
        assert verdict.target == "hot"
        assert verdict.kind == "link"
        assert "queue=10" in verdict.why
        assert "retry_pressure=3" in verdict.why

    def test_equal_scores_tie_break_on_name(self):
        detector = BottleneckDetector()
        verdict = detector.evaluate(
            [self.sample("beta", 5.0), self.sample("alpha", 5.0)]
        )
        assert verdict.target == "alpha"

    def test_negative_growth_never_boosts(self):
        detector = BottleneckDetector()
        verdict = detector.evaluate(
            [
                self.sample("draining", 8.0, growth=-5.0),
                self.sample("filling", 8.0, growth=5.0),
            ]
        )
        assert verdict.target == "filling"


def pressured_system(run_for=5.0):
    """An at-least-once system with a fully dropped sink link: retry
    pressure accumulates, so every health tick sees a lag watermark."""
    system = SystemS(
        hosts=4, seed=42, config=SystemConfig(delivery="at_least_once")
    )
    job = system.submit_job(make_linear_app(period=0.2))
    system.run_for(0.5)
    sink_pe = job.pe_of_operator("sink")
    system.transport.install_link_fault(
        drop_probability=1.0, dst_pe=sink_pe.pe_id
    )
    system.run_for(run_for)
    return system, job, sink_pe


class TestHealthMonitor:
    def test_always_on_tick_runs(self, system):
        system.run_for(5.0)
        assert system.obs.health.ticks >= 9
        assert system.obs.health.interval == 0.5

    def test_interval_zero_disables_the_plane(self):
        quiet = SystemS(
            hosts=2, seed=42, config=SystemConfig(health_interval=0.0)
        )
        quiet.run_for(5.0)
        assert quiet.obs.health.ticks == 0

    def test_calm_system_snapshot_is_empty(self, system):
        system.run_for(2.0)
        snap = system.obs.health.snapshot()
        assert snap.links == ()
        assert snap.bottleneck is None
        assert snap.max_lag == 0.0
        assert "bottleneck: none" in snap.render()

    def test_retry_pressure_raises_the_lag_watermark(self):
        system, job, sink_pe = pressured_system()
        health = system.obs.health
        assert health.max_lag > 0.0
        lags = health.link_lags()
        name = f"sink@{sink_pe.pe_id}#0"
        assert name in lags and lags[name] > 0.0
        assert health.peak_link_lag >= lags[name]
        assert health.peak_retry_pressure > 0

    def test_bottleneck_attributes_the_faulted_link(self):
        system, job, sink_pe = pressured_system()
        verdict = system.obs.health.bottleneck
        assert verdict is not None
        assert verdict.target == f"sink@{sink_pe.pe_id}#0"
        assert "retry_pressure=" in verdict.why

    def test_ack_round_trips_feed_latency_signal(self):
        system = reliable_system("at_least_once")
        transport, src_pe, sink_pe, sink = wire_fixture(system)
        for i in range(5):
            transport.send(sink_pe, "sink", 0, tup(i), src_pe=src_pe)
        system.run_for(1.0)
        health = system.obs.health
        p95 = health._signal_value(
            "latency_p95", None, health.short_window, system.now
        )
        assert p95 > 0.0
        assert health.snapshot().ack_p95 == p95

    def test_snapshot_render_is_byte_stable(self):
        first = pressured_system()[0].obs.health.snapshot().render()
        second = pressured_system()[0].obs.health.snapshot().render()
        assert first == second
        assert first.startswith("# health snapshot\n")

    def test_status_summarizes_the_plane(self):
        system, job, sink_pe = pressured_system()
        status = system.obs.health.status()
        assert status["ticks"] > 0
        assert status["max_lag"] > 0.0
        assert status["bottleneck"]["target"] == f"sink@{sink_pe.pe_id}#0"
        assert status["peak_queue_depth"] >= 0


class TestSloAlerts:
    def add_lag_slo(self, system, **overrides):
        params = dict(
            short_window=1.0, long_window=2.0, warn_burn=1.0, page_burn=2.0
        )
        params.update(overrides)
        return system.obs.health.add_slo(
            Slo("lag-budget", "lag", 0.001, **params)
        )

    def test_sustained_pressure_fires_and_escalates(self):
        system = SystemS(
            hosts=4, seed=42, config=SystemConfig(delivery="at_least_once")
        )
        self.add_lag_slo(system)
        job = system.submit_job(make_linear_app(period=0.2))
        system.run_for(0.5)
        sink_pe = job.pe_of_operator("sink")
        system.transport.install_link_fault(
            drop_probability=1.0, dst_pe=sink_pe.pe_id
        )
        system.run_for(5.0)
        health = system.obs.health
        assert health.alerts_fired >= 1
        assert health.pages_fired >= 1
        last = health.alerts[-1]
        assert last.slo == "lag-budget" and last.signal == "lag"
        assert last.bottleneck == f"sink@{sink_pe.pe_id}#0"
        assert last.observed > last.objective

    def test_alert_clears_when_pressure_drains(self):
        system = SystemS(
            hosts=4, seed=42, config=SystemConfig(delivery="at_least_once")
        )
        self.add_lag_slo(system)
        job = system.submit_job(make_linear_app(limit=3, period=0.2))
        system.run_for(0.5)
        sink_pe = job.pe_of_operator("sink")
        fault = system.transport.install_link_fault(
            drop_probability=1.0, dst_pe=sink_pe.pe_id
        )
        system.run_for(3.0)
        assert system.obs.health._active
        system.transport.clear_link_fault(fault)
        system.run_for(10.0)
        assert system.obs.health._active == {}

    def test_escalation_fires_once_per_severity(self):
        """warn -> page fires twice; staying at page does not re-fire."""
        system = SystemS(
            hosts=4, seed=42, config=SystemConfig(delivery="at_least_once")
        )
        self.add_lag_slo(system)
        job = system.submit_job(make_linear_app(period=0.2))
        system.run_for(0.5)
        sink_pe = job.pe_of_operator("sink")
        system.transport.install_link_fault(
            drop_probability=1.0, dst_pe=sink_pe.pe_id
        )
        system.run_for(8.0)
        health = system.obs.health
        assert health.alerts_fired <= 2
        assert health._active == {"lag-budget": "page"}

    def test_quiet_system_never_alerts(self, system):
        self.add_lag_slo(system)
        system.run_for(5.0)
        assert system.obs.health.alerts_fired == 0

    def test_alert_records_control_span(self):
        """A raised alert lands in the flight recorder, so dumps show
        health degradation next to the incident it predicts."""
        system = SystemS(
            hosts=4, seed=42, config=SystemConfig(delivery="at_least_once")
        )
        self.add_lag_slo(system)
        job = system.submit_job(make_linear_app(period=0.2))
        system.run_for(0.5)
        system.transport.install_link_fault(
            drop_probability=1.0, dst_pe=job.pe_of_operator("sink").pe_id
        )
        system.run_for(5.0)
        dump = system.obs.dump_flight("test").render()
        assert "health:" in dump
        assert "slo=lag-budget" in dump


class TestReplayBufferGauges:
    """Satellite: the unbounded exactly-once replay buffer is observable
    as per-link gauges that shrink when an epoch commit truncates it."""

    def test_gauges_track_retention_and_truncation(self):
        system = reliable_system("exactly_once")
        transport, src_pe, sink_pe, sink = wire_fixture(system)
        for i in range(4):
            transport.send(sink_pe, "sink", 0, tup(i), src_pe=src_pe)
        system.run_for(0.5)
        text = system.obs.render_prometheus()
        assert "repro_transport_replay_buffer_items" in text
        labels = {"src": src_pe.pe_id, "dst": sink_pe.pe_id}
        items = system.obs.metrics.gauge(
            "repro_transport_replay_buffer_items", labels
        )
        size = system.obs.metrics.gauge(
            "repro_transport_replay_buffer_bytes", labels
        )
        floor = system.obs.metrics.gauge(
            "repro_transport_replay_truncated_seq", labels
        )
        assert items.value == 4 and size.value > 0 and floor.value == 0
        # an epoch commit truncates the buffer: items down, floor up
        transport.on_epoch_committed(sink_pe.pe_id, {src_pe.pe_id: 2})
        system.obs.scrape_transport()
        assert items.value == 2 and floor.value == 2
        # a full truncation drains the link but keeps reporting zeros
        transport.on_epoch_committed(sink_pe.pe_id, {src_pe.pe_id: 4})
        system.obs.scrape_transport()
        assert items.value == 0 and size.value == 0 and floor.value == 4

    def test_best_effort_exposition_has_no_replay_series(self, system):
        system.submit_job(make_linear_app())
        system.run_for(4.0)
        assert "repro_transport_replay_buffer" not in (
            system.obs.render_prometheus()
        )

    def test_empty_reliable_buffer_stays_lazy(self):
        """An exactly-once system whose buffer never fills renders no
        replay series either (artifact byte-stability)."""
        system = reliable_system("exactly_once")
        system.run_for(1.0)
        assert "repro_transport_replay_buffer" not in (
            system.obs.render_prometheus()
        )


class _HealthAware(Orchestrator):
    def __init__(self, scope=None, slo=None):
        super().__init__()
        self.scope = scope
        self.slo = slo
        self.seen = []
        self.job = None

    def handleOrcaStart(self, context):
        if self.scope is not None:
            self.orca.register_event_scope(self.scope)
        if self.slo is not None:
            self.orca.register_slo(self.slo)
        self.job = self.orca.submit_application("Linear")

    def handleHealthAlertEvent(self, context, scopes):
        self.seen.append((context, tuple(scopes)))


def orchestrated_health_system(scope, slo):
    system = SystemS(
        hosts=4, seed=42, config=SystemConfig(delivery="at_least_once")
    )
    app = make_linear_app(period=0.2)
    logic = _HealthAware(scope, slo)
    service = system.submit_orchestrator(
        OrcaDescriptor(
            name="H",
            logic=lambda: logic,
            applications=[ManagedApplication(name=app.name, application=app)],
        )
    )
    system.run_for(1.0)
    job = next(iter(system.sam.jobs.values()))
    system.transport.install_link_fault(
        drop_probability=1.0, dst_pe=job.pe_of_operator("sink").pe_id
    )
    system.run_for(5.0)
    return system, service, logic


def tight_lag_slo():
    return Slo(
        "lag-budget",
        "lag",
        0.001,
        short_window=1.0,
        long_window=2.0,
        warn_burn=1.0,
        page_burn=2.0,
    )


class TestOrcaHealthSurface:
    def test_health_alert_delivered_with_scope(self):
        system, service, logic = orchestrated_health_system(
            HealthScope("h"), tight_lag_slo()
        )
        assert logic.seen
        context, scopes = logic.seen[0]
        assert scopes == ("h",)
        assert context.slo == "lag-budget"
        assert context.signal == "lag"
        assert context.severity in ("warn", "page")
        assert context.bottleneck.startswith("sink@")
        assert context.burn_short >= 1.0

    def test_blind_orchestrator_sees_nothing(self):
        system, service, logic = orchestrated_health_system(
            None, tight_lag_slo()
        )
        assert system.obs.health.alerts_fired >= 1
        assert logic.seen == []

    def test_severity_filter_narrows_delivery(self):
        scope = HealthScope("pages-only").addSeverityFilter("page")
        system, service, logic = orchestrated_health_system(
            scope, tight_lag_slo()
        )
        assert logic.seen
        assert all(c.severity == "page" for c, _ in logic.seen)

    def test_health_status_inspection(self):
        system, service, logic = orchestrated_health_system(
            HealthScope("h"), tight_lag_slo()
        )
        status = service.health_status()
        assert status["ticks"] > 0
        assert status["slos"] == ["lag-budget"]
        assert status["alerts_fired"] >= 1
        assert status["active_alerts"].get("lag-budget") in ("warn", "page")


class _StubInner(ScalingPolicy):
    def __init__(self, result=None):
        self.result = result
        self.calls = 0

    def decide(self, observation):
        self.calls += 1
        return self.result


class _FakeMonitor:
    def __init__(self, lag=0.0):
        self.lag = lag

        class _Clock:
            now = 0.0

        self.kernel = _Clock()

    def region_lag(self, region):
        return self.lag


class TestHealthAwareScalingPolicy:
    def observation(self, width=2):
        return RegionObservation(job_id="j", region="region", width=width)

    def test_lag_breach_scales_out_and_records_reaction(self):
        inner = _StubInner()
        monitor = _FakeMonitor(lag=1.0)
        policy = HealthAwareScalingPolicy(inner, monitor, lag_objective=0.5)
        assert policy.decide(self.observation(width=2)) == 3
        assert policy.reactions == [0.0]
        assert inner.calls == 0

    def test_cooldown_defers_to_inner(self):
        inner = _StubInner()
        monitor = _FakeMonitor(lag=1.0)
        policy = HealthAwareScalingPolicy(
            inner, monitor, lag_objective=0.5, cooldown=2.0
        )
        assert policy.decide(self.observation()) == 3
        monitor.kernel.now = 1.0  # still cooling down
        assert policy.decide(self.observation()) is None
        assert inner.calls == 1
        monitor.kernel.now = 2.5
        assert policy.decide(self.observation()) == 3
        assert policy.reactions == [0.0, 2.5]

    def test_calm_watermark_delegates_to_inner(self):
        inner = _StubInner(result=5)
        policy = HealthAwareScalingPolicy(
            inner, _FakeMonitor(lag=0.0), lag_objective=0.5
        )
        assert policy.decide(self.observation()) == 5
        assert inner.calls == 1

    def test_max_width_delegates_to_inner(self):
        inner = _StubInner()
        policy = HealthAwareScalingPolicy(
            inner, _FakeMonitor(lag=9.0), lag_objective=0.5, max_width=4
        )
        assert policy.decide(self.observation(width=4)) is None
        assert inner.calls == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            HealthAwareScalingPolicy(_StubInner(), _FakeMonitor(), 0.0)
        with pytest.raises(ValueError):
            HealthAwareScalingPolicy(
                _StubInner(), _FakeMonitor(), 1.0, step=0
            )


class TestHealthwatch:
    def test_parse_round_trips_a_live_snapshot(self):
        system, job, sink_pe = pressured_system()
        text = system.obs.health.snapshot().render()
        report = parse_snapshot(text)
        assert report.header["sim_time"].endswith("000")
        assert any(row.name.startswith("sink@") for row in report.links)
        assert report.bottleneck is not None
        assert report.bottleneck[0] == f"sink@{sink_pe.pe_id}#0"
        assert set(report.signals) == {"ack_rtt_p95", "loss_rate", "max_lag"}

    def test_dashboard_marks_the_bottleneck(self):
        system, job, sink_pe = pressured_system()
        dashboard = render_dashboard(system.obs.health.snapshot().render())
        assert "<- bottleneck" in dashboard
        assert f"bottleneck: sink@{sink_pe.pe_id}#0" in dashboard

    def test_calm_snapshot_renders_without_bars(self, system):
        system.run_for(2.0)
        dashboard = render_dashboard(system.obs.health.snapshot().render())
        assert "links: none" in dashboard
        assert "bottleneck: none" in dashboard
        assert "alerts: none" in dashboard

    def test_cli_renders_artifact(self, tmp_path, capsys):
        from repro.tools.healthwatch import main

        system, job, sink_pe = pressured_system()
        artifact = tmp_path / "snap.health.txt"
        artifact.write_text(system.obs.health.snapshot().render())
        assert main([str(artifact), "--width", "20"]) == 0
        out = capsys.readouterr().out
        assert "health @" in out
        assert "<- bottleneck" in out

    def test_unparseable_line_raises(self):
        with pytest.raises(ValueError):
            parse_snapshot("garbage line\n")
