"""Tests for PE placement: pools, exclusivity, exlocation, load balance."""

import pytest

from repro.errors import PlacementError, SubmissionError
from repro.runtime.host import Host
from repro.runtime.scheduler import PlacementScheduler
from repro.runtime.system import SystemS
from repro.spl.application import Application
from repro.spl.compiler import SPLCompiler
from repro.spl.hostpool import HostPool
from repro.spl.library import Beacon, Functor, Sink


def build_app(
    pools=(),
    op_kwargs=None,
):
    """Three-operator chain; per-operator placement kwargs by name."""
    op_kwargs = op_kwargs or {}
    app = Application("Placed")
    for pool in pools:
        app.add_host_pool(pool)
    g = app.graph
    src = g.add_operator("src", Beacon, **op_kwargs.get("src", {}))
    mid = g.add_operator(
        "mid", Functor, params={"fn": lambda t: t}, **op_kwargs.get("mid", {})
    )
    sink = g.add_operator("sink", Sink, **op_kwargs.get("sink", {}))
    g.connect(src.oport(0), mid.iport(0))
    g.connect(mid.oport(0), sink.iport(0))
    return SPLCompiler("manual").compile(app)


def place(compiled, hosts, load=None, reserved=None, job_id="job_t"):
    scheduler = PlacementScheduler()
    return scheduler.place(
        compiled,
        hosts=hosts,
        load=dict(load or {}),
        # the scheduler mutates the reservation map in place (SAM owns it)
        reserved=reserved if reserved is not None else {},
        job_id=job_id,
    )


class TestBasicPlacement:
    def test_balances_by_load(self):
        hosts = [Host("h1"), Host("h2"), Host("h3")]
        result = place(build_app(), hosts)
        assert sorted(result.assignment.values()) == ["h1", "h2", "h3"]

    def test_prefers_least_loaded(self):
        hosts = [Host("h1"), Host("h2")]
        result = place(build_app(), hosts, load={"h1": 5})
        counts = list(result.assignment.values()).count("h2")
        assert counts >= 2

    def test_no_hosts_up(self):
        host = Host("h1")
        host.mark_down()
        with pytest.raises(PlacementError):
            place(build_app(), [host])

    def test_down_hosts_skipped(self):
        h1, h2 = Host("h1"), Host("h2")
        h1.mark_down()
        result = place(build_app(), [h1, h2])
        assert set(result.assignment.values()) == {"h2"}

    def test_capacity_respected(self):
        hosts = [Host("h1", capacity=1), Host("h2", capacity=2)]
        result = place(build_app(), hosts)
        values = list(result.assignment.values())
        assert values.count("h1") <= 1
        assert values.count("h2") <= 2

    def test_capacity_exhausted_raises(self):
        hosts = [Host("h1", capacity=1)]
        with pytest.raises(PlacementError):
            place(build_app(), hosts)


class TestHostPools:
    def test_named_pool_restricts_hosts(self):
        pool = HostPool("only2", hosts=("h2",))
        compiled = build_app(
            pools=[pool], op_kwargs={"src": {"host_pool": "only2"}}
        )
        result = place(compiled, [Host("h1"), Host("h2")])
        src_pe = compiled.pe_of("src")
        assert result.assignment[src_pe] == "h2"

    def test_tag_pool(self):
        pool = HostPool("gpu", tags=("gpu",))
        compiled = build_app(pools=[pool], op_kwargs={"src": {"host_pool": "gpu"}})
        hosts = [Host("h1"), Host("h2", tags=("gpu",))]
        result = place(compiled, hosts)
        assert result.assignment[compiled.pe_of("src")] == "h2"

    def test_pool_size_caps_host_set(self):
        pool = HostPool("small", size=1)
        compiled = build_app(
            pools=[pool],
            op_kwargs={name: {"host_pool": "small"} for name in ("src", "mid", "sink")},
        )
        result = place(compiled, [Host("h1"), Host("h2"), Host("h3")])
        assert len(set(result.assignment.values())) == 1

    def test_empty_pool_raises(self):
        pool = HostPool("ghost", hosts=("nope",))
        compiled = build_app(pools=[pool], op_kwargs={"src": {"host_pool": "ghost"}})
        with pytest.raises(PlacementError):
            place(compiled, [Host("h1")])


class TestExclusivePools:
    def exclusive_app(self):
        pool = HostPool("mine", exclusive=True)
        return build_app(
            pools=[pool],
            op_kwargs={name: {"host_pool": "mine"} for name in ("src", "mid", "sink")},
        )

    def test_reserves_hosts(self):
        compiled = self.exclusive_app()
        reserved = {}
        result = place(compiled, [Host("h1"), Host("h2"), Host("h3"), Host("h4")],
                       reserved=reserved)
        assert result.newly_reserved
        assert all(reserved[h] == "job_t" for h in result.newly_reserved)

    def test_skips_hosts_reserved_by_others(self):
        compiled = self.exclusive_app()
        reserved = {"h1": "other_job"}
        result = place(compiled, [Host("h1"), Host("h2"), Host("h3"), Host("h4")],
                       reserved=reserved)
        assert "h1" not in result.newly_reserved
        assert "h1" not in result.assignment.values()

    def test_skips_hosts_already_loaded(self):
        compiled = self.exclusive_app()
        result = place(
            compiled, [Host("h1"), Host("h2"), Host("h3"), Host("h4")],
            load={"h1": 2},
        )
        assert "h1" not in result.newly_reserved

    def test_no_free_host_raises(self):
        compiled = self.exclusive_app()
        with pytest.raises(PlacementError):
            place(compiled, [Host("h1")], load={"h1": 1})

    def test_sized_exclusive_pool_requires_enough_hosts(self):
        pool = HostPool("mine", exclusive=True, size=3)
        compiled = build_app(
            pools=[pool], op_kwargs={"src": {"host_pool": "mine"}}
        )
        with pytest.raises(PlacementError):
            place(compiled, [Host("h1"), Host("h2")])

    def test_default_pool_exclusive_captures_poolless_pes(self):
        """The Sec. 4.3 actuation: make_all_exclusive on a pool-less app."""
        app = Application("NoPools")
        g = app.graph
        src = g.add_operator("src", Beacon)
        sink = g.add_operator("sink", Sink)
        g.connect(src.oport(0), sink.iport(0))
        app.host_pools.make_all_exclusive()
        compiled = SPLCompiler("manual").compile(app)
        reserved = {}
        result = place(compiled, [Host("h1"), Host("h2"), Host("h3")],
                       reserved=reserved)
        assert result.newly_reserved  # hosts were taken over
        assert set(result.assignment.values()) <= set(result.newly_reserved)


class TestExlocationColocation:
    def test_host_exlocation_forces_different_hosts(self):
        compiled = build_app(
            op_kwargs={
                "src": {"host_exlocation": "x"},
                "sink": {"host_exlocation": "x"},
            }
        )
        result = place(compiled, [Host("h1"), Host("h2"), Host("h3")])
        assert (
            result.assignment[compiled.pe_of("src")]
            != result.assignment[compiled.pe_of("sink")]
        )

    def test_host_exlocation_unsatisfiable(self):
        compiled = build_app(
            op_kwargs={
                "src": {"host_exlocation": "x"},
                "mid": {"host_exlocation": "x"},
                "sink": {"host_exlocation": "x"},
            }
        )
        with pytest.raises(PlacementError):
            place(compiled, [Host("h1"), Host("h2")])

    def test_host_colocation_forces_same_host(self):
        compiled = build_app(
            op_kwargs={
                "src": {"host_colocation": "c"},
                "sink": {"host_colocation": "c"},
            }
        )
        result = place(compiled, [Host("h1"), Host("h2"), Host("h3")])
        assert (
            result.assignment[compiled.pe_of("src")]
            == result.assignment[compiled.pe_of("sink")]
        )

    def test_paper_example_pe1_pe3_not_same_host(self):
        """Sec. 2.1: 'PEs 1 and 3 cannot run on the same host'."""
        compiled = build_app(
            op_kwargs={
                "src": {"host_exlocation": "pe1pe3"},
                "sink": {"host_exlocation": "pe1pe3"},
            }
        )
        result = place(compiled, [Host("a"), Host("b")])
        src_host = result.assignment[compiled.pe_of("src")]
        sink_host = result.assignment[compiled.pe_of("sink")]
        assert src_host != sink_host


class TestFailurePaths:
    """Unhappy paths: dead clusters, inter-job contention, impossible tags."""

    def test_every_host_down_raises(self):
        hosts = [Host(f"h{i}") for i in range(4)]
        for host in hosts:
            host.mark_down()
        with pytest.raises(PlacementError, match="no hosts are up"):
            place(build_app(), hosts)

    def test_all_hosts_down_fails_submission_end_to_end(self):
        system = SystemS(hosts=2)
        for host in system.srm.hosts.values():
            host.mark_down()
        with pytest.raises(SubmissionError):
            system.submit_job(
                SPLCompiler("manual").compile(_tiny_app("Dead")).application
            )

    def test_exclusive_pool_contention_between_two_jobs(self):
        """Two jobs demanding the same exclusive pool: first wins, second fails."""
        hosts = [Host("h1"), Host("h2")]
        reserved = {}
        load = {}
        first = place(
            _exclusive_compiled("A"), hosts, load=load, reserved=reserved,
            job_id="job_a",
        )
        assert set(first.newly_reserved) == {"h1", "h2"}
        # occupancy as SAM would report it after job_a spawned
        load = {host: 1 for host in first.assignment.values()}
        with pytest.raises(PlacementError, match="exclusive"):
            place(
                _exclusive_compiled("B"), hosts, load=load, reserved=reserved,
                job_id="job_b",
            )
        # the failed attempt must not have stolen job_a's reservations
        assert all(owner == "job_a" for owner in reserved.values())

    def test_exclusive_pool_contention_end_to_end_rolls_back(self):
        system = SystemS(hosts=2)
        system.submit_job(_exclusive_app("A"))
        system.run_for(1.0)
        with pytest.raises(SubmissionError):
            system.submit_job(_exclusive_app("B"))
        # SAM rolled back any reservation the failed submission made:
        # every reserved host still belongs to the first job
        owners = set(system.sam.reserved_hosts.values())
        assert owners == {"job_1"}
        # and the first job keeps running untouched
        assert system.sam.get_job("job_1").is_running

    def test_unsatisfiable_exlocation_tags(self):
        """More mutually-exlocated PEs than live hosts can ever satisfy."""
        compiled = build_app(
            op_kwargs={
                name: {"host_exlocation": "spread"}
                for name in ("src", "mid", "sink")
            }
        )
        with pytest.raises(PlacementError, match="exloc"):
            place(compiled, [Host("h1"), Host("h2")])

    def test_unsatisfiable_exlocation_end_to_end(self):
        system = SystemS(hosts=2)
        app = Application("Spread")
        g = app.graph
        src = g.add_operator("src", Beacon, host_exlocation="x")
        mid = g.add_operator(
            "mid", Functor, params={"fn": lambda t: t}, host_exlocation="x"
        )
        sink = g.add_operator("sink", Sink, host_exlocation="x")
        g.connect(src.oport(0), mid.iport(0))
        g.connect(mid.oport(0), sink.iport(0))
        with pytest.raises(SubmissionError):
            system.submit_job(app)
        assert system.sam.jobs == {}  # nothing half-created

    def test_contradictory_colocation_tags(self):
        """One PE pinned to two different hosts via colocation groups."""
        scheduler = PlacementScheduler()
        compiled = build_app(
            op_kwargs={
                "src": {"host_colocation": "g1"},
                "mid": {"host_colocation": "g2"},
            }
        )
        # place src on h1 and mid on h2 by capacity, then demand a PE in
        # both groups: pre-seed the colocation map through a first pass
        result = scheduler.place(
            compiled, [Host("h1", capacity=1), Host("h2", capacity=1),
                       Host("h3")], load={}, reserved={}, job_id="job_t",
        )
        assert len(set(result.assignment.values())) >= 2


def _tiny_app(name):
    app = Application(name)
    g = app.graph
    src = g.add_operator("src", Beacon)
    sink = g.add_operator("sink", Sink)
    g.connect(src.oport(0), sink.iport(0))
    return app


def _exclusive_app(name):
    app = _tiny_app(name)
    app.add_host_pool(HostPool("mine", exclusive=True))
    for spec in app.graph.operators.values():
        spec.host_pool = "mine"
    return app


def _exclusive_compiled(name):
    return SPLCompiler("manual").compile(_exclusive_app(name))
