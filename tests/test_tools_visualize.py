"""Tests for the visualization tooling."""

from repro.apps.figure2 import build_figure2_application
from repro.tools import (
    render_application_ascii,
    render_application_dot,
    render_deployment_ascii,
    render_system_dot,
)

from tests.conftest import make_linear_app


class TestApplicationViews:
    def test_dot_contains_clusters_and_edges(self):
        app = build_figure2_application()
        dot = render_application_dot(app)
        assert dot.startswith('digraph "Figure2"')
        assert "cluster_0" in dot and "cluster_1" in dot
        assert 'label="c1 : composite1"' in dot
        assert '"op1" -> "c1.op3";' in dot
        assert dot.count("->") == len(app.graph.edges)

    def test_dot_is_deterministic(self):
        a = render_application_dot(build_figure2_application())
        b = render_application_dot(build_figure2_application())
        assert a == b

    def test_ascii_lists_all_operators(self):
        app = build_figure2_application()
        text = render_application_ascii(app)
        for name in app.graph.operators:
            assert name in text
        assert "in c1" in text


class TestDeploymentView:
    def test_hosts_pes_operators(self, system):
        job = system.submit_job(make_linear_app())
        system.run_for(1.0)
        text = render_deployment_ascii(job)
        assert job.job_id in text
        for pe in job.pes:
            assert pe.pe_id in text
            assert f"host {pe.host_name}" in text
        assert "src" in text and "sink" in text

    def test_reflects_pe_state(self, system):
        job = system.submit_job(make_linear_app())
        system.run_for(1.0)
        job.pes[0].crash("x")
        text = render_deployment_ascii(job)
        assert "[crashed]" in text


class TestSystemView:
    def test_clusters_per_running_job(self, system):
        system.submit_job(make_linear_app("A"))
        system.submit_job(make_linear_app("B"))
        system.run_for(1.0)
        dot = render_system_dot(system)
        assert "A (job_1)" in dot
        assert "B (job_2)" in dot

    def test_cancelled_jobs_hidden_by_default(self, system):
        job = system.submit_job(make_linear_app("A"))
        system.run_for(1.0)
        system.cancel_job(job.job_id)
        assert "job_1" not in render_system_dot(system)
        assert "job_1" in render_system_dot(system, include_cancelled=True)

    def test_import_export_edges_drawn(self, system):
        from repro.spl.application import Application
        from repro.spl.library import Beacon, Export, Import, Sink

        producer = Application("Prod")
        g = producer.graph
        src = g.add_operator("src", Beacon)
        exp = g.add_operator("exp", Export, params={"stream_id": "s"})
        g.connect(src.oport(0), exp.iport(0))

        consumer = Application("Cons")
        g2 = consumer.graph
        imp = g2.add_operator("imp", Import, params={"stream_id": "s"})
        sink = g2.add_operator("sink", Sink)
        g2.connect(imp.oport(0), sink.iport(0))

        system.submit_job(producer)
        system.submit_job(consumer)
        system.run_for(1.0)
        dot = render_system_dot(system)
        assert '"job_1.exp" -> "job_2.imp"' in dot
        assert "dashed" in dot
