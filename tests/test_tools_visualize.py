"""Tests for the visualization tooling."""

from repro.apps.figure2 import build_figure2_application
from repro.spl.application import Application
from repro.spl.library import Beacon, Functor, Sink
from repro.spl.parallel import expand_parallel_regions, parallel
from repro.tools import (
    render_application_ascii,
    render_application_dot,
    render_deployment_ascii,
    render_system_dot,
)

from tests.conftest import make_linear_app


class TestApplicationViews:
    def test_dot_contains_clusters_and_edges(self):
        app = build_figure2_application()
        dot = render_application_dot(app)
        assert dot.startswith('digraph "Figure2"')
        assert "cluster_0" in dot and "cluster_1" in dot
        assert 'label="c1 : composite1"' in dot
        assert '"op1" -> "c1.op3";' in dot
        assert dot.count("->") == len(app.graph.edges)

    def test_dot_is_deterministic(self):
        a = render_application_dot(build_figure2_application())
        b = render_application_dot(build_figure2_application())
        assert a == b

    def test_ascii_lists_all_operators(self):
        app = build_figure2_application()
        text = render_application_ascii(app)
        for name in app.graph.operators:
            assert name in text
        assert "in c1" in text


def build_parallel_app(width=2):
    app = Application("ParViz")
    g = app.graph
    src = g.add_operator("src", Beacon)
    work = g.add_operator(
        "work",
        Functor,
        params={"fn": lambda t: t},
        parallel=parallel(width=width, name="region"),
    )
    sink = g.add_operator("sink", Sink)
    g.connect(src.oport(0), work.iport(0))
    g.connect(work.oport(0), sink.iport(0))
    expanded, _ = expand_parallel_regions(app)
    return expanded


PARALLEL_DOT_SNAPSHOT = """\
digraph "ParViz" {
  rankdir=LR;
  subgraph cluster_region_region {
    label="parallel region region (width=2)"; style="rounded,dashed"; color=steelblue;
    "region__split" [label="region__split\\n(ParallelSplitter)", shape=trapezium];
    "region__merge" [label="region__merge\\n(OrderedMerger)", shape=trapezium];
    subgraph cluster_region_region_c0 {
      label="channel 0"; style=dotted;
      "work__c0" [label="work__c0\\n(Functor)"];
    }
    subgraph cluster_region_region_c1 {
      label="channel 1"; style=dotted;
      "work__c1" [label="work__c1\\n(Functor)"];
    }
  }
  "src" [label="src\\n(Beacon)"];
  "sink" [label="sink\\n(Sink)"];
  "region__split" -> "work__c0";
  "work__c0" -> "region__merge";
  "region__split" -> "work__c1";
  "work__c1" -> "region__merge";
  "src" -> "region__split";
  "region__merge" -> "sink";
}"""


class TestParallelRegionView:
    def test_region_cluster_snapshot(self):
        assert render_application_dot(build_parallel_app()) == PARALLEL_DOT_SNAPSHOT

    def test_channel_clusters_scale_with_width(self):
        dot = render_application_dot(build_parallel_app(width=3))
        assert "width=3" in dot
        for channel in range(3):
            assert f"cluster_region_region_c{channel}" in dot
        assert dot.count("->") == 8  # 2 external + 3x(split->work->merge)

    def test_region_rendering_is_deterministic(self):
        a = render_application_dot(build_parallel_app())
        b = render_application_dot(build_parallel_app())
        assert a == b


class TestDeploymentView:
    def test_hosts_pes_operators(self, system):
        job = system.submit_job(make_linear_app())
        system.run_for(1.0)
        text = render_deployment_ascii(job)
        assert job.job_id in text
        for pe in job.pes:
            assert pe.pe_id in text
            assert f"host {pe.host_name}" in text
        assert "src" in text and "sink" in text

    def test_reflects_pe_state(self, system):
        job = system.submit_job(make_linear_app())
        system.run_for(1.0)
        job.pes[0].crash("x")
        text = render_deployment_ascii(job)
        assert "[crashed]" in text


class TestSystemView:
    def test_clusters_per_running_job(self, system):
        system.submit_job(make_linear_app("A"))
        system.submit_job(make_linear_app("B"))
        system.run_for(1.0)
        dot = render_system_dot(system)
        assert "A (job_1)" in dot
        assert "B (job_2)" in dot

    def test_cancelled_jobs_hidden_by_default(self, system):
        job = system.submit_job(make_linear_app("A"))
        system.run_for(1.0)
        system.cancel_job(job.job_id)
        assert "job_1" not in render_system_dot(system)
        assert "job_1" in render_system_dot(system, include_cancelled=True)

    def test_import_export_edges_drawn(self, system):
        from repro.spl.application import Application
        from repro.spl.library import Beacon, Export, Import, Sink

        producer = Application("Prod")
        g = producer.graph
        src = g.add_operator("src", Beacon)
        exp = g.add_operator("exp", Export, params={"stream_id": "s"})
        g.connect(src.oport(0), exp.iport(0))

        consumer = Application("Cons")
        g2 = consumer.graph
        imp = g2.add_operator("imp", Import, params={"stream_id": "s"})
        sink = g2.add_operator("sink", Sink)
        g2.connect(imp.oport(0), sink.iport(0))

        system.submit_job(producer)
        system.submit_job(consumer)
        system.run_for(1.0)
        dot = render_system_dot(system)
        assert '"job_1.exp" -> "job_2.imp"' in dot
        assert "dashed" in dot
