"""Tests for transport-level tuple batching: flush triggers (size, linger,
punctuation, barriers), link-partition holds spanning a heal, crash
condemnation of buffered and in-flight batches, and drain barriers
committing open batches before the backlog probe counts."""

from repro import SystemConfig, SystemS
from repro.elastic import RescaleState
from repro.spl.application import Application
from repro.spl.library import Custom, Sink
from repro.spl.tuples import FinalMarker, StreamTuple

from tests.conftest import make_linear_app
from tests.test_elastic import build_region_app


def make_wire_app(name="Wire"):
    """A quiet two-PE app: an inert source so tests drive the wire by hand."""
    app = Application(name)
    g = app.graph
    src = g.add_operator(
        "src", Custom, params={"n_inputs": 0, "n_outputs": 1}, partition="a"
    )
    sink = g.add_operator("sink", Sink, partition="b")
    g.connect(src.oport(0), sink.iport(0))
    return app


def batched_system(batch_max_size=4, batch_linger=0.0, hosts=4):
    return SystemS(
        hosts=hosts,
        seed=42,
        config=SystemConfig(
            batch_max_size=batch_max_size, batch_linger=batch_linger
        ),
    )


def wire_fixture(system):
    """Submit the quiet app, start it, return (transport, src_pe, sink_pe, sink)."""
    job = system.submit_job(make_wire_app())
    system.run_for(0.5)
    src_pe = job.pe_of_operator("src")
    sink_pe = job.pe_of_operator("sink")
    sink = job.operator_instance("sink")
    return system.transport, src_pe, sink_pe, sink


def tup(i):
    return StreamTuple({"iter": i})


class TestFlushTriggers:
    def test_size_flush_commits_before_linger(self):
        system = batched_system(batch_max_size=3, batch_linger=5.0)
        transport, src_pe, sink_pe, sink = wire_fixture(system)
        sizes = []
        transport.batch_observer = sizes.append
        for i in range(3):
            transport.send(sink_pe, "sink", 0, tup(i), src_pe=src_pe)
        # the size trigger fired synchronously: nothing is left buffered
        assert transport._open_batches == {}
        system.run_for(0.1)  # far less than the 5s linger
        assert [t["iter"] for t in sink.seen] == [0, 1, 2]
        assert sizes == [3]

    def test_linger_flush_commits_partial_batch(self):
        system = batched_system(batch_max_size=100, batch_linger=0.05)
        transport, src_pe, sink_pe, sink = wire_fixture(system)
        transport.send(sink_pe, "sink", 0, tup(0), src_pe=src_pe)
        transport.send(sink_pe, "sink", 0, tup(1), src_pe=src_pe)
        # buffered tuples already count as sent and in flight (queueSize)
        assert transport.queue_size(sink_pe.pe_id, "sink", 0) == 2
        system.run_for(0.02)  # > transport latency, < linger
        assert sink.seen == []
        system.run_for(0.1)  # linger expires, batch delivered whole
        assert [t["iter"] for t in sink.seen] == [0, 1]
        assert transport.queue_size(sink_pe.pe_id, "sink", 0) == 0

    def test_zero_linger_coalesces_within_one_instant(self):
        system = batched_system(batch_max_size=100, batch_linger=0.0)
        transport, src_pe, sink_pe, sink = wire_fixture(system)
        sizes = []
        transport.batch_observer = sizes.append
        for i in range(5):
            transport.send(sink_pe, "sink", 0, tup(i), src_pe=src_pe)
        system.run_for(0.1)
        # one batch, no sim-time delay beyond the base transport latency
        assert sizes == [5]
        assert [t["iter"] for t in sink.seen] == [0, 1, 2, 3, 4]

    def test_punctuation_flushes_open_batch_first(self):
        system = batched_system(batch_max_size=100, batch_linger=5.0)
        transport, src_pe, sink_pe, sink = wire_fixture(system)
        transport.send(sink_pe, "sink", 0, tup(0), src_pe=src_pe)
        transport.send(sink_pe, "sink", 0, FinalMarker, src_pe=src_pe)
        assert transport._open_batches == {}
        system.run_for(0.1)
        # the marker did not overtake the buffered tuple
        assert [t["iter"] for t in sink.seen] == [0]
        assert sink.is_finalized

    def test_delivery_taps_see_contiguous_link_seqs(self):
        system = batched_system(batch_max_size=3, batch_linger=0.0)
        transport, src_pe, sink_pe, sink = wire_fixture(system)
        seqs = []
        transport.delivery_taps.append(lambda rec: seqs.append(rec.link_seq))
        for i in range(7):
            transport.send(sink_pe, "sink", 0, tup(i), src_pe=src_pe)
        system.run_for(0.1)
        assert seqs == [1, 2, 3, 4, 5, 6, 7]

    def test_size_one_config_never_batches(self):
        system = batched_system(batch_max_size=1, batch_linger=0.05)
        transport, src_pe, sink_pe, sink = wire_fixture(system)
        sizes = []
        transport.batch_observer = sizes.append
        for i in range(4):
            transport.send(sink_pe, "sink", 0, tup(i), src_pe=src_pe)
        assert transport._open_batches == {}
        system.run_for(0.1)
        assert sizes == []
        assert [t["iter"] for t in sink.seen] == [0, 1, 2, 3]


class TestPartitionStraddle:
    def test_batch_held_through_partition_heal_stays_fifo(self):
        system = batched_system(batch_max_size=3, batch_linger=5.0)
        transport, src_pe, sink_pe, sink = wire_fixture(system)
        seqs = []
        transport.delivery_taps.append(lambda rec: seqs.append(rec.link_seq))
        fault = transport.install_link_fault(
            partition=True, dst_pe=sink_pe.pe_id
        )
        # first batch flushes at size while the link is partitioned: the
        # whole batch becomes one held queue entry
        for i in range(3):
            transport.send(sink_pe, "sink", 0, tup(i), src_pe=src_pe)
        system.run_for(0.5)
        assert sink.seen == []
        assert transport.queue_size(sink_pe.pe_id, "sink", 0) == 3
        transport.clear_link_fault(fault)
        # a second batch commits after the heal; it must not overtake the
        # re-sent held batch
        for i in range(3, 6):
            transport.send(sink_pe, "sink", 0, tup(i), src_pe=src_pe)
        system.run_for(0.5)
        assert [t["iter"] for t in sink.seen] == [0, 1, 2, 3, 4, 5]
        assert seqs == sorted(seqs)
        assert transport.dropped_by_fault == 0

    def test_held_batch_condemned_by_crash_during_partition(self):
        system = batched_system(batch_max_size=3, batch_linger=5.0)
        transport, src_pe, sink_pe, sink = wire_fixture(system)
        fault = transport.install_link_fault(
            partition=True, dst_pe=sink_pe.pe_id
        )
        for i in range(3):
            transport.send(sink_pe, "sink", 0, tup(i), src_pe=src_pe)
        system.run_for(0.2)
        sink_pe.crash("test")
        sink_pe.restart()
        transport.clear_link_fault(fault)
        system.run_for(0.5)
        # the held batch carried the pre-crash incarnation: all members
        # are condemned, none leaks into the restarted process
        assert transport.dropped_in_flight == 3
        assert job_sink(system) == []

    def test_lossy_fault_drops_per_member(self):
        system = batched_system(batch_max_size=4, batch_linger=0.0)
        transport, src_pe, sink_pe, sink = wire_fixture(system)
        transport.install_link_fault(
            drop_probability=1.0, dst_pe=sink_pe.pe_id
        )
        for i in range(4):
            transport.send(sink_pe, "sink", 0, tup(i), src_pe=src_pe)
        system.run_for(0.5)
        assert transport.dropped_by_fault == 4
        assert sink.seen == []
        assert transport.queue_size(sink_pe.pe_id, "sink", 0) == 0


def job_sink(system):
    """The sink's recorded tuples, or [] when the operator was discarded."""
    for job in system.sam.jobs.values():
        inst = job.pe_of_operator("sink").operators.get("sink")
        return inst.seen if inst is not None else []
    return []


class TestCrashCondemnation:
    def test_crash_condemns_open_and_in_flight_batches(self):
        system = batched_system(batch_max_size=3, batch_linger=5.0)
        transport, src_pe, sink_pe, sink = wire_fixture(system)
        # three tuples flush at size and sit in flight; two more stay
        # buffered in the open batch
        for i in range(5):
            transport.send(sink_pe, "sink", 0, tup(i), src_pe=src_pe)
        assert len(transport._open_batches) == 1
        sink_pe.crash("test")
        # the crash flushed the open batch toward the dead incarnation
        assert transport._open_batches == {}
        system.run_for(0.5)
        assert transport.dropped_in_flight == 5
        assert transport.total_delivered == 0

    def test_condemned_batch_never_reaches_restarted_pe(self):
        system = batched_system(batch_max_size=3, batch_linger=5.0)
        transport, src_pe, sink_pe, sink = wire_fixture(system)
        for i in range(3):
            transport.send(sink_pe, "sink", 0, tup(i), src_pe=src_pe)
        # batch is on the wire; the destination crashes and restarts
        # within one transport latency
        sink_pe.crash("test")
        sink_pe.restart()
        system.run_for(0.5)
        assert transport.dropped_in_flight == 3
        assert job_sink(system) == []


class TestDrainBarrier:
    def test_rescale_drain_flushes_open_batches(self):
        """An elastic rescale under batching stays loss-free and ordered.

        The quiesce/drain barrier forces open batches onto the wire before
        the backlog probe counts, so no tuple can sit invisible in a
        buffer while the region is declared drained.
        """
        system = SystemS(
            hosts=12,
            seed=42,
            config=SystemConfig(batch_max_size=8, batch_linger=0.05),
        )
        app = build_region_app(width=1, limit=300, rate=100.0)
        job = system.submit_job(app)
        system.run_for(2.0)
        operation = system.elastic.set_channel_width(job, "region", 2)
        system.run_for(60.0)
        assert operation.state is RescaleState.COMPLETED
        sink = job.operator_instance("sink")
        iters = [t["iter"] for t in sink.seen]
        assert sorted(iters) == list(range(300))
        assert iters == sorted(iters)

    def test_flush_open_batches_filters_by_destination(self):
        system = batched_system(batch_max_size=100, batch_linger=5.0)
        transport, src_pe, sink_pe, sink = wire_fixture(system)
        other_job = system.submit_job(make_linear_app(name="Other", period=1000.0))
        system.run_for(0.5)
        other_pe = other_job.pe_of_operator("sink")
        transport.send(sink_pe, "sink", 0, tup(0), src_pe=src_pe)
        transport.send(other_pe, "sink", 0, tup(1), src_pe=src_pe)
        assert len(transport._open_batches) == 2
        transport.flush_open_batches(dst_pe_id=sink_pe.pe_id)
        assert len(transport._open_batches) == 1
        transport.flush_open_batches()
        assert transport._open_batches == {}
