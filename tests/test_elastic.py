"""Tests for the elastic subsystem: controller protocol, SAM PE-set changes,
SRM per-channel aggregation, and scaling policies."""

import pytest

from repro import SystemS
from repro.elastic import (
    ElasticController,
    QueueSizeScalingPolicy,
    RegionObservation,
    RescaleState,
    ThroughputScalingPolicy,
)
from repro.errors import ElasticError, PEControlError
from repro.runtime.pe import PEState
from repro.spl.application import Application
from repro.spl.library import Beacon, Sink, Throttle
from repro.spl.parallel import parallel


def build_region_app(width=2, limit=None, rate=50.0, per_tick=4, period=0.1,
                     name="Elastic"):
    app = Application(name)
    g = app.graph
    src = g.add_operator(
        "src",
        Beacon,
        params={"values": {}, "limit": limit, "period": period,
                "per_tick": per_tick},
        partition="feed",
    )
    work = g.add_operator(
        "work",
        Throttle,
        params={"rate": rate},
        parallel=parallel(width=width, name="region"),
    )
    sink = g.add_operator("sink", Sink, partition="out")
    g.connect(src.oport(0), work.iport(0))
    g.connect(work.oport(0), sink.iport(0))
    return app


@pytest.fixture
def big_system():
    return SystemS(hosts=12, seed=42)


class TestPerJobCompilation:
    def test_each_job_gets_a_private_expansion(self, big_system):
        compiled = big_system.compile(build_region_app(width=2))
        job_a = big_system.sam.submit_job(compiled)
        job_b = big_system.sam.submit_job(compiled)
        assert job_a.compiled is not compiled
        assert job_a.compiled is not job_b.compiled
        big_system.run_for(1.0)
        big_system.elastic.set_channel_width(job_a, "region", 4)
        big_system.run_for(2.0)
        assert job_a.compiled.parallel_regions["region"].width == 4
        assert job_b.compiled.parallel_regions["region"].width == 2
        assert compiled.parallel_regions["region"].width == 2


class TestSamPESetChanges:
    def test_add_pes_requires_running_job(self, big_system):
        job = big_system.submit_job(build_region_app())
        with pytest.raises(PEControlError):
            big_system.sam.add_pes(job.job_id, [])  # still SUBMITTED

    def test_remove_pes_drops_metrics(self, big_system):
        job = big_system.submit_job(build_region_app(width=2))
        big_system.run_for(5.0)  # a few HC metric pushes
        channel_pe = job.pe_of_operator("work__c1")
        samples = [
            s
            for s in big_system.srm.get_metrics([job.job_id])
            if s.pe_id == channel_pe.pe_id
        ]
        assert samples
        big_system.sam.remove_pes(job.job_id, [channel_pe.pe_id])
        assert channel_pe.state is PEState.STOPPED
        assert channel_pe not in job.pes
        assert not [
            s
            for s in big_system.srm.get_metrics([job.job_id])
            if s.pe_id == channel_pe.pe_id
        ]


class TestSrmAggregation:
    def test_aggregate_over_channel_operators(self, big_system):
        # throttle rate 2/s vs feed 40/s: backlog builds quickly
        job = big_system.submit_job(build_region_app(width=2, rate=2.0))
        big_system.run_for(7.0)
        aggregate = big_system.srm.aggregate_operator_metric(
            job.job_id, ["work__c0", "work__c1"], "nBuffered"
        )
        assert set(aggregate.per_operator) == {"work__c0", "work__c1"}
        assert aggregate.total > 0
        assert aggregate.maximum >= aggregate.mean >= aggregate.minimum
        assert aggregate.total == pytest.approx(
            sum(aggregate.per_operator.values())
        )

    def test_unknown_operators_contribute_zero(self, big_system):
        job = big_system.submit_job(build_region_app())
        big_system.run_for(4.0)
        aggregate = big_system.srm.aggregate_operator_metric(
            job.job_id, ["ghost"], "nBuffered"
        )
        assert aggregate.per_operator == {"ghost": 0.0}
        assert aggregate.total == 0.0


class TestRescaleProtocol:
    def test_scale_out_zero_loss_and_order(self, big_system):
        job = big_system.submit_job(build_region_app(width=1, limit=200, rate=30.0))
        big_system.run_for(2.0)
        operation = big_system.elastic.set_channel_width(job, "region", 4)
        assert operation.state is RescaleState.DRAINING
        big_system.run_for(30.0)
        assert operation.state is RescaleState.COMPLETED
        assert operation.epoch == 1
        assert len(operation.added_pe_ids) == 3
        sink = job.operator_instance("sink")
        iters = [t["iter"] for t in sink.seen]
        assert sorted(iters) == list(range(200))
        assert iters == sorted(iters)
        assert not any("_pseq" in t.values for t in sink.seen)

    def test_scale_in_zero_loss(self, big_system):
        job = big_system.submit_job(build_region_app(width=4, limit=200, rate=30.0))
        big_system.run_for(2.0)
        operation = big_system.elastic.set_channel_width(job, "region", 1)
        big_system.run_for(30.0)
        assert operation.state is RescaleState.COMPLETED
        assert len(operation.removed_pe_ids) == 3
        assert len(job.pes) == 5  # feed, splitter, 1 channel, merger, sink
        sink = job.operator_instance("sink")
        assert sorted(t["iter"] for t in sink.seen) == list(range(200))

    def test_drain_waits_for_worker_backlog(self, big_system):
        # 1 tuple/s service vs 40/s arrival: the region holds a deep buffer
        # when the rescale starts, and the barrier must wait for all of it.
        job = big_system.submit_job(build_region_app(width=1, limit=40, rate=1.0))
        big_system.run_for(2.0)
        worker = job.operator_instance("work__c0")
        assert worker.pending_items() > 0
        operation = big_system.elastic.set_channel_width(job, "region", 2)
        big_system.run_for(1.0)
        assert operation.state is RescaleState.DRAINING  # still draining
        big_system.run_for(50.0)
        assert operation.state is RescaleState.COMPLETED
        assert operation.drain_polls > 1

    def test_noop_rescale_completes_immediately(self, big_system):
        job = big_system.submit_job(build_region_app(width=2))
        big_system.run_for(1.0)
        operation = big_system.elastic.set_channel_width(job, "region", 2)
        assert operation.state is RescaleState.NOOP

    def test_unknown_region_rejected(self, big_system):
        job = big_system.submit_job(build_region_app())
        big_system.run_for(1.0)
        with pytest.raises(ElasticError):
            big_system.elastic.set_channel_width(job, "nope", 3)

    def test_width_beyond_max_rejected(self, big_system):
        job = big_system.submit_job(build_region_app())
        big_system.run_for(1.0)
        with pytest.raises(ElasticError):
            big_system.elastic.set_channel_width(job, "region", 9)

    def test_concurrent_rescale_rejected(self, big_system):
        job = big_system.submit_job(build_region_app(width=1, rate=1.0))
        big_system.run_for(2.0)
        big_system.elastic.set_channel_width(job, "region", 2)
        with pytest.raises(ElasticError):
            big_system.elastic.set_channel_width(job, "region", 3)

    def test_rescale_of_non_running_job_rejected(self, big_system):
        job = big_system.submit_job(build_region_app())
        big_system.run_for(1.0)
        big_system.cancel_job(job.job_id)
        with pytest.raises(ElasticError):
            big_system.elastic.set_channel_width(job, "region", 3)

    def test_on_complete_callback_and_history(self, big_system):
        job = big_system.submit_job(build_region_app(width=1))
        big_system.run_for(1.0)
        seen = []
        big_system.elastic.set_channel_width(
            job, "region", 2, on_complete=seen.append
        )
        big_system.run_for(10.0)
        assert len(seen) == 1
        assert seen[0].state is RescaleState.COMPLETED
        assert seen[0] in big_system.elastic.history

    def test_reconfig_epochs_are_monotone(self, big_system):
        job = big_system.submit_job(build_region_app(width=1))
        big_system.run_for(1.0)
        first = big_system.elastic.set_channel_width(job, "region", 2)
        big_system.run_for(10.0)
        second = big_system.elastic.set_channel_width(job, "region", 3)
        big_system.run_for(10.0)
        assert (first.epoch, second.epoch) == (1, 2)
        splitter = job.operator_instance("region__split")
        assert splitter.epoch == 2

    def test_channel_crash_does_not_stall_region_output(self, big_system):
        """A crashed channel's lost seqs are skipped after the reorder grace,
        and a later rescale can still complete."""
        app = build_region_app(width=2, rate=50.0)
        app.graph.operator("work").parallel.reorder_grace = 5.0
        job = big_system.submit_job(app)
        big_system.run_for(2.0)
        job.pe_of_operator("work__c1").crash("test")
        big_system.run_for(20.0)
        sink = job.operator_instance("sink")
        merger = job.operator_instance("region__merge")
        # the hole left by the crashed channel was skipped, not waited on
        # forever (the dead channel keeps eating every other tuple, so new
        # holes keep forming — the guard keeps skipping them)
        assert merger.metric("nSeqGapsSkipped").value >= 1
        received_before = len(sink.seen)
        assert received_before > 0
        big_system.run_for(10.0)
        assert len(sink.seen) > received_before  # output still flowing
        # and the region can still be rescaled (replacing the dead channel)
        operation = big_system.elastic.set_channel_width(job, "region", 3)
        big_system.run_for(20.0)
        assert operation.state is RescaleState.COMPLETED

    def test_unplaceable_scale_out_rolls_back(self):
        """If the new channels cannot be placed, the rescale fails cleanly:
        graph and plan return to the old width and the region keeps flowing."""
        from repro.runtime.host import Host

        # exactly enough capacity for the initial 5 PEs, none spare
        system = SystemS(hosts=[Host(f"h{i}", capacity=1) for i in range(5)])
        job = system.sam.submit_job(
            system.compile(build_region_app(width=1, limit=200, rate=100.0))
        )
        system.run_for(1.0)
        seen = []
        operation = system.elastic.set_channel_width(
            job, "region", 2, on_complete=seen.append
        )
        system.run_for(30.0)
        assert operation.state is RescaleState.FAILED
        assert "rewire failed" in operation.error
        assert seen == [operation]  # failure still reported to the caller
        plan = job.compiled.parallel_regions["region"]
        assert plan.width == 1
        assert plan.channel_ops == [["work__c0"]]
        assert "work__c1" not in job.compiled.application.graph.operators
        assert "work__c1" not in job.compiled.placement
        splitter = job.operator_instance("region__split")
        assert not splitter.is_quiesced  # resumed at the old width
        system.run_for(30.0)
        sink = job.operator_instance("sink")
        assert sorted(t["iter"] for t in sink.seen) == list(range(200))

    def test_fused_channels_refuse_scale_in(self, big_system):
        compiled = big_system.compile(build_region_app(width=2), strategy="fuse_all")
        job = big_system.sam.submit_job(compiled)
        big_system.run_for(1.0)
        with pytest.raises(ElasticError):
            big_system.elastic.set_channel_width(job, "region", 1)


class TestScalingPolicies:
    def obs(self, width, backlogs, throughput=None):
        return RegionObservation(
            job_id="job_1",
            region="region",
            width=width,
            channel_backlogs=backlogs,
            throughput=throughput,
        )

    def test_queue_policy_scales_out_above_high_watermark(self):
        policy = QueueSizeScalingPolicy(high_watermark=10, low_watermark=1)
        assert policy.decide(self.obs(2, {0: 3.0, 1: 12.0})) == 3

    def test_queue_policy_scales_in_below_low_watermark(self):
        policy = QueueSizeScalingPolicy(high_watermark=10, low_watermark=1)
        assert policy.decide(self.obs(3, {0: 0.0, 1: 1.0, 2: 0.5})) == 2

    def test_queue_policy_dead_band_returns_none(self):
        policy = QueueSizeScalingPolicy(high_watermark=10, low_watermark=1)
        assert policy.decide(self.obs(2, {0: 5.0, 1: 5.0})) is None

    def test_queue_policy_respects_bounds(self):
        policy = QueueSizeScalingPolicy(
            high_watermark=10, low_watermark=1, min_width=2, max_width=3
        )
        assert policy.decide(self.obs(3, {0: 99.0})) is None  # at max
        assert policy.decide(self.obs(2, {0: 0.0, 1: 0.0})) is None  # at min

    def test_throughput_policy_sizes_by_demand(self):
        policy = ThroughputScalingPolicy(target_per_channel=10.0, max_width=8)
        assert policy.decide(self.obs(1, {}, throughput=35.0)) == 4
        assert policy.decide(self.obs(4, {}, throughput=35.0)) is None
        assert policy.decide(self.obs(4, {}, throughput=5.0)) == 1

    def test_throughput_policy_headroom(self):
        policy = ThroughputScalingPolicy(
            target_per_channel=10.0, max_width=8, headroom=1.5
        )
        assert policy.decide(self.obs(1, {}, throughput=35.0)) == 6

    def test_throughput_policy_without_observation_is_none(self):
        policy = ThroughputScalingPolicy(target_per_channel=10.0)
        assert policy.decide(self.obs(2, {0: 5.0})) is None

    def test_policy_constructor_validation(self):
        with pytest.raises(ValueError):
            QueueSizeScalingPolicy(high_watermark=1, low_watermark=2)
        with pytest.raises(ValueError):
            ThroughputScalingPolicy(target_per_channel=0)
