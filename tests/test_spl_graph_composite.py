"""Tests for logical graphs and composite operators."""

import pytest

from repro.errors import CompositeError, GraphError
from repro.spl.composite import CompositeDefinition, containment_chain
from repro.spl.graph import LogicalGraph
from repro.spl.library import Beacon, Functor, Merge, Sink


def passthrough_composite(name="wrap"):
    """A 1-in 1-out composite containing a single Functor."""

    def assemble(b):
        inner = b.add_operator("inner", Functor, params={"fn": lambda t: t})
        b.connect(b.input(0), inner.iport(0))
        b.bind_output(0, inner.oport(0))

    return CompositeDefinition(name, n_inputs=1, n_outputs=1, assemble=assemble)


class TestGraphConstruction:
    def test_add_and_lookup(self):
        g = LogicalGraph()
        spec = g.add_operator("a", Beacon, params={"values": {}})
        assert g.operator("a") is spec
        assert spec.kind == "Beacon"

    def test_duplicate_name_rejected(self):
        g = LogicalGraph()
        g.add_operator("a", Beacon)
        with pytest.raises(GraphError):
            g.add_operator("a", Sink)

    def test_dotted_name_rejected(self):
        g = LogicalGraph()
        with pytest.raises(GraphError):
            g.add_operator("a.b", Beacon)

    def test_unknown_operator_lookup(self):
        with pytest.raises(GraphError):
            LogicalGraph().operator("ghost")

    def test_port_refs_validated(self):
        g = LogicalGraph()
        spec = g.add_operator("a", Beacon)
        with pytest.raises(GraphError):
            spec.iport(0)  # Beacon has no inputs
        with pytest.raises(GraphError):
            spec.oport(1)

    def test_connect_requires_correct_directions(self):
        g = LogicalGraph()
        a = g.add_operator("a", Beacon)
        b = g.add_operator("b", Sink)
        with pytest.raises(GraphError):
            g.connect(b.iport(0), a.oport(0))

    def test_duplicate_edge_rejected(self):
        g = LogicalGraph()
        a = g.add_operator("a", Beacon)
        b = g.add_operator("b", Sink)
        g.connect(a.oport(0), b.iport(0))
        with pytest.raises(GraphError):
            g.connect(a.oport(0), b.iport(0))

    def test_fan_out_and_fan_in_allowed(self):
        g = LogicalGraph()
        a = g.add_operator("a", Beacon)
        b = g.add_operator("b", Beacon)
        m = g.add_operator("m", Merge, params={"n_inputs": 2})
        s1 = g.add_operator("s1", Sink)
        s2 = g.add_operator("s2", Sink)
        g.connect(a.oport(0), m.iport(0))
        g.connect(b.oport(0), m.iport(1))
        g.connect(m.oport(0), s1.iport(0))
        g.connect(m.oport(0), s2.iport(0))
        assert len(g.edges) == 4

    def test_sources_and_sinks(self):
        g = LogicalGraph()
        a = g.add_operator("a", Beacon)
        s = g.add_operator("s", Sink)
        g.connect(a.oport(0), s.iport(0))
        assert g.sources() == [a]
        assert g.sinks() == [s]

    def test_up_and_downstream(self):
        g = LogicalGraph()
        a = g.add_operator("a", Beacon)
        f = g.add_operator("f", Functor, params={"fn": lambda t: t})
        s = g.add_operator("s", Sink)
        g.connect(a.oport(0), f.iport(0))
        g.connect(f.oport(0), s.iport(0))
        assert [e.dst.full_name for e in g.downstream_of(a)] == ["f"]
        assert [e.src.full_name for e in g.upstream_of(s)] == ["f"]


class TestValidation:
    def test_unconnected_input_rejected(self):
        g = LogicalGraph()
        g.add_operator("a", Beacon)
        g.add_operator("s", Sink)
        with pytest.raises(GraphError):
            g.validate()

    def test_unconnected_allowed_when_disabled(self):
        g = LogicalGraph()
        g.add_operator("s", Sink)
        g.validate(require_connected_inputs=False)

    def test_colocation_exlocation_conflict(self):
        g = LogicalGraph()
        a = g.add_operator("a", Beacon, partition="p", partition_exlocation="x")
        s = g.add_operator("s", Sink, partition="p", partition_exlocation="x")
        g.connect(a.oport(0), s.iport(0))
        with pytest.raises(GraphError):
            g.validate()


class TestComposites:
    def test_instantiation_creates_qualified_names(self):
        g = LogicalGraph()
        src = g.add_operator("src", Beacon)
        handle = g.instantiate(passthrough_composite(), "c1", inputs=[src.oport(0)])
        assert "c1.inner" in g.operators
        assert handle.instance.kind == "wrap"
        assert handle.instance.full_name == "c1"

    def test_two_instances_do_not_collide(self):
        g = LogicalGraph()
        s1 = g.add_operator("s1", Beacon)
        s2 = g.add_operator("s2", Beacon)
        g.instantiate(passthrough_composite(), "c1", inputs=[s1.oport(0)])
        g.instantiate(passthrough_composite(), "c2", inputs=[s2.oport(0)])
        assert "c1.inner" in g.operators and "c2.inner" in g.operators

    def test_duplicate_instance_name_rejected(self):
        g = LogicalGraph()
        s1 = g.add_operator("s1", Beacon)
        g.instantiate(passthrough_composite(), "c1", inputs=[s1.oport(0)])
        with pytest.raises(CompositeError):
            g.instantiate(passthrough_composite(), "c1", inputs=[s1.oport(0)])

    def test_input_arity_checked(self):
        g = LogicalGraph()
        with pytest.raises(CompositeError):
            g.instantiate(passthrough_composite(), "c1", inputs=[])

    def test_output_must_be_bound(self):
        def assemble(b):
            b.add_operator("inner", Sink)
            b.connect(b.input(0), b._graph.operator  # type: ignore
                      and None or None)  # never reached

        broken = CompositeDefinition(
            "broken",
            n_inputs=0,
            n_outputs=1,
            assemble=lambda b: b.add_operator("inner", Beacon),
        )
        g = LogicalGraph()
        with pytest.raises(CompositeError):
            g.instantiate(broken, "c")

    def test_double_output_binding_rejected(self):
        def assemble(b):
            inner = b.add_operator("inner", Beacon)
            b.bind_output(0, inner.oport(0))
            b.bind_output(0, inner.oport(0))

        broken = CompositeDefinition("b2", n_inputs=0, n_outputs=1, assemble=assemble)
        with pytest.raises(CompositeError):
            LogicalGraph().instantiate(broken, "c")

    def test_bind_output_rejects_input_port(self):
        def assemble(b):
            inner = b.add_operator("inner", Sink)
            b.connect(b.input(0), inner.iport(0))
            b.bind_output(0, inner.iport(0))

        broken = CompositeDefinition("b3", n_inputs=1, n_outputs=1, assemble=assemble)
        g = LogicalGraph()
        src = g.add_operator("src", Beacon)
        with pytest.raises(CompositeError):
            g.instantiate(broken, "c", inputs=[src.oport(0)])

    def test_input_placeholder_bounds_checked(self):
        def assemble(b):
            inner = b.add_operator("inner", Functor, params={"fn": lambda t: t})
            b.connect(b.input(5), inner.iport(0))
            b.bind_output(0, inner.oport(0))

        broken = CompositeDefinition("b4", n_inputs=1, n_outputs=1, assemble=assemble)
        g = LogicalGraph()
        src = g.add_operator("src", Beacon)
        with pytest.raises(CompositeError):
            g.instantiate(broken, "c", inputs=[src.oport(0)])

    def test_nested_composites(self):
        inner_def = passthrough_composite("inner_type")

        def outer_assemble(b):
            nested = b.instantiate(inner_def, "nest", inputs=[])
            # nested takes 1 input: wire composite input through
            # (re-do: inner requires input; use direct add instead)

        # Build a proper nested structure: outer contains `nest` (inner_type)
        def outer(b):
            filt = b.add_operator(
                "pre", Functor, params={"fn": lambda t: t}
            )
            b.connect(b.input(0), filt.iport(0))
            nested = b.instantiate(inner_def, "nest", inputs=[filt.oport(0)])
            b.bind_output(0, nested.output(0))

        outer_def = CompositeDefinition("outer_type", 1, 1, outer)
        g = LogicalGraph()
        src = g.add_operator("src", Beacon)
        handle = g.instantiate(outer_def, "o1", inputs=[src.oport(0)])
        sink = g.add_operator("sink", Sink)
        g.connect(handle.output(0), sink.iport(0))

        assert "o1.nest.inner" in g.operators
        chain = g.composite_chain("o1.nest.inner")
        assert [c.full_name for c in chain] == ["o1.nest", "o1"]
        assert g.composite_types_of("o1.nest.inner") == ["inner_type", "outer_type"]

    def test_operators_in_composite_includes_nested(self):
        inner_def = passthrough_composite("inner_type")

        def outer(b):
            nested = b.instantiate(inner_def, "nest", inputs=[])
            # inner requires an input; feed it from an internal source
            src = b.add_operator("gen", Beacon)
            # rewire: instantiate again properly
            b.bind_output(0, nested.output(0))

        # Simpler: outer with source feeding nested composite
        def outer2(b):
            src = b.add_operator("gen", Beacon)
            nested = b.instantiate(inner_def, "nest", inputs=[src.oport(0)])
            b.bind_output(0, nested.output(0))

        outer_def = CompositeDefinition("outer_type", 0, 1, outer2)
        g = LogicalGraph()
        handle = g.instantiate(outer_def, "o1")
        sink = g.add_operator("sink", Sink)
        g.connect(handle.output(0), sink.iport(0))
        names = {s.full_name for s in g.operators_in_composite("o1")}
        assert names == {"o1.gen", "o1.nest.inner"}
        nested_only = {s.full_name for s in g.operators_in_composite("o1.nest")}
        assert nested_only == {"o1.nest.inner"}

    def test_composite_handle_output_bounds(self):
        g = LogicalGraph()
        src = g.add_operator("src", Beacon)
        handle = g.instantiate(passthrough_composite(), "c1", inputs=[src.oport(0)])
        with pytest.raises(CompositeError):
            handle.output(3)

    def test_containment_chain_unknown_instance(self):
        with pytest.raises(CompositeError):
            containment_chain({}, "ghost")

    def test_negative_ports_rejected(self):
        with pytest.raises(CompositeError):
            CompositeDefinition("x", -1, 0, lambda b: None)
