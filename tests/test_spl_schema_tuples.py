"""Tests for tuple schemas and stream data items."""

import pytest

from repro.errors import SchemaError
from repro.spl.schema import ANY_SCHEMA, Attribute, TupleSchema
from repro.spl.tuples import FinalMarker, Punctuation, StreamTuple, WindowMarker


class TestSchema:
    def test_of_constructor(self):
        schema = TupleSchema.of(symbol=str, price=float)
        assert schema.names == ("symbol", "price")

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            TupleSchema([("a", int), ("a", str)])

    def test_invalid_identifier_rejected(self):
        with pytest.raises(SchemaError):
            TupleSchema([("not valid", int)])

    def test_unsupported_type_rejected(self):
        with pytest.raises(SchemaError):
            TupleSchema([("x", complex)])

    def test_contains(self):
        schema = TupleSchema.of(a=int)
        assert "a" in schema
        assert "b" not in schema

    def test_len(self):
        assert len(TupleSchema.of(a=int, b=str)) == 2

    def test_attribute_lookup(self):
        schema = TupleSchema.of(a=int)
        assert schema.attribute("a") == Attribute("a", int)
        with pytest.raises(SchemaError):
            schema.attribute("missing")

    def test_validate_accepts_matching(self):
        schema = TupleSchema.of(symbol=str, price=float)
        schema.validate({"symbol": "IBM", "price": 10.5})

    def test_validate_int_widens_to_float(self):
        TupleSchema.of(price=float).validate({"price": 10})

    def test_validate_rejects_missing(self):
        with pytest.raises(SchemaError):
            TupleSchema.of(a=int).validate({})

    def test_validate_rejects_wrong_type(self):
        with pytest.raises(SchemaError):
            TupleSchema.of(a=int).validate({"a": "str"})

    def test_validate_rejects_extra(self):
        with pytest.raises(SchemaError):
            TupleSchema.of(a=int).validate({"a": 1, "b": 2})

    def test_object_accepts_anything(self):
        ANY_SCHEMA.validate({"payload": object()})

    def test_equality_and_hash(self):
        a = TupleSchema.of(x=int)
        b = TupleSchema.of(x=int)
        c = TupleSchema.of(x=float)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c


class TestStreamTuple:
    def test_item_access(self):
        tup = StreamTuple({"a": 1, "b": "x"})
        assert tup["a"] == 1
        assert "b" in tup
        assert tup.get("missing", 9) == 9

    def test_with_values_copies(self):
        tup = StreamTuple({"a": 1})
        new = tup.with_values(a=2, b=3)
        assert new["a"] == 2 and new["b"] == 3
        assert tup["a"] == 1  # original untouched

    def test_project(self):
        tup = StreamTuple({"a": 1, "b": 2, "c": 3})
        assert tup.project("a", "c").values == {"a": 1, "c": 3}

    def test_equality_on_values(self):
        assert StreamTuple({"a": 1}) == StreamTuple({"a": 1})
        assert StreamTuple({"a": 1}) != StreamTuple({"a": 2})

    def test_hashable(self):
        assert len({StreamTuple({"a": 1}), StreamTuple({"a": 1})}) == 1

    def test_size_estimate_positive_and_monotone(self):
        small = StreamTuple({"a": 1})
        big = StreamTuple({"a": 1, "text": "x" * 1000})
        assert small.size_bytes >= StreamTuple.FRAME_OVERHEAD
        assert big.size_bytes > small.size_bytes + 900

    def test_size_estimate_covers_types(self):
        tup = StreamTuple(
            {
                "i": 1,
                "f": 1.5,
                "b": True,
                "s": "abc",
                "by": b"xyz",
                "l": [1, 2],
                "d": {"k": 1},
                "o": object(),
            }
        )
        assert tup.size_bytes > StreamTuple.FRAME_OVERHEAD

    def test_created_at_preserved_by_with_values(self):
        tup = StreamTuple({"a": 1}, created_at=7.5)
        assert tup.with_values(b=2).created_at == 7.5

    def test_repr_contains_values(self):
        assert "a=1" in repr(StreamTuple({"a": 1}))


class TestPunctuation:
    def test_markers(self):
        assert WindowMarker is Punctuation.WINDOW
        assert FinalMarker is Punctuation.FINAL

    def test_two_kinds_only(self):
        assert {p.value for p in Punctuation} == {"window", "final"}
