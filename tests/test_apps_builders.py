"""Tests that every paper application builds, validates, compiles, and
survives an ADL round trip."""

import pytest

from repro.apps.datastore import CauseModelStore, CorpusStore, ProfileDataStore
from repro.apps.figure2 import build_figure2_application
from repro.apps.sentiment import (
    build_embedded_adaptation_application,
    build_sentiment_application,
)
from repro.apps.socialmedia import (
    build_all_socialmedia_applications,
    build_c1_application,
    build_c2_application,
    build_c3_application,
)
from repro.apps.trend import build_trend_application
from repro.apps.workloads import ProfileWorkload, TradeWorkload, TweetWorkload
from repro.spl.adl import adl_model_of
from repro.spl.compiler import SPLCompiler


def all_paper_applications():
    corpus = CorpusStore()
    models = CauseModelStore()
    store = ProfileDataStore()
    apps = [
        build_figure2_application(),
        build_sentiment_application(TweetWorkload(), corpus, models),
        build_embedded_adaptation_application(
            TweetWorkload(), corpus, models, script=lambda: None
        ),
        build_trend_application(lambda: TradeWorkload()),
    ]
    apps.extend(build_all_socialmedia_applications(store).values())
    return apps


@pytest.mark.parametrize(
    "app", all_paper_applications(), ids=lambda a: a.name
)
class TestEveryApplication:
    def test_validates(self, app):
        app.validate()

    def test_compiles_manual(self, app):
        compiled = SPLCompiler("manual").compile(app)
        assert compiled.pes
        placed = {name for pe in compiled.pes for name in pe.operators}
        assert placed == set(app.graph.operators)

    def test_compiles_fused(self, app):
        compiled = SPLCompiler("fuse_all").compile(app)
        assert len(compiled.pes) == 1

    def test_adl_round_trip(self, app):
        compiled = SPLCompiler("manual").compile(app)
        model = adl_model_of(compiled)
        assert model.name == app.name
        assert {op.name for op in model.operators} == set(app.graph.operators)
        assert {c.name for c in model.composites} == set(
            app.graph.composite_instances
        )


class TestSpecificStructures:
    def test_sentiment_has_no_control_operators(self):
        app = build_sentiment_application(
            TweetWorkload(), CorpusStore(), CauseModelStore()
        )
        assert "op8" not in app.graph.operators
        assert "op9" not in app.graph.operators

    def test_embedded_variant_adds_control_operators(self):
        app = build_embedded_adaptation_application(
            TweetWorkload(), CorpusStore(), CauseModelStore(), script=lambda: None
        )
        assert "op8" in app.graph.operators
        assert "op9" in app.graph.operators
        # the control path hangs off the aggregation operator
        downstream = {
            e.dst.full_name
            for e in app.graph.downstream_of(app.graph.operator("op6"))
        }
        assert {"op7", "op8"} <= downstream

    def test_trend_partitions_isolate_feed_from_calc(self):
        app = build_trend_application(lambda: TradeWorkload())
        compiled = SPLCompiler("manual").compile(app)
        assert compiled.pe_of("feed") != compiled.pe_of("calc")
        assert compiled.pe_of("calc") == compiled.pe_of("out")

    def test_c1_exports_c2_imports_match(self):
        c1 = build_c1_application("C1App", ProfileWorkload())
        c2 = build_c2_application("C2App", "x", ProfileDataStore())
        export = c1.export_specs()[0]
        import_ = c2.import_specs()[0]
        # subset semantics: the C2 subscription selects the C1 properties
        assert all(
            export["properties"].get(k) == v
            for k, v in import_["subscription"].items()
        )

    def test_c3_requires_attribute_parameter(self):
        from repro.errors import GraphError

        app = build_c3_application(ProfileDataStore())
        with pytest.raises(GraphError):
            app.resolve_parameters({})
        assert app.resolve_parameters({"attribute": "age"}) == {
            "attribute": "age"
        }

    def test_six_socialmedia_apps(self):
        apps = build_all_socialmedia_applications(ProfileDataStore())
        assert sorted(apps) == [
            "AttributeAggregator", "BlogQuery", "FacebookQuery",
            "MySpaceStreamReader", "TwitterQuery", "TwitterStreamReader",
        ]
