"""Tests for the compiler (PE partitioning) and the ADL document."""

import pytest

from repro.errors import ADLError, CompilationError, ConstraintError, GraphError
from repro.spl.adl import adl_from_xml, adl_model_of
from repro.spl.application import Application
from repro.spl.compiler import SPLCompiler
from repro.spl.hostpool import HostPool
from repro.spl.library import Beacon, Export, Filter, Functor, Import, Sink

from repro.apps.figure2 import build_figure2_application, expected_figure3_layout


def chain_app(name="Chain", tags=(None, None, None)):
    app = Application(name)
    g = app.graph
    src = g.add_operator("src", Beacon, partition=tags[0])
    mid = g.add_operator(
        "mid", Functor, params={"fn": lambda t: t}, partition=tags[1]
    )
    sink = g.add_operator("sink", Sink, partition=tags[2])
    g.connect(src.oport(0), mid.iport(0))
    g.connect(mid.oport(0), sink.iport(0))
    return app


class TestStrategies:
    def test_unknown_strategy(self):
        with pytest.raises(CompilationError):
            SPLCompiler("fancy")

    def test_balanced_needs_target(self):
        with pytest.raises(CompilationError):
            SPLCompiler("balanced")

    def test_manual_untagged_get_singleton_pes(self):
        compiled = SPLCompiler("manual").compile(chain_app())
        assert len(compiled.pes) == 3

    def test_manual_tags_fuse(self):
        compiled = SPLCompiler("manual").compile(chain_app(tags=("a", "a", "b")))
        assert len(compiled.pes) == 2
        assert set(compiled.pe(1).operators) == {"src", "mid"}

    def test_per_operator_ignores_tags(self):
        compiled = SPLCompiler("per_operator").compile(
            chain_app(tags=("a", "a", "a"))
        )
        assert len(compiled.pes) == 3

    def test_fuse_all(self):
        compiled = SPLCompiler("fuse_all").compile(chain_app())
        assert len(compiled.pes) == 1
        assert len(compiled.inter_pe_edges) == 0
        assert len(compiled.intra_pe_edges) == 2

    def test_balanced_respects_target(self):
        compiled = SPLCompiler("balanced", target_pe_count=2).compile(chain_app())
        assert len(compiled.pes) == 2

    def test_balanced_weights_by_cost(self):
        app = Application("Weighted")
        g = app.graph
        heavy = g.add_operator("heavy", Beacon, params={"cost": 10.0})
        light1 = g.add_operator("l1", Sink, params={"cost": 1.0})
        light2 = g.add_operator("l2", Sink, params={"cost": 1.0})
        g.connect(heavy.oport(0), light1.iport(0))
        g.connect(heavy.oport(0), light2.iport(0))
        compiled = SPLCompiler("balanced", target_pe_count=2).compile(app)
        heavy_pe = compiled.pe(compiled.pe_of("heavy"))
        # the two light ops share the other PE
        assert len(heavy_pe.operators) == 1

    def test_pe_numbering_deterministic(self):
        a = SPLCompiler("manual").compile(chain_app())
        b = SPLCompiler("manual").compile(chain_app())
        assert [pe.operators for pe in a.pes] == [pe.operators for pe in b.pes]

    def test_inter_vs_intra_edges(self):
        compiled = SPLCompiler("manual").compile(chain_app(tags=("a", "a", "b")))
        assert len(compiled.intra_pe_edges) == 1  # src->mid fused
        assert len(compiled.inter_pe_edges) == 1  # mid->sink crosses

    def test_pe_of_unknown_operator(self):
        compiled = SPLCompiler("manual").compile(chain_app())
        with pytest.raises(CompilationError):
            compiled.pe_of("ghost")

    def test_pe_lookup_unknown_index(self):
        compiled = SPLCompiler("manual").compile(chain_app())
        with pytest.raises(CompilationError):
            compiled.pe(99)


class TestConstraints:
    def test_fused_ops_with_conflicting_pools_rejected(self):
        app = Application("Pools")
        app.add_host_pool(HostPool("pa"))
        app.add_host_pool(HostPool("pb"))
        g = app.graph
        a = g.add_operator("a", Beacon, partition="p", host_pool="pa")
        s = g.add_operator("s", Sink, partition="p", host_pool="pb")
        g.connect(a.oport(0), s.iport(0))
        with pytest.raises(ConstraintError):
            SPLCompiler("manual").compile(app)

    def test_partition_exlocation_within_group_rejected(self):
        app = Application("Exloc")
        g = app.graph
        a = g.add_operator("a", Beacon, partition="p", partition_exlocation="x")
        s = g.add_operator("s", Sink, partition="p", partition_exlocation="x")
        g.connect(a.oport(0), s.iport(0))
        with pytest.raises((ConstraintError, GraphError)):
            SPLCompiler("manual").compile(app)

    def test_balanced_honours_exlocation(self):
        app = Application("ExlocBalanced")
        g = app.graph
        a = g.add_operator("a", Beacon, partition_exlocation="x")
        s = g.add_operator("s", Sink, partition_exlocation="x")
        g.connect(a.oport(0), s.iport(0))
        compiled = SPLCompiler("balanced", target_pe_count=2).compile(app)
        assert compiled.pe_of("a") != compiled.pe_of("s")

    def test_pe_inherits_placement_needs(self):
        app = Application("Placement")
        app.add_host_pool(HostPool("fast", tags=("ssd",)))
        g = app.graph
        a = g.add_operator(
            "a", Beacon, partition="p", host_pool="fast", host_exlocation="hx"
        )
        s = g.add_operator("s", Sink, partition="p", host_colocation="hc")
        g.connect(a.oport(0), s.iport(0))
        compiled = SPLCompiler("manual").compile(app)
        pe = compiled.pe(1)
        assert pe.host_pool == "fast"
        assert pe.host_exlocations == {"hx"}
        assert pe.host_colocations == {"hc"}

    def test_undeclared_pool_reference_rejected(self):
        app = Application("BadPool")
        g = app.graph
        a = g.add_operator("a", Beacon, host_pool="ghost")
        s = g.add_operator("s", Sink)
        g.connect(a.oport(0), s.iport(0))
        with pytest.raises(GraphError):
            SPLCompiler("manual").compile(app)


class TestFigure23:
    def test_layout_matches_paper(self):
        compiled = SPLCompiler("manual").compile(build_figure2_application())
        layout = {pe.index: pe.operators for pe in compiled.pes}
        assert layout == expected_figure3_layout()

    def test_composites_span_pes(self):
        """Fig. 3: operators of the same composite land in different PEs."""
        compiled = SPLCompiler("manual").compile(build_figure2_application())
        c1_pes = {
            compiled.pe_of(name)
            for name in compiled.placement
            if name.startswith("c1.")
        }
        assert len(c1_pes) == 2

    def test_pe_mixes_composite_instances(self):
        """Fig. 3: one PE holds operators of both composite instances."""
        compiled = SPLCompiler("manual").compile(build_figure2_application())
        shared = compiled.pe(2).operators
        assert any(n.startswith("c1.") for n in shared)
        assert any(n.startswith("c2.") for n in shared)


class TestADL:
    def build(self):
        app = Application("AdlApp")
        app.add_host_pool(HostPool("pool1", hosts=("h1", "h2"), size=2))
        app.add_host_pool(HostPool("tagged", tags=("gpu",), exclusive=True))
        g = app.graph
        src = g.add_operator(
            "src", Beacon, params={"values": {"a": 1}, "period": 2.0},
            partition="p1", host_pool="pool1",
        )
        filt = g.add_operator(
            "filt", Filter, params={"predicate": lambda t: True}, partition="p1"
        )
        exp = g.add_operator("exp", Export, params={"stream_id": "out",
                                                    "properties": {"k": "v"}})
        imp = g.add_operator("imp", Import, params={"subscription": {"k": "v"}})
        sink = g.add_operator("sink", Sink)
        g.connect(src.oport(0), filt.iport(0))
        g.connect(filt.oport(0), exp.iport(0))
        g.connect(imp.oport(0), sink.iport(0))
        return SPLCompiler("manual").compile(app)

    def test_round_trip_structure(self):
        compiled = self.build()
        model = adl_model_of(compiled)
        assert model.name == "AdlApp"
        assert {op.name for op in model.operators} == {
            "src", "filt", "exp", "imp", "sink"
        }
        assert model.operator_by_name("src").pe_index == compiled.pe_of("src")
        assert model.operator_by_name("filt").kind == "Filter"

    def test_params_serialized_json_or_opaque(self):
        model = adl_model_of(self.build())
        src = model.operator_by_name("src")
        assert src.params["values"] == {"a": 1}
        assert src.params["period"] == 2.0
        filt = model.operator_by_name("filt")
        assert "opaque" in filt.params["predicate"]  # callable: marked opaque

    def test_host_pools_round_trip(self):
        model = adl_model_of(self.build())
        pools = {p.name: p for p in model.host_pools}
        assert pools["pool1"].hosts == ["h1", "h2"]
        assert pools["pool1"].size == 2
        assert pools["tagged"].exclusive is True
        assert pools["tagged"].tags == ["gpu"]
        assert pools["tagged"].to_host_pool().exclusive is True

    def test_streams_round_trip(self):
        compiled = self.build()
        model = adl_model_of(compiled)
        pairs = {(s.src_operator, s.dst_operator) for s in model.streams}
        assert ("src", "filt") in pairs
        assert ("imp", "sink") in pairs

    def test_exports_imports_round_trip(self):
        model = adl_model_of(self.build())
        assert model.exports[0].operator == "exp"
        assert model.exports[0].stream_id == "out"
        assert model.exports[0].properties == {"k": "v"}
        assert model.imports[0].subscription == {"k": "v"}

    def test_composites_round_trip(self):
        compiled = SPLCompiler("manual").compile(build_figure2_application())
        model = adl_model_of(compiled)
        comps = {c.name: c for c in model.composites}
        assert comps["c1"].kind == "composite1"
        assert comps["c1"].parent is None
        ops_in_c1 = [o for o in model.operators if o.composite == "c1"]
        assert len(ops_in_c1) == 4

    def test_malformed_xml_rejected(self):
        with pytest.raises(ADLError):
            adl_from_xml("<not-closed")

    def test_wrong_root_rejected(self):
        with pytest.raises(ADLError):
            adl_from_xml("<foo/>")

    def test_missing_name_rejected(self):
        with pytest.raises(ADLError):
            adl_from_xml("<application/>")

    def test_operator_by_name_missing(self):
        model = adl_model_of(self.build())
        with pytest.raises(ADLError):
            model.operator_by_name("ghost")


class TestApplication:
    def test_invalid_name(self):
        with pytest.raises(GraphError):
            Application("bad name")

    def test_parameter_defaults(self):
        app = Application("P")
        app.declare_parameter("x", "1")
        app.declare_parameter("y")
        resolved = app.resolve_parameters({"y": "2"})
        assert resolved == {"x": "1", "y": "2"}

    def test_required_parameter_missing(self):
        app = Application("P")
        app.declare_parameter("y")
        with pytest.raises(GraphError):
            app.resolve_parameters({})

    def test_unknown_parameter_rejected(self):
        app = Application("P")
        with pytest.raises(GraphError):
            app.resolve_parameters({"zzz": "1"})

    def test_duplicate_pool_rejected(self):
        app = Application("P")
        app.add_host_pool(HostPool("a"))
        with pytest.raises(ValueError):
            app.add_host_pool(HostPool("a"))
