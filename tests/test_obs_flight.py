"""Tests for the flight recorder's bounded rings: wraparound ordering
and eviction determinism on overflow, per-job ring isolation, and the
byte-stable dump render at exactly the ring-capacity boundary."""

from repro.obs.flight import FlightDump, FlightRecorder
from repro.obs.trace import CONTROL, Span


def span(i, job="job_0"):
    """A point span at t=i with a deterministic name and job ring."""
    return Span(
        f"step:{i:03d}", CONTROL, float(i), float(i), (("job", job),)
    )


class TestRingWraparound:
    def test_overflow_keeps_the_newest_spans(self):
        recorder = FlightRecorder(capacity=4)
        for i in range(10):
            recorder.record(span(i))
        assert recorder.span_count("job_0") == 4
        dump = recorder.dump("overflow", 10.0, job_id="job_0")
        assert [s.name for s in dump.entries] == [
            "step:006", "step:007", "step:008", "step:009",
        ]

    def test_dump_at_exact_capacity_boundary(self):
        """Exactly ``capacity`` spans: nothing evicted, and the render
        is byte-stable (the wraparound edge case the ring must get
        right — one more span would evict step:000)."""
        recorder = FlightRecorder(capacity=4)
        for i in range(4):
            recorder.record(span(i))
        assert recorder.span_count("job_0") == 4
        text = recorder.dump("boundary", 4.0, job_id="job_0").render()
        assert text == (
            "# flight-recorder dump\n"
            "# reason: boundary\n"
            "# scope: job_0\n"
            "# sim_time: 4.000000\n"
            "# entries: 4\n"
            "[    0.000000 ..     0.000000] control step:000 job=job_0\n"
            "[    1.000000 ..     1.000000] control step:001 job=job_0\n"
            "[    2.000000 ..     2.000000] control step:002 job=job_0\n"
            "[    3.000000 ..     3.000000] control step:003 job=job_0\n"
        )
        # the very next span evicts the oldest, not anything else
        recorder.record(span(4))
        dump = recorder.dump("one-over", 5.0, job_id="job_0")
        assert [s.name for s in dump.entries] == [
            "step:001", "step:002", "step:003", "step:004",
        ]

    def test_eviction_is_deterministic(self):
        """Two recorders fed the same overflowing stream retain the
        same spans and render identical dumps."""

        def build():
            recorder = FlightRecorder(capacity=8)
            for i in range(30):
                recorder.record(span(i))
            return recorder.dump("same", 30.0, job_id="job_0").render()

        assert build() == build()

    def test_rings_evict_per_job(self):
        """Overflowing one job's ring never evicts another job's spans
        or the system ring."""
        recorder = FlightRecorder(capacity=2)
        recorder.record(Span("system", CONTROL, 0.0, 0.0))
        recorder.record(span(1, job="job_a"))
        for i in range(2, 7):
            recorder.record(span(i, job="job_b"))
        assert recorder.span_count("job_a") == 1
        assert recorder.span_count("job_b") == 2
        assert recorder.span_count() == 4
        dump = recorder.dump("scoped", 7.0, job_id="job_a")
        assert [s.name for s in dump.entries] == ["system", "step:001"]

    def test_unsorted_arrivals_render_in_time_order(self):
        """Dumps sort on sim time, so a ring holding out-of-order
        arrivals (late control events) still renders chronologically."""
        recorder = FlightRecorder(capacity=4)
        for i in (3, 1, 2, 0):
            recorder.record(span(i))
        dump = recorder.dump("sorted", 4.0, job_id="job_0")
        assert [s.start for s in dump.entries] == [0.0, 1.0, 2.0, 3.0]

    def test_dump_retention_is_bounded(self):
        recorder = FlightRecorder(capacity=4, max_dumps=2)
        for i in range(5):
            recorder.dump(f"d{i}", float(i))
        assert [d.reason for d in recorder.dumps] == ["d3", "d4"]
        assert all(isinstance(d, FlightDump) for d in recorder.dumps)
