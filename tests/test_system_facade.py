"""Tests for the SystemS facade, configs, and multi-orchestrator setups."""

from repro import (
    Host,
    ManagedApplication,
    Orchestrator,
    OrcaDescriptor,
    SystemConfig,
    SystemS,
)
from repro.orca.scopes import PEFailureScope
from repro.runtime.job import JobState

from tests.conftest import make_linear_app


class TestConstruction:
    def test_int_hosts_get_names(self):
        system = SystemS(hosts=3)
        assert sorted(system.hcs) == ["host1", "host2", "host3"]

    def test_explicit_hosts(self):
        system = SystemS(hosts=[Host("a", tags=("gpu",)), Host("b")])
        assert set(system.hcs) == {"a", "b"}
        assert system.srm.host("a").tags == frozenset({"gpu"})

    def test_config_propagates(self):
        config = SystemConfig(metric_push_interval=1.0, pe_restart_delay=9.0)
        system = SystemS(hosts=2, config=config)
        assert system.hcs["host1"].metric_push_interval == 1.0
        assert system.sam.pe_restart_delay == 9.0

    def test_now_and_run(self):
        system = SystemS(hosts=1)
        system.run_for(5.0)
        assert system.now == 5.0
        system.run_until(8.0)
        assert system.now == 8.0

    def test_compile_strategies(self):
        system = SystemS(hosts=1)
        app = make_linear_app()
        compiled = system.compile(app, strategy="fuse_all")
        assert len(compiled.pes) == 1

    def test_submit_accepts_compiled_or_application(self):
        system = SystemS(hosts=2)
        app = make_linear_app("A")
        job1 = system.submit_job(app)
        compiled = system.compile(make_linear_app("B"))
        job2 = system.submit_job(compiled)
        system.run_for(1.0)
        assert job1.is_running and job2.is_running


class TestDeterminism:
    def scenario(self):
        system = SystemS(hosts=4, seed=7)
        job = system.submit_job(make_linear_app(per_tick=3, period=0.5))
        system.run_for(20.0)
        system.failures.crash_pe(job.job_id, pe_index=1)
        system.run_for(20.0)
        sink = job.operator_instance("sink")
        return (
            len(sink.seen) if sink else -1,
            system.kernel.events_processed,
            system.transport.total_delivered,
        )

    def test_identical_runs(self):
        assert self.scenario() == self.scenario()


class RestartingOrca(Orchestrator):
    def __init__(self, app_name):
        super().__init__()
        self.app_name = app_name
        self.failures = []
        self.job = None

    def handleOrcaStart(self, context):
        self.orca.registerEventScope(
            PEFailureScope("f").addApplicationFilter(self.app_name)
        )
        self.job = self.orca.submit_application(self.app_name)

    def handlePEFailureEvent(self, context, scopes):
        self.failures.append(context.pe_id)
        self.orca.restart_pe(context.pe_id)


class TestMultipleOrchestrators:
    def test_isolated_event_routing(self):
        """Each ORCA service only sees failures of its own jobs."""
        system = SystemS(hosts=4)
        logic_a = RestartingOrca("A")
        logic_b = RestartingOrca("B")
        system.submit_orchestrator(
            OrcaDescriptor(
                name="OA",
                logic=lambda: logic_a,
                applications=[
                    ManagedApplication(name="A", application=make_linear_app("A"))
                ],
            )
        )
        system.submit_orchestrator(
            OrcaDescriptor(
                name="OB",
                logic=lambda: logic_b,
                applications=[
                    ManagedApplication(name="B", application=make_linear_app("B"))
                ],
            )
        )
        system.run_for(2.0)
        system.failures.crash_pe(logic_a.job.job_id, pe_index=1)
        system.run_for(5.0)
        assert len(logic_a.failures) == 1
        assert logic_b.failures == []

    def test_orca_ids_unique(self):
        system = SystemS(hosts=2)
        s1 = system.submit_orchestrator(
            OrcaDescriptor(name="O1", logic=Orchestrator, applications=[])
        )
        s2 = system.submit_orchestrator(
            OrcaDescriptor(name="O2", logic=Orchestrator, applications=[])
        )
        assert s1.orca_id != s2.orca_id
        assert set(system.orcas) == {s1.orca_id, s2.orca_id}

    def test_cancel_orchestrator_stops_polling(self):
        system = SystemS(hosts=2)
        logic = RestartingOrca("A")
        service = system.submit_orchestrator(
            OrcaDescriptor(
                name="O",
                logic=lambda: logic,
                applications=[
                    ManagedApplication(name="A", application=make_linear_app("A"))
                ],
                metric_poll_interval=1.0,
            )
        )
        system.run_for(5.0)
        epochs_before = service.metric_epochs.current
        system.cancel_orchestrator(service.orca_id)
        system.run_for(10.0)
        assert service.metric_epochs.current == epochs_before
        assert service.orca_id not in system.orcas

    def test_orchestrated_and_plain_jobs_coexist(self):
        system = SystemS(hosts=4)
        logic = RestartingOrca("A")
        system.submit_orchestrator(
            OrcaDescriptor(
                name="O",
                logic=lambda: logic,
                applications=[
                    ManagedApplication(name="A", application=make_linear_app("A"))
                ],
            )
        )
        plain = system.submit_job(make_linear_app("B"))
        system.run_for(2.0)
        assert logic.job.state is JobState.RUNNING
        assert plain.state is JobState.RUNNING
        assert plain.owner_orca is None
        assert logic.job.owner_orca is not None
