"""Tests for the OrcaService: delivery, matching, actuation, inspection."""

import pytest

from repro import ManagedApplication, Orchestrator, OrcaDescriptor
from repro.errors import ActuationError, OrcaPermissionError, ScopeError
from repro.orca.scopes import (
    JobCancellationScope,
    JobSubmissionScope,
    OperatorMetricScope,
    OperatorPortMetricScope,
    PEFailureScope,
    PEMetricScope,
    TimerScope,
    UserEventScope,
)
from repro.runtime.pe import PEState

from tests.conftest import make_filter_app, make_linear_app


class RecordingOrca(Orchestrator):
    """Registers configurable scopes and records every delivery."""

    def __init__(self, scopes=(), submit=("Linear",)):
        super().__init__()
        self.scopes_to_register = list(scopes)
        self.apps_to_submit = list(submit)
        self.received = []
        self.jobs = []

    def handleOrcaStart(self, context):
        self.received.append(("start", context))
        for scope in self.scopes_to_register:
            self.orca.register_event_scope(scope)
        for app_name in self.apps_to_submit:
            self.jobs.append(self.orca.submit_application(app_name))

    def handleOperatorMetricEvent(self, context, scopes):
        self.received.append(("op_metric", context, scopes))

    def handleOperatorPortMetricEvent(self, context, scopes):
        self.received.append(("port_metric", context, scopes))

    def handlePEMetricEvent(self, context, scopes):
        self.received.append(("pe_metric", context, scopes))

    def handlePEFailureEvent(self, context, scopes):
        self.received.append(("pe_failure", context, scopes))

    def handleJobSubmissionEvent(self, context, scopes):
        self.received.append(("submission", context, scopes))

    def handleJobCancellationEvent(self, context, scopes):
        self.received.append(("cancellation", context, scopes))

    def handleTimerEvent(self, context, scopes):
        self.received.append(("timer", context, scopes))

    def handleUserEvent(self, context, scopes):
        self.received.append(("user", context, scopes))

    def events(self, kind):
        return [r for r in self.received if r[0] == kind]


def submit_orca(system, logic, apps=None, poll=15.0):
    apps = apps if apps is not None else [make_linear_app()]
    descriptor = OrcaDescriptor(
        name="TestOrca",
        logic=lambda: logic,
        applications=[
            ManagedApplication(name=a.name, application=a) for a in apps
        ],
        metric_poll_interval=poll,
    )
    return system.submit_orchestrator(descriptor)


class TestStartAndDelivery:
    def test_start_event_always_delivered(self, system):
        logic = RecordingOrca(submit=())
        submit_orca(system, logic)
        system.run_for(0.1)
        assert logic.events("start")

    def test_events_without_matching_scope_dropped(self, system):
        logic = RecordingOrca(scopes=(), submit=("Linear",))
        service = submit_orca(system, logic)
        system.run_for(40.0)
        assert not logic.events("op_metric")
        assert service.queue.dropped_count > 0

    def test_metric_events_delivered_with_epoch(self, system):
        scope = OperatorMetricScope("m").addOperatorMetric("nTuplesProcessed")
        logic = RecordingOrca(scopes=[scope])
        submit_orca(system, logic)
        system.run_for(31.0)
        events = logic.events("op_metric")
        assert events
        epochs = {e[1].epoch for e in events}
        assert epochs == {1, 2}  # two poll rounds
        assert all(e[2] == ["m"] for e in events)

    def test_all_matching_scope_keys_delivered_once(self, system):
        s1 = OperatorMetricScope("a").addOperatorMetric("nTuplesProcessed")
        s2 = OperatorMetricScope("b").addOperatorInstanceFilter("sink")
        logic = RecordingOrca(scopes=[s1, s2])
        submit_orca(system, logic)
        system.run_for(16.0)
        sink_events = [
            e for e in logic.events("op_metric")
            if e[1].instance_name == "sink" and e[1].metric == "nTuplesProcessed"
        ]
        assert len(sink_events) == 1  # delivered once ...
        assert sorted(sink_events[0][2]) == ["a", "b"]  # ... with both keys

    def test_port_metric_events(self, system):
        scope = OperatorPortMetricScope("p").addOperatorMetric("queueSize")
        logic = RecordingOrca(scopes=[scope])
        submit_orca(system, logic)
        system.run_for(16.0)
        events = logic.events("port_metric")
        assert events
        assert all(e[1].port == 0 for e in events)

    def test_pe_metric_events(self, system):
        scope = PEMetricScope("pe").addPEMetric("nTuplesProcessed")
        logic = RecordingOrca(scopes=[scope])
        submit_orca(system, logic)
        system.run_for(16.0)
        assert logic.events("pe_metric")

    def test_fifo_one_at_a_time(self, system):
        """Sec. 4.2: queued in the order they were received."""
        scope = OperatorMetricScope("m").addOperatorMetric("nTuplesProcessed")
        logic = RecordingOrca(scopes=[scope])
        submit_orca(system, logic)
        system.run_for(46.0)
        epochs = [e[1].epoch for e in logic.events("op_metric")]
        assert epochs == sorted(epochs)

    def test_handler_errors_isolated(self, system):
        class Exploding(RecordingOrca):
            def handleOperatorMetricEvent(self, context, scopes):
                raise RuntimeError("user bug")

        scope = OperatorMetricScope("m").addOperatorMetric("nTuplesProcessed")
        logic = Exploding(scopes=[scope])
        service = submit_orca(system, logic)
        system.run_for(31.0)
        assert service.handler_errors
        # service survives: further polls continue
        assert service.metric_epochs.current >= 2

    def test_poll_interval_change_takes_effect(self, system):
        scope = OperatorMetricScope("m").addOperatorMetric("nTuplesProcessed")
        logic = RecordingOrca(scopes=[scope])
        service = submit_orca(system, logic, poll=15.0)
        system.run_for(16.0)
        before = service.metric_epochs.current
        service.set_metric_poll_interval(1.0)
        system.run_for(10.0)
        assert service.metric_epochs.current >= before + 9

    def test_poll_interval_must_be_positive(self, system):
        service = submit_orca(system, RecordingOrca(submit=()))
        with pytest.raises(ActuationError):
            service.set_metric_poll_interval(0)

    def test_duplicate_scope_key_rejected(self, system):
        service = submit_orca(system, RecordingOrca(submit=()))
        service.register_event_scope(OperatorMetricScope("k"))
        with pytest.raises(ScopeError):
            service.registerEventScope(OperatorMetricScope("k"))

    def test_unregister_scope_stops_delivery(self, system):
        scope = OperatorMetricScope("m").addOperatorMetric("nTuplesProcessed")
        logic = RecordingOrca(scopes=[scope])
        service = submit_orca(system, logic)
        system.run_for(16.0)
        count = len(logic.events("op_metric"))
        assert count > 0
        service.unregister_event_scope("m")
        system.run_for(30.0)
        assert len(logic.events("op_metric")) == count


class TestFailureEvents:
    def test_pe_failure_pushed_with_context(self, system):
        scope = PEFailureScope("f").addApplicationFilter("Linear")
        logic = RecordingOrca(scopes=[scope])
        service = submit_orca(system, logic)
        system.run_for(5.0)
        job = logic.jobs[0]
        victim = job.pe_of_operator("sink")
        system.failures.crash_pe(job.job_id, pe_id=victim.pe_id)
        system.run_for(1.0)
        events = logic.events("pe_failure")
        assert len(events) == 1
        context = events[0][1]
        assert context.pe_id == victim.pe_id
        assert context.reason == "injected_fault"
        assert context.job_id == job.job_id
        assert "sink" in context.operators
        assert context.detection_ts <= system.now

    def test_host_failure_groups_epochs(self, system):
        scope = PEFailureScope("f")
        logic = RecordingOrca(scopes=[scope], submit=("Linear", "Linear"))
        # two jobs of the same app; pick a host running PEs of both
        service = submit_orca(system, logic)
        system.run_for(5.0)
        host = logic.jobs[0].pes[0].host_name
        system.failures.fail_host(host)
        system.run_for(10.0)
        events = logic.events("pe_failure")
        assert events
        assert {e[1].reason for e in events} == {"host_failure"}
        assert len({e[1].epoch for e in events}) == 1  # same physical event

    def test_failure_of_foreign_job_not_delivered(self, system):
        scope = PEFailureScope("f")
        logic = RecordingOrca(scopes=[scope], submit=())
        submit_orca(system, logic)
        foreign = system.submit_job(make_filter_app())
        system.run_for(5.0)
        system.failures.crash_pe(foreign.job_id, pe_index=1)
        system.run_for(5.0)
        assert not logic.events("pe_failure")


class TestActuation:
    def test_submission_and_cancellation_events(self, system):
        scopes = [JobSubmissionScope("s"), JobCancellationScope("c")]
        logic = RecordingOrca(scopes=scopes)
        service = submit_orca(system, logic)
        system.run_for(1.0)
        assert len(logic.events("submission")) == 1
        service.cancel_job(logic.jobs[0].job_id)
        system.run_for(1.0)
        cancels = logic.events("cancellation")
        assert len(cancels) == 1
        assert cancels[0][1].garbage_collected is False

    def test_acting_on_foreign_job_is_error(self, system):
        """Sec. 3: acting on jobs the ORCA did not start is a runtime error."""
        logic = RecordingOrca(submit=())
        service = submit_orca(system, logic)
        foreign = system.submit_job(make_filter_app())
        system.run_for(1.0)
        with pytest.raises(OrcaPermissionError):
            service.cancel_job(foreign.job_id)
        with pytest.raises(OrcaPermissionError):
            service.job(foreign.job_id)

    def test_submitting_unmanaged_app_is_error(self, system):
        from repro.errors import DescriptorError

        logic = RecordingOrca(submit=())
        service = submit_orca(system, logic)
        with pytest.raises(DescriptorError):
            service.submit_application("NotManaged")

    def test_restart_pe_through_service(self, system):
        logic = RecordingOrca()
        service = submit_orca(system, logic)
        system.run_for(2.0)
        job = logic.jobs[0]
        victim = job.pes[0]
        victim.crash("t")
        service.restart_pe(victim.pe_id)
        system.run_for(2.0)
        assert victim.state is PEState.RUNNING

    def test_stop_pe_through_service(self, system):
        logic = RecordingOrca()
        service = submit_orca(system, logic)
        system.run_for(2.0)
        victim = logic.jobs[0].pes[0]
        service.stop_pe(victim.pe_id)
        assert victim.state is PEState.STOPPED

    def test_send_control_through_service(self, system):
        app = make_filter_app(threshold=10_000)
        logic = RecordingOrca(submit=("Filtered",))
        service = submit_orca(system, logic, apps=[app])
        system.run_for(3.0)
        job = logic.jobs[0]
        service.send_control(
            job.job_id, "filt", "setPredicate", {"predicate": lambda t: True}
        )
        system.run_for(5.0)
        assert len(job.operator_instance("sink").seen) > 0

    def test_exclusive_pools_before_submit_only(self, system):
        logic = RecordingOrca()  # submits Linear during start
        service = submit_orca(system, logic)
        system.run_for(1.0)
        with pytest.raises(ActuationError):
            service.set_exclusive_host_pools("Linear")

    def test_run_external_with_completion(self, system):
        logic = RecordingOrca(submit=())
        service = submit_orca(system, logic)
        done = []
        service.run_external(lambda: 42, duration=5.0, on_complete=done.append)
        system.run_for(4.0)
        assert done == []
        system.run_for(1.1)
        assert done == [42]

    def test_actuation_log_records_txn_ids(self, system):
        """Sec. 7 future work: actuations tied to event transaction ids."""
        scope = PEFailureScope("f")

        class Restarter(RecordingOrca):
            def handlePEFailureEvent(self, context, scopes):
                self.orca.restart_pe(context.pe_id)

        logic = Restarter(scopes=[scope])
        service = submit_orca(system, logic)
        system.run_for(2.0)
        job = logic.jobs[0]
        system.failures.crash_pe(job.job_id, pe_id=job.pes[0].pe_id)
        system.run_for(2.0)
        restarts = [r for r in service.actuation_log if r.action == "restart_pe"]
        assert restarts and restarts[0].txn_id > 0
        submits = [r for r in service.actuation_log if r.action == "submit"]
        assert submits  # submitted during start handling => txn of start event


class TestTimersAndUserEvents:
    def test_timer_event(self, system):
        scope = TimerScope("t")
        logic = RecordingOrca(scopes=[scope], submit=())
        service = submit_orca(system, logic)
        system.run_for(0.1)
        service.create_timer(5.0, payload={"note": "check"})
        system.run_for(5.1)
        events = logic.events("timer")
        assert len(events) == 1
        assert events[0][1].payload == {"note": "check"}

    def test_periodic_timer(self, system):
        scope = TimerScope("t")
        logic = RecordingOrca(scopes=[scope], submit=())
        service = submit_orca(system, logic)
        system.run_for(0.1)
        handle = service.create_timer(2.0, periodic=True)
        system.run_for(7.0)
        assert len(logic.events("timer")) == 3
        handle.cancel()
        system.run_for(10.0)
        assert len(logic.events("timer")) == 3

    def test_timer_filter(self, system):
        scope = TimerScope("t").addTimerFilter("special")
        logic = RecordingOrca(scopes=[scope], submit=())
        service = submit_orca(system, logic)
        system.run_for(0.1)
        service.create_timer(1.0, timer_id="special")
        service.create_timer(1.0, timer_id="other")
        system.run_for(2.0)
        assert len(logic.events("timer")) == 1

    def test_user_event_via_command_tool(self, system):
        scope = UserEventScope("u").addNameFilter("failover")
        logic = RecordingOrca(scopes=[scope], submit=())
        service = submit_orca(system, logic)
        system.run_for(0.1)
        service.command_tool.submit_event("failover", {"target": "r2"})
        service.command_tool.submit_event("ignored", {})
        system.run_for(0.1)
        events = logic.events("user")
        assert len(events) == 1
        assert events[0][1].payload == {"target": "r2"}

    def test_command_tool_poll_override(self, system):
        service = submit_orca(system, RecordingOrca(submit=()))
        service.command_tool.set_metric_poll_interval(2.0)
        assert service.metric_poll_interval == 2.0


class TestInspectionDelegation:
    def test_inspection_queries(self, system):
        logic = RecordingOrca()
        service = submit_orca(system, logic)
        system.run_for(1.0)
        job = logic.jobs[0]
        pe_id = service.pe_of_operator(job.job_id, "sink")
        assert service.job_of_pe(pe_id) == job.job_id
        assert "sink" in service.operators_in_pe(pe_id)
        assert service.host_of_pe(pe_id) is not None
        assert len(service.pes_of_job(job.job_id)) == 2
        assert service.operators_of_type("Linear", "Sink") == ["sink"]
        assert service.enclosing_composite("Linear", "sink") is None
        assert service.colocated_operators(job.job_id, "sink") == []


class TestDynamicApplicationAddition:
    def test_add_managed_application_at_runtime(self, system):
        """Sec. 7 future work implemented as an extension."""
        logic = RecordingOrca(submit=())
        service = submit_orca(system, logic)
        system.run_for(1.0)
        new_app = make_filter_app("LateApp")
        service.add_managed_application(
            ManagedApplication(name="LateApp", application=new_app)
        )
        job = service.submit_application("LateApp")
        system.run_for(2.0)
        assert job.state.value == "running"

    def test_duplicate_addition_rejected(self, system):
        from repro.errors import DescriptorError

        logic = RecordingOrca(submit=())
        service = submit_orca(system, logic)
        with pytest.raises(DescriptorError):
            service.add_managed_application(
                ManagedApplication(name="Linear", application=make_linear_app())
            )
