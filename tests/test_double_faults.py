"""Double-fault timing races: a second fault landing inside a state
transition window.

PR 2/3 left two epoch-clock races untested:

* a host failure landing *during* a rescale's drain/migration phase
  (the migrating region must either complete around the dead channel or
  roll back — never lose the epoch barrier or hang the splitter);
* a host failure landing *during* a checkpoint commit (the epoch must
  stay torn and recovery must fall back to the previous committed
  epoch).
"""

from __future__ import annotations

import pytest

from repro import SystemConfig, SystemS
from repro.apps.workloads import ChaosFeed
from repro.elastic.controller import RescaleState
from repro.runtime.pe import PEState
from repro.spl.application import Application
from repro.spl.library import CallbackSource, KeyedCounter, Sink
from repro.spl.parallel import parallel


def build_app(feed, width=3, period=0.05):
    app = Application("DoubleFault")
    g = app.graph
    src = g.add_operator(
        "src",
        CallbackSource,
        params={"generator": feed.generator(), "period": period},
        partition="feed",
    )
    work = g.add_operator(
        "work",
        KeyedCounter,
        params={"key": "key"},
        parallel=parallel(
            width=width,
            name="region",
            partition_by="key",
            max_width=8,
            reorder_grace=1.0,
        ),
    )
    sink = g.add_operator("sink", Sink, partition="out")
    g.connect(src.oport(0), work.iport(0))
    g.connect(work.oport(0), sink.iport(0))
    return app


def build_plain_app(feed, period=0.05):
    app = Application("DoubleFaultPlain")
    g = app.graph
    src = g.add_operator(
        "src",
        CallbackSource,
        params={"generator": feed.generator(), "period": period},
        partition="feed",
    )
    work = g.add_operator("work", KeyedCounter, params={"key": "key"})
    sink = g.add_operator("sink", Sink, partition="out")
    g.connect(src.oport(0), work.iport(0))
    g.connect(work.oport(0), sink.iport(0))
    return app


class TestHostFailureDuringRescale:
    def test_doomed_channel_host_dies_mid_drain(self):
        """Shrink 3 -> 2 while the doomed channel's host dies mid-drain.

        The migration phase must skip the dead channel (its state died
        with the crash) and the rescale must still complete: the barrier
        epoch advances and the region keeps flowing at the new width.
        """
        system = SystemS(hosts=14, seed=42, config=SystemConfig())
        feed = ChaosFeed(seed=5, base_rate=2)
        job = system.submit_job(build_app(feed, width=3))
        system.run_for(3.0)
        doomed_pe = job.pe_of_operator("work__c2")
        operation = system.elastic.set_channel_width(job, "region", 2)
        # the host dies before the first drain poll (poll interval 0.05)
        system.failures.fail_host(doomed_pe.host_name, at=system.now + 0.01)
        system.run_for(20.0)
        assert operation.state is RescaleState.COMPLETED
        assert operation.error is None
        assert operation.migration is not None
        assert 2 in operation.migration.skipped_channels
        plan = job.compiled.parallel_regions["region"]
        assert plan.width == 2
        splitter = job.operator_instance(plan.splitter)
        assert not splitter.is_quiesced
        assert operation.epoch > 0
        # the region still flows after the double fault
        sink_op = job.operator_instance("sink")
        count_after_rescale = len(sink_op.seen)
        system.run_for(3.0)
        assert len(sink_op.seen) > count_after_rescale

    def test_surviving_destination_dies_mid_drain(self):
        """Shrink 3 -> 2 while a *surviving* channel dies mid-drain.

        Partitions extracted off the doomed channel whose new owner is
        the dead channel are dropped with crash semantics (counted in
        ``keys_lost``) — the rescale itself must still complete and the
        epoch clock must advance exactly once.
        """
        system = SystemS(
            hosts=14,
            seed=42,
            config=SystemConfig(failure_notification_delay=0.001),
        )
        feed = ChaosFeed(seed=5, base_rate=2, n_keys=24)
        job = system.submit_job(build_app(feed, width=3))
        system.run_for(3.0)
        survivor_pe = job.pe_of_operator("work__c0")
        epochs_before = system.checkpoint_store.epochs.current
        operation = system.elastic.set_channel_width(job, "region", 2)
        system.failures.fail_host(survivor_pe.host_name, at=system.now + 0.01)
        system.run_for(20.0)
        assert operation.state is RescaleState.COMPLETED
        assert operation.migration is not None
        # entries rehashed onto the dead survivor died with it
        assert operation.migration.keys_lost > 0
        assert operation.epoch == epochs_before + 1

    def test_splitter_host_dies_mid_drain_fails_gracefully(self):
        """The splitter's own host dying mid-drain fails the rescale
        without hanging: the operation reports FAILED and no exception
        escapes into the kernel."""
        system = SystemS(hosts=14, seed=42, config=SystemConfig())
        feed = ChaosFeed(seed=5, base_rate=2)
        job = system.submit_job(build_app(feed, width=3))
        system.run_for(3.0)
        plan = job.compiled.parallel_regions["region"]
        splitter_pe = job.pe_of_operator(plan.splitter)
        operation = system.elastic.set_channel_width(job, "region", 2)
        system.failures.fail_host(splitter_pe.host_name, at=system.now + 0.01)
        system.run_for(20.0)
        assert operation.state is RescaleState.FAILED
        assert operation.error is not None
        assert plan.width == 3  # region unchanged


class TestHostFailureDuringCheckpointCommit:
    def test_commit_torn_by_host_death_falls_back_to_previous_epoch(self):
        """The host dies between checkpoint record and commit.

        The epoch stays torn; after revive + rehydrating restart the PE
        restores the *previous committed* epoch — never the torn one.
        """
        system = SystemS(
            hosts=6,
            seed=42,
            config=SystemConfig(checkpoint_interval=0.25),
        )
        feed = ChaosFeed(seed=5, base_rate=2, n_keys=10)
        job = system.submit_job(build_plain_app(feed))
        system.run_for(2.0)  # several committed epochs exist
        pe = job.pe_of_operator("work")
        committed_before = system.checkpoint_store.latest_committed(
            job.job_id, pe.pe_id
        )
        assert committed_before is not None
        killed = {}

        def die_during_commit(victim):
            if victim.pe_id == pe.pe_id and not killed:
                killed["at"] = system.now
                system.hcs[victim.host_name].kill()
                return True  # the commit never happens: epoch stays torn
            return False

        system.checkpoints.commit_fault = die_during_commit
        system.run_for(1.0)  # the next checkpoint round triggers the kill
        system.checkpoints.commit_fault = None
        assert killed and pe.state is PEState.CRASHED
        store = system.checkpoint_store
        torn = store.latest(job.job_id, pe.pe_id)
        latest_committed = store.latest_committed(job.job_id, pe.pe_id)
        assert torn is not None and not torn.committed
        assert latest_committed is not None
        assert latest_committed.epoch < torn.epoch

        host = pe.host_name
        system.failures.revive_host(host)
        system.failures.restart_pe(job.job_id, pe.pe_id, rehydrate=True)
        system.run_for(2.0)
        assert pe.state is PEState.RUNNING
        report = pe.last_restore
        assert report is not None and report.source == "checkpoint"
        # never the torn epoch: recovery fell back to the last commit
        assert report.epoch == latest_committed.epoch
        restored_total = sum(
            count
            for _, count in latest_committed.payloads["work"]["store"]["keyed"][
                "counts"
            ].items()
        )
        live_total = sum(
            count
            for _, count in pe.operators["work"].state.keyed("counts").items()
        )
        assert live_total >= restored_total > 0

    def test_epoch_clock_totally_orders_recovery_and_later_commits(self):
        """Epochs committed after the torn-commit crash are strictly
        newer than both the torn epoch and the recovery, keeping the
        shared clock monotone across the double fault."""
        system = SystemS(
            hosts=6,
            seed=42,
            config=SystemConfig(checkpoint_interval=0.25),
        )
        feed = ChaosFeed(seed=5, base_rate=2, n_keys=10)
        job = system.submit_job(build_plain_app(feed))
        system.run_for(2.0)
        pe = job.pe_of_operator("work")
        killed = {}

        def die_during_commit(victim):
            if victim.pe_id == pe.pe_id and not killed:
                killed["at"] = system.now
                system.hcs[victim.host_name].kill()
                return True
            return False

        system.checkpoints.commit_fault = die_during_commit
        system.run_for(1.0)
        system.checkpoints.commit_fault = None
        store = system.checkpoint_store
        torn_epoch = store.latest(job.job_id, pe.pe_id).epoch
        system.failures.revive_host(pe.host_name)
        system.failures.restart_pe(job.job_id, pe.pe_id, rehydrate=True)
        system.run_for(3.0)  # new rounds commit after recovery
        newest = store.latest_committed(job.job_id, pe.pe_id)
        assert newest is not None
        assert newest.epoch > torn_epoch
        history = [e.epoch for e in store.epochs_of(job.job_id, pe.pe_id)]
        assert history == sorted(history)
