"""Tests for the reliable delivery plane: ack/retry/backoff timers,
exactly-once duplicate-suppression watermarks, retransmit-under-batching
FIFO, drain-barrier quiescence of pending retries, epoch-aligned replay
into restarted PEs, and first-cause-wins loss attribution."""

import pytest

from repro import SystemConfig, SystemS
from repro.elastic import RescaleState

from tests.test_elastic import build_region_app
from tests.test_transport_batching import job_sink, tup, wire_fixture


def reliable_system(
    delivery,
    batch_max_size=1,
    batch_linger=0.0,
    ack_timeout=0.25,
    retry_backoff=2.0,
    max_retry_interval=2.0,
    hosts=4,
    replay_buffer_max_bytes=0,
):
    return SystemS(
        hosts=hosts,
        seed=42,
        config=SystemConfig(
            delivery=delivery,
            batch_max_size=batch_max_size,
            batch_linger=batch_linger,
            ack_timeout=ack_timeout,
            retry_backoff=retry_backoff,
            max_retry_interval=max_retry_interval,
            replay_buffer_max_bytes=replay_buffer_max_bytes,
        ),
    )


def record_reliability_events(transport):
    """Tee the transport's reliability observer into a list of events."""
    events = []
    inner = transport.reliability_observer

    def observer(kind, count, op, attempt, time):
        events.append((kind, count, attempt, time))
        if inner is not None:
            inner(kind, count, op, attempt, time)

    transport.reliability_observer = observer
    return events


class TestAckRetryTimers:
    def test_clean_link_delivers_once_and_acks(self):
        system = reliable_system("at_least_once")
        transport, src_pe, sink_pe, sink = wire_fixture(system)
        for i in range(3):
            transport.send(sink_pe, "sink", 0, tup(i), src_pe=src_pe)
        system.run_for(0.5)
        assert [t["iter"] for t in sink.seen] == [0, 1, 2]
        assert transport.acks == 3
        assert transport.retransmissions == 0
        # every unit acked: nothing pending, no live retry timers
        assert transport.reliability.pending == {}

    def test_lossy_link_retries_until_delivered(self):
        system = reliable_system("at_least_once")
        transport, src_pe, sink_pe, sink = wire_fixture(system)
        fault = transport.install_link_fault(
            drop_probability=1.0, dst_pe=sink_pe.pe_id
        )
        transport.send(sink_pe, "sink", 0, tup(0), src_pe=src_pe)
        system.run_for(1.0)
        assert sink.seen == []
        assert transport.retransmissions >= 1
        # first-cause-wins: one unit, one dropped_by_fault, however many
        # wire copies the fault ate
        assert transport.dropped_by_fault == 1
        transport.clear_link_fault(fault)
        system.run_for(3.0)
        assert [t["iter"] for t in sink.seen] == [0]
        assert transport.dropped_by_fault == 1
        assert transport.reliability.pending == {}

    def test_backoff_schedule_doubles_and_caps(self):
        system = reliable_system(
            "at_least_once",
            ack_timeout=0.1,
            retry_backoff=2.0,
            max_retry_interval=0.4,
        )
        transport, src_pe, sink_pe, sink = wire_fixture(system)
        events = record_reliability_events(transport)
        transport.install_link_fault(drop_probability=1.0, dst_pe=sink_pe.pe_id)
        sent_at = system.kernel.now
        transport.send(sink_pe, "sink", 0, tup(0), src_pe=src_pe)
        system.run_for(2.0)
        retries = [t - sent_at for (kind, _c, _a, t) in events if kind == "retransmit"]
        # 0.1, then doubling, capped at 0.4 between attempts
        assert retries == pytest.approx([0.1, 0.3, 0.7, 1.1, 1.5, 1.9])

    def test_at_least_once_duplicates_are_possible(self):
        """The ALO receiver is naive: a partition-held original plus a
        retransmitted sibling both deliver at heal."""
        system = reliable_system("at_least_once")
        transport, src_pe, sink_pe, sink = wire_fixture(system)
        fault = transport.install_link_fault(
            partition=True, dst_pe=sink_pe.pe_id
        )
        transport.send(sink_pe, "sink", 0, tup(0), src_pe=src_pe)
        system.run_for(0.6)  # the 0.25s ack timeout fires behind the wall
        assert transport.retransmissions >= 1
        transport.clear_link_fault(fault)
        system.run_for(1.0)
        assert len(sink.seen) >= 2  # at least once, not exactly once
        assert transport.duplicates_suppressed == 0


class TestDuplicateSuppression:
    def test_partition_race_duplicate_is_suppressed(self):
        """Same race as the ALO duplicate test, but the exactly-once
        receiver's (link, seq) watermark absorbs the second copy."""
        system = reliable_system("exactly_once")
        transport, src_pe, sink_pe, sink = wire_fixture(system)
        fault = transport.install_link_fault(
            partition=True, dst_pe=sink_pe.pe_id
        )
        transport.send(sink_pe, "sink", 0, tup(0), src_pe=src_pe)
        system.run_for(0.6)
        assert transport.retransmissions >= 1
        transport.clear_link_fault(fault)
        system.run_for(1.0)
        assert [t["iter"] for t in sink.seen] == [0]
        assert transport.duplicates_suppressed >= 1

    def test_watermark_tracks_contiguous_delivery(self):
        system = reliable_system("exactly_once")
        transport, src_pe, sink_pe, sink = wire_fixture(system)
        for i in range(5):
            transport.send(sink_pe, "sink", 0, tup(i), src_pe=src_pe)
        system.run_for(0.5)
        link = (src_pe.pe_id, sink_pe.pe_id)
        assert transport.reliability.delivered_wm[link] == 5
        payload = transport.checkpoint_watermarks(sink_pe.pe_id)
        assert payload == {"watermarks": {src_pe.pe_id: 5}}

    def test_best_effort_has_no_watermark_payload(self):
        system = reliable_system("at_least_once")
        transport, src_pe, sink_pe, sink = wire_fixture(system)
        transport.send(sink_pe, "sink", 0, tup(0), src_pe=src_pe)
        system.run_for(0.5)
        assert transport.checkpoint_watermarks(sink_pe.pe_id) is None


class TestRetransmitBatchingFifo:
    def test_lost_batch_stalls_link_until_retransmit_fills_gap(self):
        """A later batch must not overtake a lost earlier one: the
        in-order receiver parks it until the retransmit lands."""
        system = reliable_system("exactly_once", batch_max_size=3)
        transport, src_pe, sink_pe, sink = wire_fixture(system)
        seqs = []
        transport.delivery_taps.append(lambda rec: seqs.append(rec.link_seq))
        fault = transport.install_link_fault(
            drop_probability=1.0, dst_pe=sink_pe.pe_id
        )
        for i in range(3):  # batch 1 (seqs 1-3) flushes into the fault
            transport.send(sink_pe, "sink", 0, tup(i), src_pe=src_pe)
        transport.clear_link_fault(fault)
        for i in range(3, 6):  # batch 2 (seqs 4-6) rides a clean link
            transport.send(sink_pe, "sink", 0, tup(i), src_pe=src_pe)
        system.run_for(1.0)
        assert [t["iter"] for t in sink.seen] == [0, 1, 2, 3, 4, 5]
        assert seqs == [1, 2, 3, 4, 5, 6]
        # each batch was one wire unit: batch 1 retransmits its lost
        # copy, and parked batch 2 (unacked while it waits for the gap)
        # sends one backoff sibling that the receiver's dedup absorbs;
        # loss attribution covers batch 1's three members exactly once
        assert transport.retransmissions == 2
        assert transport.dropped_by_fault == 3
        assert transport.duplicates_suppressed == 3

    def test_one_ack_per_flushed_batch(self):
        system = reliable_system("exactly_once", batch_max_size=4)
        transport, src_pe, sink_pe, sink = wire_fixture(system)
        for i in range(8):
            transport.send(sink_pe, "sink", 0, tup(i), src_pe=src_pe)
        system.run_for(0.5)
        assert [t["iter"] for t in sink.seen] == list(range(8))
        assert transport.acks == 2  # two batches, one ack each


class TestDrainQuiescence:
    def test_expedite_pending_bypasses_backoff(self):
        system = reliable_system("exactly_once", ack_timeout=30.0)
        transport, src_pe, sink_pe, sink = wire_fixture(system)
        fault = transport.install_link_fault(
            drop_probability=1.0, dst_pe=sink_pe.pe_id
        )
        transport.send(sink_pe, "sink", 0, tup(0), src_pe=src_pe)
        system.run_for(0.1)  # first copy dropped; retry armed 30s out
        transport.clear_link_fault(fault)
        system.run_for(0.5)
        assert sink.seen == []  # still sitting out the backoff
        transport.expedite_pending()
        system.run_for(0.1)
        assert [t["iter"] for t in sink.seen] == [0]
        assert transport.retransmissions == 1

    def test_expedite_leaves_live_and_partitioned_copies_alone(self):
        system = reliable_system("exactly_once", ack_timeout=30.0)
        transport, src_pe, sink_pe, sink = wire_fixture(system)
        # a copy already on the wire: expediting must not duplicate it
        transport.send(sink_pe, "sink", 0, tup(0), src_pe=src_pe)
        transport.expedite_pending()
        assert transport.retransmissions == 0
        system.run_for(0.1)
        # a copy held behind an active partition: also left alone
        fault = transport.install_link_fault(
            partition=True, dst_pe=sink_pe.pe_id
        )
        transport.send(sink_pe, "sink", 0, tup(1), src_pe=src_pe)
        system.run_for(0.1)
        transport.expedite_pending()
        assert transport.retransmissions == 0
        transport.clear_link_fault(fault)
        system.run_for(0.5)
        assert [t["iter"] for t in sink.seen] == [0, 1]

    def test_rescale_drain_quiesces_pending_retries(self):
        """A drain barrier must not sit out a multi-second ack backoff:
        the drain poll expedites undelivered units, so a rescale that
        started while a loss fault was eating copies completes as soon as
        the link heals — not ``ack_timeout`` later."""
        system = SystemS(
            hosts=12,
            seed=42,
            config=SystemConfig(
                delivery="exactly_once",
                batch_max_size=8,
                batch_linger=0.05,
                ack_timeout=5.0,
            ),
        )
        app = build_region_app(width=1, limit=300, rate=100.0)
        job = system.submit_job(app)
        system.run_for(2.0)
        fault = system.transport.install_link_fault(drop_probability=1.0)
        system.run_for(0.05)
        operation = system.elastic.set_channel_width(job, "region", 2)
        system.run_for(0.05)
        system.transport.clear_link_fault(fault)
        system.run_for(3.0)  # well under the 5s ack timeout
        assert operation.state is RescaleState.COMPLETED
        assert system.transport.retransmissions > 0
        system.run_for(20.0)
        sink = job.operator_instance("sink")
        iters = [t["iter"] for t in sink.seen]
        assert sorted(iters) == list(range(300))
        assert iters == sorted(iters)  # exactly-once keeps FIFO through loss
        assert system.transport.dropped_in_flight == 0


class TestExactlyOnceRestart:
    def test_in_flight_units_survive_crash_restart(self):
        """The best-effort transport condemns in-flight tuples at a crash
        (``test_condemned_batch_never_reaches_restarted_pe``); exactly
        once retransmits them into the new incarnation instead."""
        system = reliable_system("exactly_once")
        transport, src_pe, sink_pe, sink = wire_fixture(system)
        for i in range(3):
            transport.send(sink_pe, "sink", 0, tup(i), src_pe=src_pe)
        sink_pe.crash("test")
        sink_pe.restart()
        system.run_for(2.0)
        assert transport.dropped_in_flight == 0
        assert [t["iter"] for t in job_sink(system)] == [0, 1, 2]

    def test_replay_buffer_truncates_to_committed_floor(self):
        system = reliable_system("exactly_once")
        transport, src_pe, sink_pe, sink = wire_fixture(system)
        for i in range(3):
            transport.send(sink_pe, "sink", 0, tup(i), src_pe=src_pe)
        system.run_for(0.5)
        link = (src_pe.pe_id, sink_pe.pe_id)
        plane = transport.reliability
        assert sorted(plane.replay_buffer[link]) == [1, 2, 3]
        transport.on_epoch_committed(sink_pe.pe_id, {src_pe.pe_id: 2})
        assert sorted(plane.replay_buffer[link]) == [3]
        assert plane.truncated_to[link] == 2
        # an older floor never un-truncates
        transport.on_epoch_committed(sink_pe.pe_id, {src_pe.pe_id: 1})
        assert plane.truncated_to[link] == 2

    def test_restart_replays_processed_units_above_committed_floor(self):
        system = reliable_system("exactly_once")
        transport, src_pe, sink_pe, sink = wire_fixture(system)
        events = record_reliability_events(transport)
        for i in range(4):
            transport.send(sink_pe, "sink", 0, tup(i), src_pe=src_pe)
        system.run_for(0.5)
        assert len(sink.seen) == 4
        # an epoch committed with watermark 2: seqs 1-2 leave the replay
        # buffer, so a restart can only rewind to that floor
        transport.on_epoch_committed(sink_pe.pe_id, {src_pe.pe_id: 2})
        sink_pe.crash("test")
        sink_pe.restart()
        system.run_for(0.5)
        replays = [c for (kind, c, _a, _t) in events if kind == "replay"]
        assert sum(replays) == 2  # seqs 3 and 4 re-sent as redelivery
        assert transport.replayed == 2
        # replayed units rebuild the fresh instance's state
        assert [t["iter"] for t in job_sink(system)] == [2, 3]


class TestFirstCauseWins:
    def test_fault_drop_then_condemnation_counts_once(self):
        """Regression: a unit that lost a copy to a seeded drop and whose
        destination is then removed for good must count in exactly one
        loss bucket (``dropped_by_fault``, the first cause)."""
        system = reliable_system("at_least_once")
        transport, src_pe, sink_pe, sink = wire_fixture(system)
        transport.install_link_fault(
            drop_probability=1.0, dst_pe=sink_pe.pe_id
        )
        transport.send(sink_pe, "sink", 0, tup(0), src_pe=src_pe)
        system.run_for(0.05)
        assert transport.dropped_by_fault == 1
        transport.forget_pe(sink_pe.pe_id)
        assert transport.dropped_by_fault == 1
        assert transport.dropped_in_flight == 0
        assert transport.reliability.pending == {}

    def test_condemnation_without_prior_drop_counts_in_flight(self):
        system = reliable_system("at_least_once")
        transport, src_pe, sink_pe, sink = wire_fixture(system)
        transport.send(sink_pe, "sink", 0, tup(0), src_pe=src_pe)
        # the destination is removed for good with the copy still on the
        # wire (the order sam.remove_pes uses: stop, then forget)
        sink_pe.stop(capture_state=False)
        transport.forget_pe(sink_pe.pe_id)
        assert transport.dropped_in_flight == 1
        assert transport.dropped_by_fault == 0
        system.run_for(0.5)
        assert sink.seen == []  # condemned: the late copy is ignored


class TestLossyAcks:
    """Acks travel the reverse link through the fault pipeline — the
    control channel is no longer assumed lossless (delivery.py bugfix)."""

    def test_lost_ack_retransmits_and_receiver_reacks(self):
        system = reliable_system("exactly_once", ack_timeout=0.1)
        transport, src_pe, sink_pe, sink = wire_fixture(system)
        # reverse-direction fault: data src->sink is clean, acks
        # sink->src are all dropped while the fault is up
        fault = transport.install_link_fault(
            drop_probability=1.0, src_pe=sink_pe.pe_id, dst_pe=src_pe.pe_id
        )
        for i in range(3):
            transport.send(sink_pe, "sink", 0, tup(i), src_pe=src_pe)
        system.run_for(1.0)
        # delivered exactly once to the app despite every ack being lost
        assert [t["iter"] for t in sink.seen] == [0, 1, 2]
        assert transport.acks_dropped >= 3
        # the sender could not tell: it retransmitted delivered units...
        assert transport.retransmissions >= 3
        # ...and the in-order receiver suppressed every duplicate copy
        assert transport.duplicates_suppressed >= 3
        assert transport.dropped_by_fault == 0  # forward path untouched
        transport.clear_link_fault(fault)
        system.run_for(2.0)
        # after heal the re-acked duplicates drain the pending registry
        assert transport.reliability.pending == {}
        assert transport.acks == 3
        assert [t["iter"] for t in sink.seen] == [0, 1, 2]

    def test_lost_ack_at_least_once_duplicates_then_converges(self):
        system = reliable_system("at_least_once", ack_timeout=0.1)
        transport, src_pe, sink_pe, sink = wire_fixture(system)
        fault = transport.install_link_fault(
            drop_probability=1.0, src_pe=sink_pe.pe_id, dst_pe=src_pe.pe_id
        )
        transport.send(sink_pe, "sink", 0, tup(0), src_pe=src_pe)
        system.run_for(0.5)
        # the naive receiver delivers the ack-loss-provoked duplicates
        assert len(sink.seen) >= 2
        assert all(t["iter"] == 0 for t in sink.seen)
        assert transport.acks_dropped >= 1
        transport.clear_link_fault(fault)
        system.run_for(2.0)
        assert transport.reliability.pending == {}

    def test_untimed_reverse_partition_swallows_acks(self):
        system = reliable_system("exactly_once", ack_timeout=0.1)
        transport, src_pe, sink_pe, sink = wire_fixture(system)
        fault = transport.install_link_fault(
            partition=True, src_pe=sink_pe.pe_id, dst_pe=src_pe.pe_id
        )
        transport.send(sink_pe, "sink", 0, tup(0), src_pe=src_pe)
        system.run_for(0.5)
        assert [t["iter"] for t in sink.seen] == [0]
        assert transport.acks_dropped >= 1
        assert transport.acks == 0
        transport.clear_link_fault(fault)
        system.run_for(2.0)
        assert transport.reliability.pending == {}
        assert transport.acks == 1

    def test_lossless_acks_draw_nothing_from_ack_stream(self):
        """Without reverse-link faults the ack rng is never consumed, so
        committed sim artifacts stay byte-identical."""
        system = reliable_system("exactly_once")
        transport, src_pe, sink_pe, sink = wire_fixture(system)
        state_before = transport.ack_rng.getstate()
        for i in range(5):
            transport.send(sink_pe, "sink", 0, tup(i), src_pe=src_pe)
        system.run_for(1.0)
        assert transport.ack_rng.getstate() == state_before
        assert transport.acks_dropped == 0
        assert transport.acks == 5


class TestReplayBufferCap:
    """``replay_buffer_max_bytes`` bounds the exactly-once replay buffer
    with sender-side backpressure (delivery.py bugfix)."""

    def test_cap_stalls_sender_and_commit_releases_in_order(self):
        system = reliable_system("exactly_once", replay_buffer_max_bytes=1)
        transport, src_pe, sink_pe, sink = wire_fixture(system)
        plane = transport.reliability
        link = (src_pe.pe_id, sink_pe.pe_id)
        # the cap only stalls links toward destinations that commit
        # epochs; mark the sink as one (an empty floor truncates nothing)
        transport.on_epoch_committed(sink_pe.pe_id, {})
        # two units deliver, ack, and land in the replay buffer: the
        # 1-byte cap is now exceeded
        for i in range(2):
            transport.send(sink_pe, "sink", 0, tup(i), src_pe=src_pe)
        system.run_for(0.5)
        assert plane.replay_bytes[link] >= 1
        # the next three sends park before seq allocation
        for i in range(2, 5):
            transport.send(sink_pe, "sink", 0, tup(i), src_pe=src_pe)
        system.run_for(0.5)
        assert transport.replay_stalls == 3
        assert len(plane.stalled[link]) == 3
        assert [t["iter"] for t in sink.seen] == [0, 1]
        # the backlog stays visible to drain barriers / the health plane
        assert transport.queue_size(sink_pe.pe_id, "sink", 0) == 3
        # an epoch commit truncates the buffer and releases the queue
        transport.on_epoch_committed(sink_pe.pe_id, {src_pe.pe_id: 2})
        assert link not in plane.stalled
        system.run_for(1.0)
        # zero loss, strict FIFO across the stall boundary
        assert [t["iter"] for t in sink.seen] == [0, 1, 2, 3, 4]
        assert transport.dropped_in_flight == 0
        assert transport.queue_size(sink_pe.pe_id, "sink", 0) == 0

    def test_unbounded_default_never_stalls(self):
        system = reliable_system("exactly_once")
        transport, src_pe, sink_pe, sink = wire_fixture(system)
        for i in range(50):
            transport.send(sink_pe, "sink", 0, tup(i), src_pe=src_pe)
        system.run_for(1.0)
        assert transport.replay_stalls == 0
        assert transport.reliability.stalled == {}
        assert len(sink.seen) == 50

    def test_never_committing_destination_is_never_stalled(self):
        """A destination that never commits an epoch could never release
        the stall, so its links keep the historical unbounded retention
        instead of deadlocking."""
        system = reliable_system("exactly_once", replay_buffer_max_bytes=1)
        transport, src_pe, sink_pe, sink = wire_fixture(system)
        for i in range(20):
            transport.send(sink_pe, "sink", 0, tup(i), src_pe=src_pe)
        system.run_for(1.0)
        assert transport.replay_stalls == 0
        assert transport.reliability.stalled == {}
        assert len(sink.seen) == 20

    def test_forget_pe_condemns_stalled_units(self):
        system = reliable_system("exactly_once", replay_buffer_max_bytes=1)
        transport, src_pe, sink_pe, sink = wire_fixture(system)
        transport.on_epoch_committed(sink_pe.pe_id, {})
        for i in range(2):
            transport.send(sink_pe, "sink", 0, tup(i), src_pe=src_pe)
        system.run_for(0.5)
        transport.send(sink_pe, "sink", 0, tup(2), src_pe=src_pe)
        assert transport.replay_stalls == 1
        transport.forget_pe(sink_pe.pe_id)
        assert transport.dropped_in_flight == 1
        assert transport.reliability.stalled == {}
        assert transport.queue_size(sink_pe.pe_id, "sink", 0) == 0

    def test_commit_starved_pipeline_stalls_without_loss(self):
        """Acceptance gate: a live pipeline whose epoch commits are rare
        (commit-starved) hits the cap toward its stateful region, applies
        backpressure, and still loses nothing once commits catch up."""
        from repro.spl.application import Application
        from repro.spl.library import CallbackSource, KeyedCounter, Sink
        from repro.spl.parallel import parallel

        limit = 200

        def feed(now, count):
            if count >= limit:
                return []
            return [
                {"key": f"k{(count + i) % 4}", "seq": count + i}
                for i in range(min(5, limit - count))
            ]

        app = Application("Starved")
        g = app.graph
        src = g.add_operator(
            "src",
            CallbackSource,
            params={"generator": feed, "period": 0.05},
            partition="feed",
        )
        work = g.add_operator(
            "work",
            KeyedCounter,
            params={"key": "key"},
            parallel=parallel(width=2, name="region", partition_by="key"),
        )
        snk = g.add_operator("sink", Sink, partition="out")
        g.connect(src.oport(0), work.iport(0))
        g.connect(work.oport(0), snk.iport(0))

        system = SystemS(
            hosts=6,
            seed=42,
            config=SystemConfig(
                delivery="exactly_once",
                # starved: one commit per 2 sim-seconds against a cap
                # that a fraction of a second of traffic exceeds
                checkpoint_interval=2.0,
                replay_buffer_max_bytes=500,
            ),
        )
        job = system.submit_job(app)
        # run past several commit cycles so parked units drain at each
        # truncation; the feed itself finishes in ~2 sim-seconds
        system.run_for(20.0)
        sink = job.operator_instance("sink")
        assert system.transport.replay_stalls > 0  # the cap engaged
        seqs = sorted(t["seq"] for t in sink.seen)
        assert seqs == list(range(limit))  # zero loss, zero duplicates
        assert system.transport.dropped_in_flight == 0
        assert system.transport.dropped_by_fault == 0
