"""Tests for the orchestrator descriptor and the SQL baseline engine."""

import pytest

from repro import ManagedApplication, Orchestrator, OrcaDescriptor
from repro.errors import DescriptorError
from repro.orca.descriptor import resolve_dotted
from repro.orca.sqlbaseline import (
    Relation,
    paper_scope_query,
    recursive_cte,
    scope_match_reference,
    tables_from_adl,
)
from repro.spl.adl import adl_model_of
from repro.spl.compiler import SPLCompiler

from repro.apps.figure2 import build_figure2_application
from tests.conftest import make_linear_app


class NamedOrca(Orchestrator):
    """Module-level logic class, resolvable by dotted path."""


class TestDescriptor:
    def test_create_logic_from_class(self):
        descriptor = OrcaDescriptor(name="O", logic=NamedOrca)
        assert isinstance(descriptor.create_logic(), NamedOrca)

    def test_create_logic_from_callable(self):
        descriptor = OrcaDescriptor(name="O", logic=lambda: NamedOrca())
        assert isinstance(descriptor.create_logic(), NamedOrca)

    def test_create_logic_from_dotted_path(self):
        path = f"{__name__}.NamedOrca"
        descriptor = OrcaDescriptor(name="O", logic=path)
        assert isinstance(descriptor.create_logic(), NamedOrca)

    def test_non_orchestrator_factory_rejected(self):
        descriptor = OrcaDescriptor(name="O", logic=lambda: object())
        with pytest.raises(DescriptorError):
            descriptor.create_logic()

    def test_managed_application_requires_content(self):
        with pytest.raises(DescriptorError):
            ManagedApplication(name="X")

    def test_managed_application_name_must_match(self):
        with pytest.raises(DescriptorError):
            ManagedApplication(name="X", application=make_linear_app("Y"))

    def test_application_lookup(self):
        app = make_linear_app("A")
        descriptor = OrcaDescriptor(
            name="O",
            logic=NamedOrca,
            applications=[ManagedApplication(name="A", application=app)],
        )
        assert descriptor.manages("A")
        assert not descriptor.manages("B")
        assert descriptor.application("A").application is app
        with pytest.raises(DescriptorError):
            descriptor.application("B")

    def test_xml_round_trip(self):
        from repro.spl.adl import adl_to_xml

        compiled = SPLCompiler("manual").compile(make_linear_app("A"))
        descriptor = OrcaDescriptor(
            name="MyORCA",
            logic=f"{__name__}.NamedOrca",
            applications=[
                ManagedApplication(name="A", adl_xml=adl_to_xml(compiled))
            ],
            metric_poll_interval=5.0,
        )
        text = descriptor.to_xml()
        parsed = OrcaDescriptor.from_xml(text)
        assert parsed.name == "MyORCA"
        assert parsed.metric_poll_interval == 5.0
        assert parsed.applications[0].name == "A"
        assert parsed.applications[0].adl_xml is not None
        assert isinstance(parsed.create_logic(), NamedOrca)

    def test_malformed_xml(self):
        with pytest.raises(DescriptorError):
            OrcaDescriptor.from_xml("<broken")
        with pytest.raises(DescriptorError):
            OrcaDescriptor.from_xml("<wrong/>")
        with pytest.raises(DescriptorError):
            OrcaDescriptor.from_xml("<orchestrator name='x'/>")

    def test_resolve_dotted_errors(self):
        with pytest.raises(DescriptorError):
            resolve_dotted("no_dots")
        with pytest.raises(DescriptorError):
            resolve_dotted("nonexistent_module.Thing")
        with pytest.raises(DescriptorError):
            resolve_dotted(f"{__name__}.NoSuchClass")


class TestRelationalEngine:
    def rel(self):
        return Relation(("a", "b"), [(1, "x"), (2, "y"), (3, "x")])

    def test_select(self):
        result = self.rel().select(lambda r: r["b"] == "x")
        assert result.rows == [(1, "x"), (3, "x")]

    def test_project_reorders(self):
        result = self.rel().project(("b", "a"))
        assert result.columns == ("b", "a")
        assert result.rows[0] == ("x", 1)

    def test_rename_prefixes(self):
        assert self.rel().rename("T").columns == ("T.a", "T.b")

    def test_cross_product(self):
        left = Relation(("a",), [(1,), (2,)])
        right = Relation(("b",), [("x",)])
        assert left.cross(right).rows == [(1, "x"), (2, "x")]

    def test_cross_rejects_clashes(self):
        with pytest.raises(ValueError):
            self.rel().cross(self.rel())

    def test_theta_join(self):
        left = Relation(("a",), [(1,), (2,)])
        right = Relation(("b",), [(1,), (3,)])
        result = left.join(right, lambda r: r["a"] == r["b"])
        assert result.rows == [(1, 1)]

    def test_equi_join(self):
        left = Relation(("a", "v"), [(1, "l1"), (2, "l2")])
        right = Relation(("k", "w"), [(1, "r1"), (1, "r2")])
        result = left.equi_join(right, "a", "k")
        assert len(result) == 2

    def test_union_all_and_distinct(self):
        left = Relation(("a",), [(1,)])
        merged = left.union_all(Relation(("a",), [(1,), (2,)]))
        assert len(merged) == 3
        assert len(merged.distinct()) == 2

    def test_union_requires_same_schema(self):
        with pytest.raises(ValueError):
            Relation(("a",), []).union_all(Relation(("b",), []))

    def test_arity_checked(self):
        with pytest.raises(ValueError):
            Relation(("a", "b"), [(1,)])

    def test_missing_column(self):
        with pytest.raises(KeyError):
            self.rel().col("ghost")

    def test_to_dicts(self):
        assert self.rel().to_dicts()[0] == {"a": 1, "b": "x"}

    def test_recursive_cte_transitive_closure(self):
        edges = Relation(("src", "dst"), [("a", "b"), ("b", "c"), ("c", "d")])

        def step(frontier):
            joined = edges.rename("E").equi_join(
                frontier.rename("F"), "E.dst", "F.src"
            )
            return Relation(
                ("src", "dst"),
                [
                    (row[joined.col("E.src")], row[joined.col("F.dst")])
                    for row in joined.rows
                ],
            ).distinct()

        closure = recursive_cte(edges, step)
        assert ("a", "d") in closure.rows
        assert len(closure) == 6  # ab ac ad bc bd cd

    def test_recursive_cte_schema_checked(self):
        base = Relation(("a",), [(1,)])
        with pytest.raises(ValueError):
            recursive_cte(base, lambda f: Relation(("z",), []))


class TestPaperQuery:
    def figure2_tables(self, metric="queueSize"):
        compiled = SPLCompiler("manual").compile(build_figure2_application())
        adl = adl_model_of(compiled)
        metrics = [
            (op.name, metric, float(i)) for i, op in enumerate(adl.operators)
        ]
        return adl, metrics

    def test_matches_fig5_expectation(self):
        """The query must select op3/op6 of both composite instances."""
        adl, metrics = self.figure2_tables()
        tables = tables_from_adl(adl, metrics)
        result = paper_scope_query(tables, "queueSize", ["Split", "Merge"],
                                   "composite1")
        names = {name for name, _ in result.rows}
        assert names == {"c1.op3", "c1.op6", "c2.op3", "c2.op6"}

    def test_equals_scope_reference(self):
        adl, metrics = self.figure2_tables()
        tables = tables_from_adl(adl, metrics)
        result = set(
            paper_scope_query(
                tables, "queueSize", ["Split", "Merge"], "composite1"
            ).rows
        )
        reference = scope_match_reference(
            adl, metrics, "queueSize", ["Split", "Merge"], "composite1"
        )
        assert result == reference

    def test_metric_name_filters(self):
        adl, metrics = self.figure2_tables(metric="nTuplesProcessed")
        tables = tables_from_adl(adl, metrics)
        result = paper_scope_query(tables, "queueSize", ["Split"], "composite1")
        assert len(result) == 0

    def test_nested_composites_need_recursion(self):
        """An operator nested two levels deep is only found recursively."""
        from repro.spl.adl import ADLComposite, ADLModel, ADLOperator

        adl = ADLModel(
            name="Nested",
            version="1",
            operators=[
                ADLOperator(
                    name="outer.inner.op", kind="Split",
                    composite="outer.inner", pe_index=1, n_inputs=1, n_outputs=2,
                )
            ],
            composites=[
                ADLComposite(name="outer", kind="composite1", parent=None),
                ADLComposite(name="outer.inner", kind="wrapper", parent="outer"),
            ],
            pes=[], streams=[], host_pools=[], exports=[], imports=[],
        )
        metrics = [("outer.inner.op", "queueSize", 7.0)]
        tables = tables_from_adl(adl, metrics)
        result = paper_scope_query(tables, "queueSize", ["Split"], "composite1")
        assert set(result.rows) == {("outer.inner.op", 7.0)}
        reference = scope_match_reference(
            adl, metrics, "queueSize", ["Split"], "composite1"
        )
        assert set(result.rows) == reference
