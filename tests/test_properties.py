"""Property-based tests (hypothesis) on core invariants.

The headline property is the Sec. 4.1 equivalence: on arbitrarily nested
composite hierarchies, the ORCA scope matcher selects exactly the rows the
paper's recursive SQL query selects.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.orca.epochs import FailureEpochTracker
from repro.orca.scopes import OperatorMetricScope
from repro.orca.sqlbaseline import (
    Relation,
    paper_scope_query,
    scope_match_reference,
    tables_from_adl,
)
from repro.sim.kernel import Kernel
from repro.spl.adl import ADLComposite, ADLModel, ADLOperator
from repro.spl.application import Application
from repro.spl.compiler import SPLCompiler
from repro.spl.library import Beacon, Functor, Merge, Sink, Split
from repro.spl.windows import SlidingTimeWindow

# ---------------------------------------------------------------------------
# Random nested ADL models
# ---------------------------------------------------------------------------

COMPOSITE_KINDS = ("composite1", "composite2", "wrapper")
OPERATOR_KINDS = ("Split", "Merge", "Functor", "Filter")
METRIC_NAMES = ("queueSize", "nTuplesProcessed")


@st.composite
def nested_adl_models(draw):
    """An ADLModel with a random composite forest and random operators."""
    n_composites = draw(st.integers(min_value=0, max_value=8))
    composites = []
    for i in range(n_composites):
        parent = None
        if composites and draw(st.booleans()):
            parent = draw(st.sampled_from([c.name for c in composites]))
        name = f"{parent}.c{i}" if parent else f"c{i}"
        kind = draw(st.sampled_from(COMPOSITE_KINDS))
        composites.append(ADLComposite(name=name, kind=kind, parent=parent))
    n_operators = draw(st.integers(min_value=1, max_value=12))
    operators = []
    for i in range(n_operators):
        composite = None
        if composites and draw(st.booleans()):
            composite = draw(st.sampled_from([c.name for c in composites]))
        prefix = f"{composite}." if composite else ""
        operators.append(
            ADLOperator(
                name=f"{prefix}op{i}",
                kind=draw(st.sampled_from(OPERATOR_KINDS)),
                composite=composite,
                pe_index=1,
                n_inputs=1,
                n_outputs=1,
            )
        )
    metrics = []
    for op in operators:
        for metric_name in METRIC_NAMES:
            if draw(st.booleans()):
                metrics.append(
                    (op.name, metric_name, float(draw(st.integers(0, 100))))
                )
    model = ADLModel(
        name="Random",
        version="1",
        operators=operators,
        composites=composites,
        pes=[],
        streams=[],
        host_pools=[],
        exports=[],
        imports=[],
    )
    return model, metrics


class TestScopeSqlEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(
        model_and_metrics=nested_adl_models(),
        metric=st.sampled_from(METRIC_NAMES),
        kinds=st.sets(st.sampled_from(OPERATOR_KINDS), min_size=1, max_size=3),
        composite_kind=st.sampled_from(COMPOSITE_KINDS),
    )
    def test_recursive_query_equals_scope_matcher(
        self, model_and_metrics, metric, kinds, composite_kind
    ):
        """Sec. 4.1: the scope API and the recursive SQL are equivalent."""
        model, metrics = model_and_metrics
        tables = tables_from_adl(model, metrics)
        sql_rows = set(
            paper_scope_query(tables, metric, sorted(kinds), composite_kind).rows
        )
        reference = scope_match_reference(
            model, metrics, metric, sorted(kinds), composite_kind
        )
        assert sql_rows == reference

    @settings(max_examples=60, deadline=None)
    @given(model_and_metrics=nested_adl_models())
    def test_scope_filter_semantics_on_random_graphs(self, model_and_metrics):
        """Conjunction across attributes / disjunction within, directly
        on the matcher, cross-checked against a naive evaluation."""
        model, metrics = model_and_metrics
        parents = {c.name: c.parent for c in model.composites}
        kinds = {c.name: c.kind for c in model.composites}
        scope = OperatorMetricScope("s")
        scope.addOperatorTypeFilter(["Split", "Merge"])
        scope.addCompositeTypeFilter("composite1")
        for op in model.operators:
            chain_types = set()
            current = op.composite
            while current is not None:
                chain_types.add(kinds[current])
                current = parents[current]
            attrs = {
                "operator_type": op.kind,
                "composite_type": chain_types,
            }
            expected = op.kind in ("Split", "Merge") and "composite1" in chain_types
            assert scope.matches(attrs) == expected


# ---------------------------------------------------------------------------
# Sliding windows
# ---------------------------------------------------------------------------


class TestWindowProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        deltas=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
                st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            ),
            min_size=1,
            max_size=60,
        ),
        span=st.floats(min_value=0.5, max_value=50.0),
    )
    def test_window_matches_naive_model(self, deltas, span):
        window = SlidingTimeWindow(span)
        naive: list[tuple[float, float]] = []
        now = 0.0
        for delta, value in deltas:
            now += delta
            window.insert(now, value)
            naive.append((now, value))
            naive = [(t, v) for t, v in naive if t >= now - span]
            assert len(window) == len(naive)
            values = [v for _, v in naive]
            assert window.minimum() == min(values)
            assert window.maximum() == max(values)
            assert window.mean() == pytest.approx(
                sum(values) / len(values), rel=1e-6, abs=1e-6
            )

    @settings(max_examples=50, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
            min_size=2,
            max_size=50,
        )
    )
    def test_bollinger_brackets_mean(self, values):
        window = SlidingTimeWindow(1e9)
        for i, value in enumerate(values):
            window.insert(float(i), value)
        upper, lower = window.bollinger_bands(2.0)
        mean = window.mean()
        assert lower <= mean <= upper


# ---------------------------------------------------------------------------
# Kernel ordering
# ---------------------------------------------------------------------------


class TestKernelProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    def test_callbacks_fire_in_time_then_fifo_order(self, delays):
        kernel = Kernel()
        fired: list[tuple[float, int]] = []
        for seq, delay in enumerate(delays):
            kernel.schedule(
                delay, lambda d=delay, s=seq: fired.append((d, s))
            )
        kernel.run_until(101.0)
        assert fired == sorted(fired)
        assert len(fired) == len(delays)


# ---------------------------------------------------------------------------
# Failure epochs
# ---------------------------------------------------------------------------


class TestEpochProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        events=st.lists(
            st.tuples(
                st.sampled_from(["crash", "host_failure"]),
                # discrete grid: keeps gaps well above the tracker tolerance
                st.integers(min_value=0, max_value=200).map(lambda i: i / 2.0),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_epoch_changes_iff_key_changes(self, events):
        tracker = FailureEpochTracker()
        previous_key = None
        previous_epoch = None
        for reason, ts in events:
            epoch = tracker.epoch_for(reason, ts)
            if previous_key == (reason, ts):
                assert epoch == previous_epoch
            elif previous_epoch is not None:
                assert epoch == previous_epoch + 1
            previous_key = (reason, ts)
            previous_epoch = epoch


# ---------------------------------------------------------------------------
# Compiler partitioning
# ---------------------------------------------------------------------------


class TestPartitionProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        tags=st.lists(
            st.one_of(st.none(), st.sampled_from(["p1", "p2", "p3"])),
            min_size=2,
            max_size=10,
        )
    )
    def test_every_operator_in_exactly_one_pe(self, tags):
        app = Application("Prop")
        g = app.graph
        prev = g.add_operator("op0", Beacon, partition=tags[0])
        for i, tag in enumerate(tags[1:-1], start=1):
            node = g.add_operator(
                f"op{i}", Functor, params={"fn": lambda t: t}, partition=tag
            )
            g.connect(prev.oport(0), node.iport(0))
            prev = node
        sink = g.add_operator(f"op{len(tags)-1}", Sink, partition=tags[-1])
        g.connect(prev.oport(0), sink.iport(0))
        compiled = SPLCompiler("manual").compile(app)
        seen = [name for pe in compiled.pes for name in pe.operators]
        assert sorted(seen) == sorted(g.operators)
        # same tag -> same PE
        by_tag = {}
        for name, spec in g.operators.items():
            if spec.partition:
                by_tag.setdefault(spec.partition, set()).add(
                    compiled.pe_of(name)
                )
        for pes in by_tag.values():
            assert len(pes) == 1
        # every edge endpoint placement is consistent with edge lists
        for edge in compiled.inter_pe_edges:
            assert compiled.pe_of(edge.src.full_name) != compiled.pe_of(
                edge.dst.full_name
            )
        for edge in compiled.intra_pe_edges:
            assert compiled.pe_of(edge.src.full_name) == compiled.pe_of(
                edge.dst.full_name
            )


# ---------------------------------------------------------------------------
# Relational engine
# ---------------------------------------------------------------------------


row_lists = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=30
)


class TestRelationProperties:
    @settings(max_examples=100, deadline=None)
    @given(rows=row_lists)
    def test_distinct_idempotent(self, rows):
        rel = Relation(("a", "b"), rows)
        once = rel.distinct()
        twice = once.distinct()
        assert once.rows == twice.rows
        assert len(once) == len(set(rows))

    @settings(max_examples=100, deadline=None)
    @given(rows=row_lists)
    def test_select_conjunction_commutes(self, rows):
        rel = Relation(("a", "b"), rows)
        p1 = lambda r: r["a"] % 2 == 0  # noqa: E731
        p2 = lambda r: r["b"] > 2  # noqa: E731
        assert (
            rel.select(p1).select(p2).rows == rel.select(p2).select(p1).rows
        )

    @settings(max_examples=100, deadline=None)
    @given(rows=row_lists, other=row_lists)
    def test_union_all_preserves_cardinality(self, rows, other):
        left = Relation(("a", "b"), rows)
        right = Relation(("a", "b"), other)
        assert len(left.union_all(right)) == len(rows) + len(other)

    @settings(max_examples=60, deadline=None)
    @given(rows=row_lists, other=row_lists)
    def test_equi_join_matches_theta_join(self, rows, other):
        left = Relation(("a", "b"), rows)
        right = Relation(("c", "d"), other)
        fast = left.equi_join(right, "a", "c")
        slow = left.join(right, lambda r: r["a"] == r["c"])
        assert sorted(fast.rows) == sorted(slow.rows)
