"""Tests for application sets and dependencies (Sec. 4.4)."""

import pytest

from repro import ManagedApplication, Orchestrator, OrcaDescriptor
from repro.errors import (
    DependencyCycleError,
    DependencyError,
    StarvationError,
)

from tests.conftest import make_linear_app


class PassiveOrca(Orchestrator):
    """Does nothing on its own; tests drive the service directly."""


def make_service(system, names):
    descriptor = OrcaDescriptor(
        name="DepOrca",
        logic=PassiveOrca,
        applications=[
            ManagedApplication(name=n, application=make_linear_app(n))
            for n in names
        ],
    )
    return system.submit_orchestrator(descriptor)


@pytest.fixture
def service(system):
    return make_service(system, ["A", "B", "C", "D"])


class TestConfigs:
    def test_create_config(self, service):
        config = service.deps.create_app_config("a", "A", params={"x": "1"})
        assert config.garbage_collectable is False
        assert service.deps.config("a") is config

    def test_duplicate_config_rejected(self, service):
        service.deps.create_app_config("a", "A")
        with pytest.raises(DependencyError):
            service.deps.create_app_config("a", "A")

    def test_unmanaged_app_rejected(self, service):
        with pytest.raises(DependencyError):
            service.deps.create_app_config("z", "NotManaged")

    def test_negative_gc_timeout_rejected(self, service):
        with pytest.raises(DependencyError):
            service.deps.create_app_config("a", "A", gc_timeout=-1)

    def test_unknown_config_lookup(self, service):
        with pytest.raises(DependencyError):
            service.deps.config("ghost")


class TestDependencyRegistration:
    def test_register_and_query(self, service):
        deps = service.deps
        deps.create_app_config("a", "A")
        deps.create_app_config("b", "B")
        deps.register_dependency("a", "b", uptime_requirement=10.0)
        assert deps.dependencies_of("a") == {"b": 10.0}
        assert deps.dependents_of("b") == {"a"}

    def test_self_dependency_rejected(self, service):
        service.deps.create_app_config("a", "A")
        with pytest.raises(DependencyCycleError):
            service.deps.register_dependency("a", "a")

    def test_cycle_rejected(self, service):
        """Sec. 4.4: registration error if the dependency creates a cycle."""
        deps = service.deps
        for cid, app in zip("abc", "ABC"):
            deps.create_app_config(cid, app)
        deps.register_dependency("a", "b")
        deps.register_dependency("b", "c")
        with pytest.raises(DependencyCycleError):
            deps.register_dependency("c", "a")

    def test_diamond_allowed(self, service):
        deps = service.deps
        for cid, app in zip("abcd", "ABCD"):
            deps.create_app_config(cid, app)
        deps.register_dependency("a", "b")
        deps.register_dependency("a", "c")
        deps.register_dependency("b", "d")
        deps.register_dependency("c", "d")
        assert deps.transitive_dependencies("a") == {"b", "c", "d"}

    def test_negative_uptime_rejected(self, service):
        deps = service.deps
        deps.create_app_config("a", "A")
        deps.create_app_config("b", "B")
        with pytest.raises(DependencyError):
            deps.register_dependency("a", "b", uptime_requirement=-5)

    def test_unknown_configs_rejected(self, service):
        service.deps.create_app_config("a", "A")
        with pytest.raises(DependencyError):
            service.deps.register_dependency("a", "ghost")


class TestSubmissionScheduling:
    def test_leaf_submitted_immediately(self, system, service):
        service.deps.create_app_config("a", "A")
        service.deps.start("a")
        system.run_for(1.0)
        assert service.deps.is_running("a")

    def test_dependency_closure_submitted(self, system, service):
        deps = service.deps
        deps.create_app_config("a", "A")
        deps.create_app_config("b", "B")
        deps.register_dependency("a", "b")
        deps.start("a")
        system.run_for(1.0)
        assert deps.is_running("a") and deps.is_running("b")

    def test_uptime_requirement_delays_dependent(self, system, service):
        deps = service.deps
        deps.create_app_config("a", "A")
        deps.create_app_config("b", "B")
        deps.register_dependency("a", "b", uptime_requirement=30.0)
        deps.start("a")
        system.run_for(1.0)
        assert deps.is_running("b")
        assert not deps.is_running("a")
        system.run_for(30.0)
        assert deps.is_running("a")
        assert deps.submit_time_of("a") == pytest.approx(30.0)

    def test_max_uptime_over_all_deps(self, system, service):
        deps = service.deps
        for cid, app in zip("abc", "ABC"):
            deps.create_app_config(cid, app)
        deps.register_dependency("a", "b", uptime_requirement=10.0)
        deps.register_dependency("a", "c", uptime_requirement=40.0)
        deps.start("a")
        system.run_for(15.0)
        assert not deps.is_running("a")
        system.run_for(30.0)
        assert deps.is_running("a")

    def test_unconnected_apps_not_submitted(self, system, service):
        """The snapshot cuts nodes not connected to the target."""
        deps = service.deps
        deps.create_app_config("a", "A")
        deps.create_app_config("d", "D")  # unrelated
        deps.start("a")
        system.run_for(1.0)
        assert deps.is_running("a")
        assert not deps.is_running("d")

    def test_shared_dependency_submitted_once(self, system, service):
        deps = service.deps
        for cid, app in zip("abc", "ABC"):
            deps.create_app_config(cid, app)
        deps.register_dependency("a", "c")
        deps.register_dependency("b", "c")
        deps.start("a")
        system.run_for(1.0)
        job_c = deps.job_id_of("c")
        deps.start("b")
        system.run_for(1.0)
        assert deps.job_id_of("c") == job_c  # reused, not restarted

    def test_start_already_running_upgrades_to_explicit(self, system, service):
        deps = service.deps
        deps.create_app_config("a", "A", garbage_collectable=True)
        deps.create_app_config("b", "B")
        deps.register_dependency("b", "a")
        deps.start("b")  # a submitted as a dependency (not explicit)
        system.run_for(1.0)
        deps.start("a")  # now explicit
        system.run_for(1.0)
        assert deps._records["a"].explicit

    def test_chain_staggered_submissions(self, system, service):
        deps = service.deps
        for cid, app in zip("abc", "ABC"):
            deps.create_app_config(cid, app)
        deps.register_dependency("a", "b", uptime_requirement=10.0)
        deps.register_dependency("b", "c", uptime_requirement=10.0)
        deps.start("a")
        system.run_for(1.0)
        assert deps.is_running("c")
        assert not deps.is_running("b")
        system.run_for(10.0)
        assert deps.is_running("b")
        assert not deps.is_running("a")
        system.run_for(10.0)
        assert deps.is_running("a")


class TestCancellationAndGC:
    def setup_chain(self, service, collectable=("b",), timeouts=None):
        """a depends on b; returns the deps manager."""
        timeouts = timeouts or {}
        deps = service.deps
        deps.create_app_config(
            "a", "A",
            garbage_collectable="a" in collectable,
            gc_timeout=timeouts.get("a", 0.0),
        )
        deps.create_app_config(
            "b", "B",
            garbage_collectable="b" in collectable,
            gc_timeout=timeouts.get("b", 0.0),
        )
        deps.register_dependency("a", "b")
        return deps

    def test_cancel_not_running_rejected(self, service):
        service.deps.create_app_config("a", "A")
        with pytest.raises(DependencyError):
            service.deps.cancel("a")

    def test_starvation_guard(self, system, service):
        """Sec. 4.4: cannot cancel an app feeding a running app."""
        deps = self.setup_chain(service)
        deps.start("a")
        system.run_for(1.0)
        with pytest.raises(StarvationError):
            deps.cancel("b")

    def test_gc_collects_unused_dependency(self, system, service):
        deps = self.setup_chain(service, collectable=("b",))
        deps.start("a")
        system.run_for(1.0)
        deps.cancel("a")
        system.run_for(1.0)
        assert not deps.is_running("b")

    def test_gc_skips_non_collectable(self, system, service):
        """Rule (i): not garbage collectable (like fox in Fig. 7)."""
        deps = self.setup_chain(service, collectable=())
        deps.start("a")
        system.run_for(1.0)
        deps.cancel("a")
        system.run_for(5.0)
        assert deps.is_running("b")

    def test_gc_skips_still_used(self, system, service):
        """Rule (ii): still feeding another running application."""
        deps = service.deps
        deps.create_app_config("a", "A")
        deps.create_app_config("c", "C")
        deps.create_app_config("b", "B", garbage_collectable=True)
        deps.register_dependency("a", "b")
        deps.register_dependency("c", "b")
        deps.start("a")
        deps.start("c")
        system.run_for(1.0)
        deps.cancel("a")
        system.run_for(5.0)
        assert deps.is_running("b")  # c still uses it

    def test_gc_skips_explicitly_submitted(self, system, service):
        """Rule (iii): explicitly submitted by the ORCA logic."""
        deps = self.setup_chain(service, collectable=("b",))
        deps.start("b")  # explicit
        system.run_for(1.0)
        deps.start("a")
        system.run_for(1.0)
        deps.cancel("a")
        system.run_for(5.0)
        assert deps.is_running("b")

    def test_gc_timeout_delays_collection(self, system, service):
        deps = self.setup_chain(service, collectable=("b",),
                                timeouts={"b": 10.0})
        deps.start("a")
        system.run_for(1.0)
        deps.cancel("a")
        system.run_for(5.0)
        assert deps.is_running("b")  # still within timeout
        assert deps.gc_queue() == ["b"]
        system.run_for(6.0)
        assert not deps.is_running("b")

    def test_gc_rescue_on_resubmission(self, system, service):
        """Sec. 4.4: an app enqueued for cancellation is rescued when a new
        submission needs it (avoiding an unnecessary restart)."""
        deps = self.setup_chain(service, collectable=("b",),
                                timeouts={"b": 10.0})
        deps.start("a")
        system.run_for(1.0)
        job_b = deps.job_id_of("b")
        deps.cancel("a")
        system.run_for(2.0)
        assert deps.gc_queue() == ["b"]
        deps.start("a")  # needs b again: rescue from the queue
        system.run_for(20.0)
        assert deps.is_running("b")
        assert deps.job_id_of("b") == job_b  # same job, never restarted

    def test_gc_cascades_down_chains(self, system, service):
        deps = service.deps
        deps.create_app_config("a", "A")
        deps.create_app_config("b", "B", garbage_collectable=True)
        deps.create_app_config("c", "C", garbage_collectable=True)
        deps.register_dependency("a", "b")
        deps.register_dependency("b", "c")
        deps.start("a")
        system.run_for(1.0)
        deps.cancel("a")
        system.run_for(2.0)
        assert not deps.is_running("b")
        assert not deps.is_running("c")

    def test_cascade_stops_at_non_collectable(self, system, service):
        deps = service.deps
        deps.create_app_config("a", "A")
        deps.create_app_config("b", "B", garbage_collectable=False)
        deps.create_app_config("c", "C", garbage_collectable=True)
        deps.register_dependency("a", "b")
        deps.register_dependency("b", "c")
        deps.start("a")
        system.run_for(1.0)
        deps.cancel("a")
        system.run_for(5.0)
        assert deps.is_running("b")  # not collectable
        assert deps.is_running("c")  # still used by b
