"""Unit tests for the use-case application operators."""

from repro.apps.datastore import CauseModelStore, CorpusStore, ProfileDataStore
from repro.apps.sentiment import (
    CauseMatcher,
    EmbeddedAdaptationActuator,
    EmbeddedAdaptationMonitor,
    SentimentClassifier,
)
from repro.apps.socialmedia import (
    DataStoreSource,
    ProfileEnricher,
    SentimentSegmenter,
)
from repro.apps.trend import RecordingSink, TrendCalculator, TrendRecorderHub
from repro.spl.tuples import Punctuation, StreamTuple

from tests.conftest import make_operator_harness


def tup(**values):
    return StreamTuple(values)


class TestSentimentClassifier:
    def make(self, product="iphone"):
        return make_operator_harness(
            SentimentClassifier, params={"product": product}
        )

    def test_off_topic_filtered(self):
        op, emitted = self.make()
        op._process(tup(text="android hate antenna"), 0)
        assert emitted == []
        assert op.metric("nOffTopic").value == 1

    def test_negative_classification(self):
        op, emitted = self.make()
        op._process(tup(text="iphone hate antenna"), 0)
        assert emitted[0][1]["sentiment"] == "neg"
        assert "tokens" in emitted[0][1].values

    def test_positive_classification(self):
        op, emitted = self.make()
        op._process(tup(text="iphone love today"), 0)
        assert emitted[0][1]["sentiment"] == "pos"

    def test_mixed_words_default_positive(self):
        op, emitted = self.make()
        op._process(tup(text="iphone love hate"), 0)
        assert emitted[0][1]["sentiment"] == "pos"


class TestCauseMatcher:
    def make(self, causes=("flash",), mirror=None):
        corpus = CorpusStore()
        models = CauseModelStore(tuple(causes))
        op, emitted = make_operator_harness(
            CauseMatcher,
            params={
                "model_store": models,
                "corpus": corpus,
                "metrics_mirror": mirror,
            },
        )
        return op, emitted, corpus, models

    def test_known_cause_matched(self):
        op, emitted, corpus, _ = self.make()
        op._process(
            tup(text="iphone hate flash", sentiment="neg",
                tokens=["iphone", "hate", "flash"]),
            0,
        )
        assert emitted[0][1]["cause"] == "flash"
        assert op.metric("nKnownCause").value == 1
        assert len(corpus) == 1  # negative tweets archived

    def test_unknown_cause_counted(self):
        op, emitted, _, _ = self.make()
        op._process(
            tup(text="iphone hate antenna", sentiment="neg",
                tokens=["iphone", "hate", "antenna"]),
            0,
        )
        assert emitted[0][1]["cause"] == "unknown"
        assert op.metric("nUnknownCause").value == 1

    def test_positive_tweets_ignored(self):
        op, emitted, corpus, _ = self.make()
        op._process(
            tup(text="iphone love", sentiment="pos", tokens=["iphone"]), 0
        )
        assert emitted == []
        assert len(corpus) == 0

    def test_hot_model_reload(self):
        op, emitted, _, models = self.make(causes=("flash",))
        op._process(
            tup(text="x", sentiment="neg", tokens=["antenna"]), 0
        )
        assert op.metric("nUnknownCause").value == 1
        models.publish(frozenset({"flash", "antenna"}), computed_at=1.0)
        op._process(
            tup(text="x", sentiment="neg", tokens=["antenna"]), 0
        )
        assert op.metric("nKnownCause").value == 1
        assert op.metric("nModelReloads").value == 1

    def test_mirror_updated(self):
        mirror = {}
        op, _, _, _ = self.make(mirror=mirror)
        op._process(tup(text="x", sentiment="neg", tokens=["flash"]), 0)
        assert mirror == {"nKnownCause": 1, "nUnknownCause": 0}


class TestEmbeddedAdaptation:
    def test_monitor_triggers_on_delta_ratio(self):
        mirror = {"nKnownCause": 0.0, "nUnknownCause": 0.0}
        op, emitted = make_operator_harness(
            EmbeddedAdaptationMonitor,
            params={"threshold": 1.0, "matcher_metrics": mirror, "smoothing": 1},
        )
        mirror.update(nKnownCause=10.0, nUnknownCause=1.0)
        op._process(tup(window=1), 0)
        assert emitted == []  # ratio 0.1
        mirror.update(nKnownCause=11.0, nUnknownCause=9.0)
        op._process(tup(window=2), 0)
        assert emitted and emitted[0][1]["trigger"] is True

    def test_actuator_rate_limits(self):
        calls = []
        op, _ = make_operator_harness(
            EmbeddedAdaptationActuator,
            params={"script": lambda: calls.append(1), "min_interval": 600.0},
        )
        op._process(tup(trigger=True, ratio=2.0), 0)
        op._process(tup(trigger=True, ratio=2.0), 0)
        assert len(calls) == 1
        assert op.metric("nTriggers").value == 1


class TestTrendCalculator:
    def test_emits_full_statistics(self):
        op, emitted = make_operator_harness(
            TrendCalculator, params={"window_span": 600.0}
        )
        op._test_clock["now"] = 10.0
        op._process(tup(symbol="IBM", price=100.0), 0)
        out = emitted[0][1]
        assert out["symbol"] == "IBM"
        assert out["min"] == out["max"] == out["avg"] == 100.0
        assert out["count"] == 1

    def test_windows_are_per_symbol(self):
        op, emitted = make_operator_harness(
            TrendCalculator, params={"window_span": 600.0}
        )
        op._process(tup(symbol="IBM", price=100.0), 0)
        op._process(tup(symbol="MSFT", price=50.0), 0)
        assert emitted[1][1]["avg"] == 50.0  # not mixed with IBM
        assert op.metric("nSymbols").value == 2

    def test_eviction_with_time(self):
        op, emitted = make_operator_harness(
            TrendCalculator, params={"window_span": 100.0}
        )
        op._test_clock["now"] = 0.0
        op._process(tup(symbol="IBM", price=100.0), 0)
        op._test_clock["now"] = 200.0
        op._process(tup(symbol="IBM", price=10.0), 0)
        out = emitted[-1][1]
        assert out["count"] == 1  # first trade evicted
        assert out["avg"] == 10.0

    def test_bollinger_brackets(self):
        op, emitted = make_operator_harness(
            TrendCalculator, params={"window_span": 600.0, "bollinger_k": 2.0}
        )
        for price in (90.0, 100.0, 110.0):
            op._process(tup(symbol="IBM", price=price), 0)
        out = emitted[-1][1]
        assert out["lower"] <= out["avg"] <= out["upper"]


class TestRecordingSink:
    def test_records_under_replica_key(self):
        hub = TrendRecorderHub()
        op, _ = make_operator_harness(
            RecordingSink,
            params={"hub": hub},
            submission_params={"replica": "2"},
        )
        op._process(
            tup(symbol="IBM", ts=1.0, min=1.0, max=2.0, avg=1.5,
                upper=2.0, lower=1.0, coverage=0.0, count=1),
            0,
        )
        assert hub.replicas() == ["2"]
        assert hub.points("2")[0].average == 1.5

    def test_hub_optional(self):
        op, _ = make_operator_harness(RecordingSink, params={"hub": None})
        op._process(
            tup(symbol="IBM", ts=1.0, min=1.0, max=2.0, avg=1.5,
                upper=2.0, lower=1.0, coverage=0.0, count=1),
            0,
        )  # no error


class TestProfileEnricher:
    def make(self, probability=1.0):
        store = ProfileDataStore()
        op, emitted = make_operator_harness(
            ProfileEnricher,
            params={
                "site": "facebook",
                "datastore": store,
                "discover_probability": probability,
                "seed": 5,
            },
        )
        return op, emitted, store

    def test_enriches_and_stores(self):
        op, emitted, store = self.make(probability=1.0)
        op._process(
            tup(profile_id="p1", sentiment="neg", attributes={"gender": "f"}),
            0,
        )
        stored = store.get("p1")
        assert stored["gender"] == "f"
        assert "age" in stored and "location" in stored  # discovered
        assert stored["sentiment"] == "neg"
        assert emitted[0][1]["site"] == "facebook"

    def test_attribute_metrics_count_duplicates(self):
        op, _, store = self.make(probability=1.0)
        for _ in range(3):
            op._process(
                tup(profile_id="p1", sentiment="neg", attributes={}), 0
            )
        assert op.metric("nProfiles_gender").value == 3  # duplicates counted
        assert len(store) == 1  # store deduplicates

    def test_no_discovery_at_zero_probability(self):
        op, _, store = self.make(probability=0.0)
        op._process(tup(profile_id="p1", sentiment="neg", attributes={}), 0)
        assert set(store.get("p1")) == {"sentiment"}
        assert op.metric("nProfiles_age").value == 0


class TestC3Operators:
    def test_datastore_source_emits_batches_then_final(self):
        store = ProfileDataStore()
        for i in range(5):
            store.upsert(f"p{i}", {"gender": "f", "sentiment": "neg"})
        store.upsert("nogender", {"age": 30, "sentiment": "neg"})
        op, emitted = make_operator_harness(
            DataStoreSource,
            params={"datastore": store, "batch_size": 2, "period": 0.5},
            submission_params={"attribute": "gender"},
        )
        op.on_initialize()
        # drain all scheduled batch emissions
        for _ in range(10):
            pending = [h for h in op._test_scheduled if not h.cancelled]
            if not pending:
                break
            handle = pending[-1]
            handle.cancel()
            handle.fn()
        tuples = [i for _, i in emitted if isinstance(i, StreamTuple)]
        finals = [i for _, i in emitted if i is Punctuation.FINAL]
        assert len(tuples) == 5  # only gendered profiles
        assert finals == [Punctuation.FINAL]

    def test_segmenter_aggregates_and_flushes_on_final(self):
        op, emitted = make_operator_harness(
            SentimentSegmenter, submission_params={"attribute": "gender"}
        )
        op._process(tup(profile_id="a", value="f", sentiment="neg"), 0)
        op._process(tup(profile_id="b", value="f", sentiment="pos"), 0)
        op._process(tup(profile_id="c", value="m", sentiment="neg"), 0)
        assert emitted == []  # nothing until final
        op._process(Punctuation.FINAL, 0)
        tuples = [i for _, i in emitted if isinstance(i, StreamTuple)]
        result = tuples[0]
        assert result["profiles"] == 3
        assert result["segmentation"]["f"] == {"neg": 1, "pos": 1}
        assert result["segmentation"]["m"] == {"neg": 1}
        assert (0, Punctuation.FINAL) in emitted  # forwarded

    def test_segmenter_age_bucketing(self):
        op, emitted = make_operator_harness(
            SentimentSegmenter, submission_params={"attribute": "age"}
        )
        op._process(tup(profile_id="a", value=34, sentiment="neg"), 0)
        op._process(tup(profile_id="b", value=37, sentiment="neg"), 0)
        op._process(Punctuation.FINAL, 0)
        tuples = [i for _, i in emitted if isinstance(i, StreamTuple)]
        assert tuples[0]["segmentation"] == {"30s": {"neg": 2}}
