"""Scenario/Campaign DSL hardening: validation errors, horizon and
jitter semantics, per-seed determinism of step resolution, and the
to_dict/from_dict serialization round-trip the fuzz corpus rides on."""

from __future__ import annotations

import json
import random

import pytest

from repro.chaos import (
    Campaign,
    ChaosError,
    CheckpointFault,
    HostFlap,
    KeySkewShift,
    LatencySpike,
    LinkLoss,
    LinkPartition,
    PEFlap,
    RateSurge,
    Rescale,
    Scenario,
    Step,
    gray_network,
    perturbation_from_dict,
    perturbation_to_dict,
    step,
    torn_checkpoints,
)


class TestValidation:
    def test_empty_scenario_rejected(self):
        with pytest.raises(ChaosError, match="no steps"):
            Scenario("empty").validate()

    def test_blank_name_rejected(self):
        with pytest.raises(ChaosError, match="name"):
            Scenario("  ").add(1.0, PEFlap(operator="x")).validate()

    def test_negative_at_rejected_with_step_index(self):
        scenario = Scenario("bad").add(1.0, PEFlap(operator="x"))
        scenario.add(-0.5, RateSurge())
        with pytest.raises(ChaosError, match="step 1.*'at'"):
            scenario.validate()

    def test_negative_jitter_rejected(self):
        scenario = Scenario("bad").add(1.0, PEFlap(operator="x"), jitter=-1.0)
        with pytest.raises(ChaosError, match="'jitter'"):
            scenario.validate()

    def test_non_finite_at_rejected(self):
        scenario = Scenario("bad").add(float("inf"), RateSurge())
        with pytest.raises(ChaosError, match="finite"):
            scenario.validate()

    def test_non_perturbation_payload_rejected(self):
        scenario = Scenario("bad", steps=[Step(at=1.0, perturbation="boom")])
        with pytest.raises(ChaosError, match="Perturbation"):
            scenario.validate()

    def test_valid_scenario_chains(self):
        scenario = Scenario("ok").add(0.0, RateSurge(factor=2.0))
        assert scenario.validate() is scenario

    def test_engine_rejects_invalid_scenarios_before_scheduling(self):
        from repro import SystemS

        system = SystemS(hosts=2)
        with pytest.raises(ChaosError, match="no steps"):
            system.chaos.run_scenario(Scenario("empty"))
        assert system.chaos.runs == []  # nothing was scheduled

    def test_campaign_validation(self):
        scenario = Scenario("ok").add(1.0, RateSurge())
        Campaign("c", scenario, seed=1, duration=5.0).validate()
        with pytest.raises(ChaosError, match="duration"):
            Campaign("c", scenario, duration=0.0).validate()
        with pytest.raises(ChaosError, match="seed"):
            Campaign("c", scenario, seed="42").validate()
        with pytest.raises(ChaosError, match="no steps"):
            Campaign("c", Scenario("empty")).validate()


class TestHorizonAndResolution:
    def test_horizon_includes_jitter_windows(self):
        scenario = Scenario("h").add(2.0, RateSurge()).add(
            5.0, RateSurge(), jitter=3.0
        )
        assert scenario.horizon() == pytest.approx(8.0)
        # the jittered step dominates even with a later nominal step
        scenario.add(7.5, RateSurge())
        assert scenario.horizon() == pytest.approx(8.0)

    def test_horizon_of_empty_scenario_is_zero(self):
        assert Scenario("h").horizon() == 0.0

    def test_resolve_at_without_jitter_is_exact(self):
        entry = step(3.25, RateSurge())
        assert entry.resolve_at(random.Random(1)) == 3.25

    def test_resolve_at_is_deterministic_per_seed(self):
        entry = step(1.0, RateSurge(), jitter=2.0)
        first = [entry.resolve_at(random.Random(7)) for _ in range(3)]
        second = [entry.resolve_at(random.Random(7)) for _ in range(3)]
        assert first == second
        assert first != [entry.resolve_at(random.Random(8)) for _ in range(3)]
        assert all(1.0 <= t < 3.0 for t in first)  # inside the window


ALL_PERTURBATIONS = [
    PEFlap(operator="work__c0", downtime=1.5, rehydrate=False),
    HostFlap(host="host3", downtime=2.0),
    LatencySpike(extra=0.05, duration=2.0, dst_host="host1"),
    LinkPartition(duration=0.8, dst_operator="work__c1"),
    LinkLoss(drop_probability=0.2, duration=1.0),
    RateSurge(factor=3.0, duration=None),
    KeySkewShift(hot_fraction=0.9, hot_keys=("k1", "k2"), duration=4.0),
    CheckpointFault(duration=2.5),
    Rescale(region="region", width=4),
]


class TestSerialization:
    @pytest.mark.parametrize(
        "perturbation", ALL_PERTURBATIONS, ids=lambda p: p.KIND
    )
    def test_perturbation_round_trip(self, perturbation):
        data = perturbation_to_dict(perturbation)
        json.dumps(data)  # JSON-safe
        rebuilt = perturbation_from_dict(data)
        assert type(rebuilt) is type(perturbation)
        assert perturbation_to_dict(rebuilt) == data

    def test_unknown_kind_rejected(self):
        with pytest.raises(ChaosError, match="unknown perturbation kind"):
            perturbation_from_dict({"kind": "meteor_strike", "params": {}})

    def test_bad_params_rejected(self):
        with pytest.raises(ChaosError, match="bad parameters"):
            perturbation_from_dict({"kind": "rescale", "params": {"nope": 1}})

    def test_scenario_round_trip_through_json(self):
        scenario = torn_checkpoints("work__c0", start=1.0, crash_after=1.02)
        data = scenario.to_dict()
        rebuilt = Scenario.from_dict(json.loads(json.dumps(data)))
        assert rebuilt.to_dict() == data
        assert rebuilt.name == scenario.name
        assert [s.perturbation.KIND for s in rebuilt.steps] == [
            s.perturbation.KIND for s in scenario.steps
        ]
        assert [s.at for s in rebuilt.steps] == [s.at for s in scenario.steps]

    def test_preset_with_jitter_round_trips(self):
        scenario = gray_network(waves=2, jitter=0.5)
        rebuilt = Scenario.from_dict(scenario.to_dict())
        assert [s.jitter for s in rebuilt.steps] == [
            s.jitter for s in scenario.steps
        ]

    def test_campaign_round_trip(self):
        campaign = Campaign(
            name="bench",
            scenario=Scenario("s").add(1.0, RateSurge(factor=2.0)),
            seed=7,
            duration=12.5,
            checkpointed=False,
            description="round trip",
        )
        data = json.loads(json.dumps(campaign.to_dict()))
        rebuilt = Campaign.from_dict(data)
        assert rebuilt.to_dict() == campaign.to_dict()
        assert rebuilt.checkpointed is False
        assert rebuilt.seed == 7

    def test_malformed_mappings_raise_chaos_errors(self):
        with pytest.raises(ChaosError, match="malformed step"):
            Step.from_dict({"jitter": 1.0})
        with pytest.raises(ChaosError, match="malformed scenario"):
            Scenario.from_dict({"steps": []})
        with pytest.raises(ChaosError, match="malformed campaign"):
            Campaign.from_dict({"name": "x"})

    def test_malformed_values_raise_chaos_errors_not_raw_exceptions(self):
        """Hand-edited corpus values must surface as ChaosError (the
        documented contract), never a bare TypeError/ValueError."""
        valid = Scenario("s").add(1.0, RateSurge()).to_dict()
        with pytest.raises(ChaosError, match="malformed step"):
            Step.from_dict({"at": None, "perturbation": valid["steps"][0]["perturbation"]})
        with pytest.raises(ChaosError, match="malformed campaign"):
            Campaign.from_dict(
                {"name": "c", "scenario": valid, "seed": "abc"}
            )
        with pytest.raises(ChaosError, match="malformed campaign"):
            Campaign.from_dict(
                {"name": "c", "scenario": valid, "duration": None}
            )
        with pytest.raises(ChaosError, match="malformed"):
            Scenario.from_dict({"name": "s", "steps": [None]})
