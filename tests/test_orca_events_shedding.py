"""Tests for the event queue internals, context aliases, and the
load-shedding adaptation path (Sec. 1 motivating example)."""

import pytest

from repro import ManagedApplication, Orchestrator, OrcaDescriptor, SystemS
from repro.orca.contexts import (
    OperatorMetricContext,
    PEFailureContext,
)
from repro.orca.events import EventQueue, OrcaEvent
from repro.orca.scopes import OperatorMetricScope
from repro.spl.library import LoadShedder
from repro.spl.tuples import StreamTuple

from tests.conftest import make_operator_harness


class TestEventQueue:
    def test_fifo_and_txn_assignment(self):
        queue = EventQueue()
        a = queue.push(OrcaEvent(event_type="a", context=None))
        b = queue.push(OrcaEvent(event_type="b", context=None))
        assert a.txn_id == 1 and b.txn_id == 2
        assert queue.pop() is a
        assert queue.pop() is b
        assert queue.pop() is None

    def test_delivered_counter(self):
        queue = EventQueue()
        queue.push(OrcaEvent(event_type="a", context=None))
        queue.pop()
        queue.pop()
        assert queue.delivered_count == 1

    def test_bool_and_len(self):
        queue = EventQueue()
        assert not queue
        queue.push(OrcaEvent(event_type="a", context=None))
        assert queue and len(queue) == 1


class TestQueueLatency:
    def test_latency_recorded_per_event(self):
        queue = EventQueue()
        event = queue.push(OrcaEvent(event_type="a", context=None, enqueued_at=10.0))
        assert event.queue_latency is None  # not delivered yet
        queue.pop()
        latency = queue.record_delivery(event, now=10.25)
        assert latency == pytest.approx(0.25)
        assert event.delivered_at == 10.25
        assert event.queue_latency == pytest.approx(0.25)

    def test_stats_aggregate_mean_max_last(self):
        queue = EventQueue()
        for enqueued, delivered in [(0.0, 1.0), (2.0, 2.5), (3.0, 3.1)]:
            event = queue.push(
                OrcaEvent(event_type="a", context=None, enqueued_at=enqueued)
            )
            queue.pop()
            queue.record_delivery(event, now=delivered)
        stats = queue.latency_stats()
        assert stats.delivered == 3
        assert stats.mean == pytest.approx((1.0 + 0.5 + 0.1) / 3)
        assert stats.maximum == pytest.approx(1.0)
        assert stats.last == pytest.approx(0.1)

    def test_empty_queue_stats_are_zero(self):
        stats = EventQueue().latency_stats()
        assert stats.delivered == 0
        assert stats.mean == stats.maximum == stats.last == 0.0

    def test_service_surfaces_latency_stats(self):
        """End-to-end: delivered events feed the service's inspection API."""
        system = SystemS(hosts=1)

        class Recording(Orchestrator):
            def handleOrcaStart(self, context):
                from repro.orca.scopes import UserEventScope

                self.orca.registerEventScope(UserEventScope("u"))

        service = system.submit_orchestrator(
            OrcaDescriptor(name="Lat", logic=Recording, applications=[])
        )
        system.run_for(0.1)
        for i in range(5):
            service.inject_user_event("tick", {"i": i})
        system.run_for(0.1)
        stats = service.queue_latency_stats()
        assert stats.delivered == 6  # orca_start + 5 user events
        assert stats.mean >= 0.0 and stats.maximum >= stats.last
        # every journaled event carries its delivery stamp
        assert all(e.delivered_at is not None for e in service.event_journal)
        assert all(e.queue_latency is not None for e in service.event_journal)


class TestContextAliases:
    def test_operator_metric_camel_case(self):
        ctx = OperatorMetricContext(
            instance_name="op3", operator_kind="Split", metric="queueSize",
            value=1.0, epoch=2, job_id="j", app_name="A", pe_id="pe_1",
            collection_ts=0.0, is_custom=False,
        )
        assert ctx.instanceName == "op3"  # paper's Fig. 6 spelling

    def test_pe_failure_camel_case(self):
        ctx = PEFailureContext(
            pe_id="pe_9", pe_index=1, job_id="j", app_name="A",
            reason="crash", detection_ts=1.0, epoch=1, host="h",
        )
        assert ctx.peId == "pe_9"

    def test_contexts_frozen(self):
        ctx = PEFailureContext(
            pe_id="pe_9", pe_index=1, job_id="j", app_name="A",
            reason="crash", detection_ts=1.0, epoch=1, host="h",
        )
        with pytest.raises(Exception):
            ctx.pe_id = "other"


class TestLoadShedderOperator:
    def test_passthrough_by_default(self):
        op, emitted = make_operator_harness(LoadShedder)
        for i in range(50):
            op._process(StreamTuple({"i": i}), 0)
        assert len(emitted) == 50
        assert op.metric("nShed").value == 0

    def test_full_shedding(self):
        op, emitted = make_operator_harness(LoadShedder, params={"fraction": 1.0})
        for i in range(50):
            op._process(StreamTuple({"i": i}), 0)
        assert emitted == []
        assert op.metric("nShed").value == 50

    def test_control_command_adjusts_fraction(self):
        op, emitted = make_operator_harness(LoadShedder)
        op.on_control("setSheddingFraction", {"fraction": 1.0})
        op._process(StreamTuple({"i": 1}), 0)
        assert emitted == []
        op.on_control("setSheddingFraction", {"fraction": 0.0})
        op._process(StreamTuple({"i": 2}), 0)
        assert len(emitted) == 1

    def test_fraction_clamped(self):
        op, _ = make_operator_harness(LoadShedder)
        op.on_control("setSheddingFraction", {"fraction": 3.0})
        assert op.fraction == 1.0
        op.on_control("setSheddingFraction", {"fraction": -1.0})
        assert op.fraction == 0.0

    def test_partial_shedding_approximates_fraction(self):
        op, emitted = make_operator_harness(
            LoadShedder, params={"fraction": 0.5, "seed": 3}
        )
        for i in range(400):
            op._process(StreamTuple({"i": i}), 0)
        passed = len(emitted)
        assert 140 <= passed <= 260  # ~50% with seeded variance


class SheddingPolicy(Orchestrator):
    """Minimal backlog-driven shedding policy for the integration test."""

    def __init__(self):
        super().__init__()
        self.job = None
        self.commands = []

    def handleOrcaStart(self, context):
        scope = OperatorMetricScope("backlog")
        scope.addOperatorInstanceFilter("slow").addOperatorMetric("nBuffered")
        self.orca.registerEventScope(scope)
        self.job = self.orca.submit_application("Bursty")

    def handleOperatorMetricEvent(self, context, scopes):
        if context.value > 30:
            self.orca.send_control(
                self.job.job_id, "shed", "setSheddingFraction",
                {"fraction": 0.8},
            )
            self.commands.append(self.orca.now)


class TestLoadSheddingIntegration:
    def build_app(self):
        from repro.spl import Application
        from repro.spl.library import CallbackSource, Sink, Throttle

        def generate(now, count):
            rate = 25 if now >= 30.0 else 3
            return [{"seq": count + i} for i in range(rate)]

        app = Application("Bursty")
        g = app.graph
        src = g.add_operator(
            "src", CallbackSource,
            params={"generator": generate, "period": 1.0}, partition="p1",
        )
        shed = g.add_operator("shed", LoadShedder, partition="p1")
        slow = g.add_operator("slow", Throttle, params={"rate": 6.0},
                              partition="p2")
        sink = g.add_operator("sink", Sink, params={"record": False},
                              partition="p2")
        g.connect(src.oport(0), shed.iport(0))
        g.connect(shed.oport(0), slow.iport(0))
        g.connect(slow.oport(0), sink.iport(0))
        return app

    def test_orchestrator_sheds_under_overload(self):
        system = SystemS(hosts=2, seed=42)
        logic = SheddingPolicy()
        system.submit_orchestrator(
            OrcaDescriptor(
                name="Shed",
                logic=lambda: logic,
                applications=[
                    ManagedApplication(name="Bursty", application=self.build_app())
                ],
                metric_poll_interval=5.0,
            )
        )
        system.run_for(120.0)
        assert logic.commands, "policy never reacted to the backlog"
        shed_op = logic.job.operator_instance("shed")
        assert shed_op.metric("nShed").value > 0
        assert shed_op.fraction == 0.8
