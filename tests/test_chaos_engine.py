"""Tests for the repro.chaos subsystem: perturbations, DSL, engine,
scorecards, the hardened failure injector, and the ORCA chaos surface."""

from __future__ import annotations

import pytest

from repro import (
    ManagedApplication,
    Orchestrator,
    OrcaDescriptor,
    SystemConfig,
    SystemS,
)
from repro.apps.workloads import ChaosFeed
from repro.chaos import (
    CheckpointFault,
    CrashPE,
    KeySkewShift,
    LatencySpike,
    PEFlap,
    RateSurge,
    Scenario,
    collect_scorecard,
    flash_crowd,
    gray_network,
    live_keyed_state,
    rolling_channel_outage,
    rolling_host_outage,
    state_recovery_fraction,
    step,
    torn_checkpoints,
    tuple_accounting,
)
from repro.orca.scopes import ChaosScope
from repro.runtime.pe import PEState
from repro.spl.application import Application
from repro.spl.library import CallbackSource, KeyedCounter, Sink
from repro.spl.parallel import parallel


def build_keyed_app(feed, width=2, name="ChaosApp", period=0.05):
    app = Application(name)
    g = app.graph
    src = g.add_operator(
        "src",
        CallbackSource,
        params={"generator": feed.generator(), "period": period},
        partition="feed",
    )
    work = g.add_operator(
        "work",
        KeyedCounter,
        params={"key": "key"},
        parallel=parallel(
            width=width,
            name="region",
            partition_by="key",
            max_width=8,
            reorder_grace=1.0,
        ),
    )
    sink = g.add_operator("sink", Sink, partition="out")
    g.connect(src.oport(0), work.iport(0))
    g.connect(work.oport(0), sink.iport(0))
    return app


def chaos_system(hosts=10, seed=42, checkpoint_interval=0.25):
    return SystemS(
        hosts=hosts,
        seed=seed,
        config=SystemConfig(
            checkpoint_interval=checkpoint_interval,
            failure_notification_delay=0.001,
        ),
    )


# ---------------------------------------------------------------------------
# hardened failure injector
# ---------------------------------------------------------------------------


class TestFailureInjector:
    def test_per_kind_counters(self):
        system = chaos_system()
        feed = ChaosFeed(seed=3)
        job = system.submit_job(build_keyed_app(feed))
        system.run_for(1.0)
        pe = job.pe_of_operator("work__c0")
        system.failures.crash_pe(job.job_id, pe_id=pe.pe_id)
        system.failures.restart_pe(job.job_id, pe.pe_id)
        system.run_for(2.0)
        stats = system.failures.stats()
        assert stats.by_kind == {"crash_pe": 1, "restart_pe": 1}
        assert stats.injected == 2

    def test_crash_on_non_running_pe_is_recorded_noop(self):
        system = chaos_system()
        feed = ChaosFeed(seed=3)
        job = system.submit_job(build_keyed_app(feed))
        system.run_for(1.0)
        pe = job.pe_of_operator("work__c0")
        pe.crash("first")
        before = system.failures.injected
        system.failures.crash_pe(job.job_id, pe_id=pe.pe_id)
        assert system.failures.injected == before
        assert len(system.failures.noops) == 1
        noop = system.failures.noops[0]
        assert noop.kind == "crash_pe"
        assert noop.target == pe.pe_id
        assert noop.reason == "pe_crashed"

    def test_scheduled_injection_is_cancellable(self):
        system = chaos_system()
        feed = ChaosFeed(seed=3)
        job = system.submit_job(build_keyed_app(feed))
        system.run_for(1.0)
        pe = job.pe_of_operator("work__c0")
        handle = system.failures.crash_pe(job.job_id, pe_id=pe.pe_id, at=5.0)
        assert handle is not None
        assert system.failures.pending_count() == 1
        handle.cancel()
        system.run_for(6.0)
        assert pe.state is PEState.RUNNING
        assert system.failures.injected == 0

    def test_cancel_all_retracts_pending(self):
        system = chaos_system()
        feed = ChaosFeed(seed=3)
        job = system.submit_job(build_keyed_app(feed))
        system.run_for(1.0)
        system.failures.crash_pe(job.job_id, pe_id=job.pes[0].pe_id, at=5.0)
        system.failures.fail_host(job.pes[0].host_name, at=6.0)
        assert system.failures.cancel_all() == 2
        system.run_for(7.0)
        assert system.failures.injected == 0
        assert all(pe.state is PEState.RUNNING for pe in job.pes)

    def test_scheduled_restart_of_removed_pe_is_recorded_noop(self):
        """A flap's scheduled restart racing a rescale that removed the
        PE must be a recorded no-op, never an exception into the kernel
        (found by the corpus replay of the doomed-channel race)."""
        system = chaos_system()
        feed = ChaosFeed(seed=3)
        job = system.submit_job(build_keyed_app(feed, width=3))
        system.run_for(1.0)
        doomed = job.pe_of_operator("work__c2")
        doomed.crash("chaos")
        system.failures.restart_pe(
            job.job_id, doomed.pe_id, at=system.now + 3.0
        )
        system.elastic.set_channel_width(job, "region", 2)
        system.run_for(5.0)  # the rescale removes the PE, then the restart fires
        assert job.compiled.parallel_regions["region"].width == 2
        noop = system.failures.noops[-1]
        assert noop.kind == "restart_pe"
        assert noop.reason == "pe_removed"

    def test_revive_host_roundtrip_and_noops(self):
        system = chaos_system()
        host = next(iter(system.hcs))
        system.failures.fail_host(host)
        assert not system.hcs[host].alive
        system.failures.fail_host(host)  # second kill: recorded no-op
        system.failures.revive_host(host)
        assert system.hcs[host].alive
        system.failures.revive_host(host)  # second revive: recorded no-op
        assert [n.kind for n in system.failures.noops] == [
            "fail_host",
            "revive_host",
        ]
        assert system.failures.by_kind == {"fail_host": 1, "revive_host": 1}


# ---------------------------------------------------------------------------
# scenario DSL + engine
# ---------------------------------------------------------------------------


class TestEngine:
    def test_steps_fire_in_order_and_are_journaled(self):
        system = chaos_system()
        feed = ChaosFeed(seed=3)
        job = system.submit_job(build_keyed_app(feed))
        system.run_for(1.0)
        scenario = Scenario("two_flaps").add(
            1.0, PEFlap(operator="work__c0", downtime=0.5)
        ).add(3.0, PEFlap(operator="work__c1", downtime=0.5))
        run = system.chaos.run_scenario(scenario, job=job, feed=feed)
        system.run_for(8.0)
        assert [i.kind for i in run.injections] == ["pe_flap", "pe_flap"]
        assert run.injections[0].time == pytest.approx(2.0)
        assert run.injections[1].time == pytest.approx(4.0)
        assert run.done
        # engine-level journal mirrors the run
        assert system.chaos.injections == run.injections

    def test_recovery_times_are_stamped(self):
        system = chaos_system()
        feed = ChaosFeed(seed=3)
        job = system.submit_job(build_keyed_app(feed))
        system.run_for(1.0)
        scenario = Scenario("flap").add(
            0.5, PEFlap(operator="work__c0", downtime=1.0)
        )
        run = system.chaos.run_scenario(scenario, job=job, feed=feed)
        system.run_for(5.0)
        injection = run.injections[0]
        # downtime (1.0) + SAM restart delay (1.0)
        assert injection.recovery_time == pytest.approx(2.0)

    def test_jittered_schedule_is_deterministic_per_seed(self):
        def times(seed):
            system = chaos_system(seed=seed)
            feed = ChaosFeed(seed=3)
            job = system.submit_job(build_keyed_app(feed))
            system.run_for(1.0)
            scenario = Scenario("jittered").add(
                1.0, PEFlap(operator="work__c0", downtime=0.5), jitter=2.0
            ).add(4.0, PEFlap(operator="work__c1", downtime=0.5), jitter=2.0)
            run = system.chaos.run_scenario(scenario, job=job, feed=feed)
            return list(run.step_times)

        assert times(7) == times(7)
        assert times(7) != times(8)  # different seed, different schedule
        # jitter stays inside its window
        t0, t1 = times(7)
        assert 2.0 <= t0 < 4.0 and 5.0 <= t1 < 7.0

    def test_step_errors_are_recorded_not_raised(self):
        system = chaos_system()
        feed = ChaosFeed(seed=3)
        job = system.submit_job(build_keyed_app(feed))
        system.run_for(1.0)
        # RateSurge without a feed is a step error, not a kernel crash
        scenario = Scenario("bad").add(0.5, RateSurge(factor=2.0))
        run = system.chaos.run_scenario(scenario, job=job, feed=None)
        system.run_for(2.0)
        assert len(run.errors) == 1 and run.errors[0][0] == 0
        assert run.injections == []
        assert run.done

    def test_cancel_run_retracts_future_steps(self):
        system = chaos_system()
        feed = ChaosFeed(seed=3)
        job = system.submit_job(build_keyed_app(feed))
        system.run_for(1.0)
        scenario = Scenario("two").add(
            0.5, PEFlap(operator="work__c0", downtime=0.5)
        ).add(10.0, PEFlap(operator="work__c1", downtime=0.5))
        run = system.chaos.run_scenario(scenario, job=job, feed=feed)
        system.run_for(2.0)
        assert system.chaos.cancel_run(run) == 1
        system.run_for(12.0)
        assert len(run.injections) == 1
        assert run.done

    def test_crash_injections_capture_state_at_crash(self):
        system = chaos_system()
        feed = ChaosFeed(seed=3)
        job = system.submit_job(build_keyed_app(feed))
        system.run_for(3.0)
        scenario = Scenario("crash").add(0.02, CrashPE(operator="work__c0"))
        run = system.chaos.run_scenario(scenario, job=job, feed=feed)
        system.run_for(1.0)
        snapshot = run.injections[0].detail["_state_at_crash"]
        assert snapshot.get("counts")  # KeyedCounter state captured
        # private keys never leak into the public/event view
        assert "_state_at_crash" not in run.injections[0].public_detail()

    def test_srm_gauges_published(self):
        system = chaos_system()
        feed = ChaosFeed(seed=3)
        job = system.submit_job(build_keyed_app(feed))
        system.run_for(1.0)
        scenario = Scenario("gauged").add(
            0.5, PEFlap(operator="work__c0", downtime=0.5)
        )
        system.chaos.run_scenario(scenario, job=job, feed=feed)
        system.run_for(3.0)
        assert (
            system.srm.metric_value(
                "__chaos__", "chaos:gauged", None, "chaosInjections"
            )
            == 1.0
        )
        assert (
            system.srm.metric_value(
                "__chaos__", "chaos:gauged", None, "chaosInjections.pe_flap"
            )
            == 1.0
        )


# ---------------------------------------------------------------------------
# perturbations over transport, feed, and checkpoints
# ---------------------------------------------------------------------------


class TestPerturbations:
    def test_latency_spike_delays_but_loses_nothing(self):
        system = chaos_system()
        feed = ChaosFeed(seed=3, base_rate=2)
        job = system.submit_job(build_keyed_app(feed))
        system.run_for(2.0)
        scenario = Scenario("slow").add(
            0.5, LatencySpike(extra=0.1, duration=2.0)
        )
        run = system.chaos.run_scenario(scenario, job=job, feed=feed)
        system.run_for(10.0)
        assert run.injections[0].kind == "latency_spike"
        sink_op = job.operator_instance("sink")
        seqs = [t["seq"] for t in sink_op.seen]
        received, lost, dups = tuple_accounting(seqs, feed.emitted)
        # delays only: a fully drained run loses and duplicates nothing
        assert lost <= feed.base_rate  # at most the last in-flight tick
        assert dups == 0
        assert system.transport.dropped_by_fault == 0

    def test_rate_surge_and_skew_shift_and_revert(self):
        system = chaos_system()
        feed = ChaosFeed(seed=3, base_rate=2, n_keys=8)
        job = system.submit_job(build_keyed_app(feed))
        system.run_for(1.0)
        scenario = Scenario("crowd").add(
            0.5, RateSurge(factor=3.0, duration=2.0)
        ).add(0.5, KeySkewShift(hot_fraction=1.0, hot_keys=("k0",), duration=2.0))
        run = system.chaos.run_scenario(scenario, job=job, feed=feed)
        system.run_for(2.0)  # mid-surge
        assert feed.rate_factor == 3.0
        assert feed.hot_fraction == 1.0
        system.run_for(1.5)  # past the surge window
        assert feed.rate_factor == 1.0
        assert feed.hot_fraction == 0.0
        assert {i.kind for i in run.injections} == {"rate_surge", "key_skew"}

    def test_checkpoint_fault_tears_commits_then_disarms(self):
        system = chaos_system(checkpoint_interval=0.2)
        feed = ChaosFeed(seed=3, base_rate=2)
        job = system.submit_job(build_keyed_app(feed))
        system.run_for(2.0)
        committed_before = sum(1 for r in system.checkpoints.records if r.committed)
        assert committed_before > 0
        scenario = Scenario("torn").add(0.1, CheckpointFault(duration=1.0))
        system.chaos.run_scenario(scenario, job=job, feed=feed)
        system.run_for(1.0)  # inside the window
        torn = [r for r in system.checkpoints.records if not r.committed]
        assert torn  # every round in the window stayed torn
        system.run_for(2.0)  # window closed
        assert system.checkpoints.commit_fault is None
        assert any(
            r.committed
            for r in system.checkpoints.records
            if r.time > torn[-1].time
        )

    def test_host_flap_preset_revives_and_restarts(self):
        system = chaos_system()
        feed = ChaosFeed(seed=3)
        job = system.submit_job(build_keyed_app(feed))
        system.run_for(1.0)
        victim = job.pe_of_operator("work__c0").host_name
        scenario = rolling_host_outage([victim], start=1.0, downtime=1.0)
        run = system.chaos.run_scenario(scenario, job=job, feed=feed)
        system.run_for(8.0)
        assert run.injections[0].kind == "host_flap"
        assert system.hcs[victim].alive
        assert all(pe.state is PEState.RUNNING for pe in job.pes)
        assert run.injections[0].recovery_time is not None

    def test_preset_builders_produce_expected_shapes(self):
        assert len(rolling_channel_outage(["a", "b", "c"]).steps) == 3
        assert len(gray_network(waves=2).steps) == 4
        crowd = flash_crowd(rescale_region="region", rescale_width=4)
        assert [s.perturbation.KIND for s in crowd.steps] == [
            "rate_surge",
            "key_skew",
            "rescale",
        ]
        torn = torn_checkpoints("work__c0")
        assert [s.perturbation.KIND for s in torn.steps] == [
            "checkpoint_fault",
            "pe_flap",
        ]


# ---------------------------------------------------------------------------
# ORCA surface: chaos_injected events, ChaosScope, chaos_status
# ---------------------------------------------------------------------------


class _ChaosAware(Orchestrator):
    def __init__(self, scope=None):
        super().__init__()
        self.scope = scope
        self.seen = []
        self.job = None

    def handleOrcaStart(self, context):
        if self.scope is not None:
            self.orca.registerEventScope(self.scope)
        self.job = self.orca.submit_application("ChaosApp")

    def handleChaosInjectedEvent(self, context, scopes):
        self.seen.append((context.kind, context.target, tuple(scopes)))


def orchestrated_system(feed, scope):
    system = chaos_system()
    app = build_keyed_app(feed)
    logic = _ChaosAware(scope)
    service = system.submit_orchestrator(
        OrcaDescriptor(
            name="C",
            logic=lambda: logic,
            applications=[ManagedApplication(name=app.name, application=app)],
        )
    )
    system.run_for(1.0)
    return system, service, logic


class TestOrcaChaosSurface:
    def test_chaos_injected_events_delivered_with_scope(self):
        feed = ChaosFeed(seed=3)
        system, service, logic = orchestrated_system(feed, ChaosScope("c"))
        scenario = Scenario("seen").add(
            0.5, PEFlap(operator="work__c0", downtime=0.5)
        )
        system.chaos.run_scenario(scenario, job=logic.job, feed=feed)
        system.run_for(3.0)
        assert logic.seen and logic.seen[0][0] == "pe_flap"
        assert logic.seen[0][2] == ("c",)

    def test_blind_orchestrator_sees_nothing(self):
        feed = ChaosFeed(seed=3)
        system, service, logic = orchestrated_system(feed, None)
        scenario = Scenario("blind").add(
            0.5, PEFlap(operator="work__c0", downtime=0.5)
        )
        system.chaos.run_scenario(scenario, job=logic.job, feed=feed)
        system.run_for(3.0)
        assert logic.seen == []

    def test_kind_filter_narrows_delivery(self):
        feed = ChaosFeed(seed=3)
        scope = ChaosScope("only-load").addKindFilter("rate_surge")
        system, service, logic = orchestrated_system(feed, scope)
        scenario = Scenario("mixed").add(
            0.5, PEFlap(operator="work__c0", downtime=0.5)
        ).add(1.0, RateSurge(factor=2.0, duration=1.0))
        system.chaos.run_scenario(scenario, job=logic.job, feed=feed)
        system.run_for(4.0)
        assert [kind for kind, _, _ in logic.seen] == ["rate_surge"]

    def test_chaos_status_inspection(self):
        feed = ChaosFeed(seed=3)
        system, service, logic = orchestrated_system(feed, ChaosScope("c"))
        scenario = Scenario("status").add(
            0.5, PEFlap(operator="work__c0", downtime=0.5)
        )
        system.chaos.run_scenario(scenario, job=logic.job, feed=feed)
        system.run_for(3.0)
        status = service.chaos_status()
        assert status["runs"] == 1
        assert status["injections"] == 1
        assert status["injector"]["by_kind"] == {
            "crash_pe": 1,
            "restart_pe": 1,
        }
        assert status["last_injection"]["kind"] == "pe_flap"

    def test_chaos_status_surfaces_link_faults_and_run_progress(self):
        """The status snapshot must carry the injector's stats, an
        active-link-fault breakdown by effect, and run progress totals —
        what makes a long fuzz search inspectable from ORCA mid-flight."""
        feed = ChaosFeed(seed=3)
        system, service, logic = orchestrated_system(feed, ChaosScope("c"))
        scenario = Scenario("inspect").add(
            0.5, PEFlap(operator="work__c0", downtime=0.5)
        ).add(
            1.0, LatencySpike(extra=0.05, duration=30.0)
        ).add(5.0, RateSurge(factor=0.0))  # invalid factor: a step error
        system.chaos.run_scenario(scenario, job=logic.job, feed=feed)
        system.run_for(8.0)
        status = service.chaos_status()
        assert status["runs"] == 1 and status["runs_done"] == 1
        assert status["injections"] == 2
        assert status["step_errors"] == 1
        assert status["cancelled_steps"] == 0
        assert status["active_link_faults"] == 1
        assert status["active_link_faults_by_effect"] == {
            "latency": 1,
            "partition": 0,
            "loss": 0,
        }
        # the injector's stats() payload rides along untruncated
        assert status["injector"]["by_kind"] == {
            "crash_pe": 1,
            "restart_pe": 1,
        }
        assert status["injector"]["pending"] == 0

    def test_shutdown_unregisters_chaos_listener(self):
        feed = ChaosFeed(seed=3)
        system, service, logic = orchestrated_system(feed, ChaosScope("c"))
        system.cancel_orchestrator(service.orca_id)
        assert service._on_chaos_injected not in system.chaos.injection_listeners


# ---------------------------------------------------------------------------
# scorecards
# ---------------------------------------------------------------------------


class TestScorecard:
    def test_tuple_accounting(self):
        received, lost, dups = tuple_accounting([0, 1, 1, 3], 5)
        assert (received, lost, dups) == (3, 2, 1)

    def test_state_recovery_fraction_numeric_and_presence(self):
        assert state_recovery_fraction({"a": 10}, {"a": 10}) == 1.0
        assert state_recovery_fraction({"a": 10}, {"a": 5}) == 0.5
        assert state_recovery_fraction({"a": 10, "b": 10}, {"a": 10}) == 0.5
        # non-numeric values count by key presence
        assert state_recovery_fraction({"a": "x"}, {"a": "y"}) == 1.0
        assert state_recovery_fraction({}, {}) == 1.0

    def test_collect_scorecard_and_render_deterministic(self):
        def one_run():
            system = chaos_system()
            feed = ChaosFeed(seed=3, base_rate=2)
            job = system.submit_job(build_keyed_app(feed))
            system.run_for(3.0)
            scenario = Scenario("score").add(
                0.02, PEFlap(operator="work__c0", downtime=1.0)
            )
            run = system.chaos.run_scenario(scenario, job=job, feed=feed)
            system.run_for(10.0)
            sink_op = job.operator_instance("sink")
            seqs = [t["seq"] for t in sink_op.seen]
            plan = job.compiled.parallel_regions["region"]
            final = live_keyed_state(
                job, [op for ops in plan.channel_ops for op in ops]
            )
            return collect_scorecard(
                system, run, 42, seqs, feed.emitted, final_state=final
            ).render()

        first, second = one_run(), one_run()
        assert first == second  # byte-identical across repeat runs
        assert "scenario: score" in first

    def test_scorecard_gauges_in_srm(self):
        system = chaos_system()
        feed = ChaosFeed(seed=3)
        job = system.submit_job(build_keyed_app(feed))
        system.run_for(2.0)
        scenario = Scenario("gauges").add(
            0.02, PEFlap(operator="work__c0", downtime=0.5)
        )
        run = system.chaos.run_scenario(scenario, job=job, feed=feed)
        system.run_for(5.0)
        sink_op = job.operator_instance("sink")
        collect_scorecard(
            system,
            run,
            42,
            [t["seq"] for t in sink_op.seen],
            feed.emitted,
        )
        assert (
            system.srm.metric_value(
                "__chaos__", "chaos:gauges", None, "chaosStateRecovery"
            )
            is not None
        )


class TestOverlapSafety:
    def test_overlapping_checkpoint_fault_windows_stack(self):
        """Two overlapping commit-fault windows: commits stay torn until
        BOTH have expired, then resume (regression: the second window's
        expiry used to restore the first window's armed hook forever)."""
        system = chaos_system(checkpoint_interval=0.2)
        feed = ChaosFeed(seed=3, base_rate=2)
        job = system.submit_job(build_keyed_app(feed))
        system.run_for(2.0)
        scenario = Scenario("overlap").add(
            0.1, CheckpointFault(duration=2.0)
        ).add(1.0, CheckpointFault(duration=2.0))
        system.chaos.run_scenario(scenario, job=job, feed=feed)
        system.run_for(2.5)  # first window expired, second still open
        assert system.checkpoints.commit_fault is not None
        recent = [r for r in system.checkpoints.records if r.time > 2.2]
        assert recent and not any(r.committed for r in recent)
        system.run_for(1.5)  # both windows closed
        assert system.checkpoints.commit_fault is None
        tail = [r for r in system.checkpoints.records if r.time > 5.2]
        assert tail and all(r.committed for r in tail)

    def test_overlapping_rate_surges_compose_multiplicatively(self):
        system = chaos_system()
        feed = ChaosFeed(seed=3, base_rate=2)
        job = system.submit_job(build_keyed_app(feed))
        system.run_for(1.0)
        scenario = Scenario("surges").add(
            0.5, RateSurge(factor=2.0, duration=3.0)
        ).add(1.5, RateSurge(factor=3.0, duration=3.0))
        system.chaos.run_scenario(scenario, job=job, feed=feed)
        system.run_for(3.0)  # both surges active
        assert feed.rate_factor == pytest.approx(6.0)
        system.run_for(1.0)  # first expired (at +3.5), second still open
        assert feed.rate_factor == pytest.approx(3.0)
        system.run_for(1.5)  # both expired
        assert feed.rate_factor == pytest.approx(1.0)


class TestExternalRescaleVisibility:
    def test_chaos_rescale_refreshes_orca_graph_and_delivers_events(self):
        """A rescale driven by the chaos engine (not the ORCA service)
        still refreshes the orchestrator's stream graph and delivers
        region_rescaled — routines are not blind to external rescales."""
        from repro.chaos import Rescale
        from repro.orca.scopes import ParallelRegionScope

        feed = ChaosFeed(seed=3)
        system = chaos_system()
        app = build_keyed_app(feed)

        class Logic(Orchestrator):
            def __init__(self):
                super().__init__()
                self.job = None
                self.rescaled = []

            def handleOrcaStart(self, context):
                self.orca.registerEventScope(ParallelRegionScope("r"))
                self.job = self.orca.submit_application("ChaosApp")

            def handleRegionRescaledEvent(self, context, scopes):
                self.rescaled.append((context.old_width, context.new_width))

        logic = Logic()
        service = system.submit_orchestrator(
            OrcaDescriptor(
                name="C",
                logic=lambda: logic,
                applications=[
                    ManagedApplication(name=app.name, application=app)
                ],
            )
        )
        system.run_for(2.0)
        scenario = Scenario("grow").add(0.5, Rescale(region="region", width=4))
        system.chaos.run_scenario(scenario, job=logic.job, feed=feed)
        system.run_for(5.0)
        assert logic.rescaled == [(2, 4)]
        # the stream graph knows the channel PEs the rescale added
        assert set(service.pes_of_job(logic.job.job_id)) == {
            pe.pe_id for pe in logic.job.pes
        }
        # metric polls over the new channels do not leak skips forever
        skips_before = service.metric_event_skips
        system.run_for(31.0)  # two poll rounds
        assert service.metric_event_skips == skips_before
        assert service.handler_errors == []

    def test_staggered_identical_skew_windows_unwind_to_baseline(self):
        """Two value-identical, staggered skew windows: the skew holds
        until the LAST window expires, then the uniform baseline returns
        (regression: the stale restore used to resurrect window 1's skew
        forever, or clear it while window 2 was still open)."""
        system = chaos_system()
        feed = ChaosFeed(seed=3, base_rate=2)
        job = system.submit_job(build_keyed_app(feed))
        system.run_for(1.0)
        scenario = Scenario("skews").add(
            0.5, KeySkewShift(hot_fraction=0.8, hot_keys=("k0",), duration=4.0)
        ).add(1.5, KeySkewShift(hot_fraction=0.8, hot_keys=("k0",), duration=4.0))
        system.chaos.run_scenario(scenario, job=job, feed=feed)
        system.run_for(5.0)  # window 1 expired (at +4.5), window 2 open
        assert feed.hot_fraction == 0.8
        system.run_for(1.0)  # window 2 expired too
        assert feed.hot_fraction == 0.0
        assert feed.hot_keys == ()


class TestPersistentSkewBaseline:
    def test_persistent_skew_survives_window_unwind(self):
        """A persistent (duration=None) KeySkewShift becomes the baseline
        windowed shifts unwind back to — an expiring window must not wipe
        it (regression: pop_skew used to reset to uniform)."""
        system = chaos_system()
        feed = ChaosFeed(seed=3, base_rate=2)
        job = system.submit_job(build_keyed_app(feed))
        system.run_for(1.0)
        scenario = Scenario("mixed_skews").add(
            0.5, KeySkewShift(hot_fraction=0.9, hot_keys=("k1",), duration=3.0)
        ).add(
            1.5,
            KeySkewShift(hot_fraction=0.5, hot_keys=("k2",), duration=None),
        )
        system.chaos.run_scenario(scenario, job=job, feed=feed)
        system.run_for(3.0)  # persistent shift is the last writer
        assert feed.hot_fraction == 0.5
        system.run_for(2.0)  # window expired: the persistent shift holds
        assert feed.hot_fraction == 0.5
        assert feed.hot_keys == ("k2",)
