"""Tests for the in-memory stream graph and epoch assignment."""

import pytest

from repro.errors import InspectionError
from repro.orca.epochs import FailureEpochTracker, MetricEpochCounter
from repro.orca.streamgraph import StreamGraph
from repro.spl.adl import adl_model_of
from repro.spl.compiler import SPLCompiler

from repro.apps.figure2 import build_figure2_application


@pytest.fixture
def graph_with_job():
    """StreamGraph loaded with the Figure 2 app + one registered job."""
    compiled = SPLCompiler("manual").compile(build_figure2_application())
    graph = StreamGraph()
    graph.add_application(adl_model_of(compiled))
    graph.register_job(
        "job_1",
        "Figure2",
        {1: ("pe_1", "hostA"), 2: ("pe_2", "hostA"), 3: ("pe_3", "hostB")},
    )
    return graph


class TestLogicalQueries:
    def test_operator_kind(self, graph_with_job):
        assert graph_with_job.operator_kind("Figure2", "c1.op3") == "Split"

    def test_operators_of_type(self, graph_with_job):
        splits = graph_with_job.operators_of_type("Figure2", "Split")
        assert sorted(splits) == ["c1.op3", "c2.op3"]

    def test_enclosing_composite(self, graph_with_job):
        assert graph_with_job.enclosing_composite("Figure2", "c1.op3") == "c1"
        assert graph_with_job.enclosing_composite("Figure2", "op1") is None

    def test_composite_chain_and_types(self, graph_with_job):
        assert graph_with_job.composite_chain("Figure2", "c2.op6") == ("c2",)
        assert graph_with_job.composite_types_of("Figure2", "c2.op6") == {
            "composite1"
        }

    def test_streams_of(self, graph_with_job):
        pairs = graph_with_job.streams_of("Figure2")
        assert ("op1", "c1.op3") in pairs

    def test_unknown_app_raises(self, graph_with_job):
        with pytest.raises(InspectionError):
            graph_with_job.operator_kind("Ghost", "x")

    def test_unknown_operator_raises(self, graph_with_job):
        with pytest.raises(InspectionError):
            graph_with_job.enclosing_composite("Figure2", "ghost")


class TestPhysicalQueries:
    def test_operators_in_pe(self, graph_with_job):
        """'Which stream operators reside in PE with id x?' (Sec. 4.2)"""
        ops = graph_with_job.operators_in_pe("pe_2")
        assert ops == ["c1.op4", "c1.op6", "c2.op4", "c2.op6"]

    def test_composites_in_pe(self, graph_with_job):
        """'Which composites reside in PE with id x?' (Sec. 4.2)"""
        assert graph_with_job.composites_in_pe("pe_2") == {"c1", "c2"}
        assert graph_with_job.composites_in_pe("pe_1") == {"c1"}

    def test_pe_of_operator(self, graph_with_job):
        """'What is the PE id for operator instance y?' (Sec. 4.2)"""
        assert graph_with_job.pe_of_operator("job_1", "c1.op4") == "pe_2"
        assert graph_with_job.pe_of_operator("job_1", "op1") == "pe_1"

    def test_colocated_operators(self, graph_with_job):
        """'Which other operators are in the same OS process?' (Sec. 3)"""
        assert graph_with_job.colocated_operators("job_1", "c1.op4") == [
            "c1.op6", "c2.op4", "c2.op6",
        ]

    def test_host_and_job_of_pe(self, graph_with_job):
        assert graph_with_job.host_of_pe("pe_3") == "hostB"
        assert graph_with_job.job_of_pe("pe_3") == "job_1"
        assert graph_with_job.pe_index("pe_3") == 3

    def test_pes_of_job(self, graph_with_job):
        assert graph_with_job.pes_of_job("job_1") == ["pe_1", "pe_2", "pe_3"]

    def test_unknown_pe(self, graph_with_job):
        with pytest.raises(InspectionError):
            graph_with_job.operators_in_pe("pe_99")

    def test_replica_jobs_coexist(self, graph_with_job):
        """Two jobs of the same app have independent physical views."""
        graph_with_job.register_job(
            "job_2",
            "Figure2",
            {1: ("pe_4", "hostC"), 2: ("pe_5", "hostC"), 3: ("pe_6", "hostD")},
        )
        assert graph_with_job.pe_of_operator("job_2", "c1.op4") == "pe_5"
        assert graph_with_job.pe_of_operator("job_1", "c1.op4") == "pe_2"
        assert graph_with_job.host_of_pe("pe_5") == "hostC"

    def test_unregister_job(self, graph_with_job):
        graph_with_job.unregister_job("job_1")
        with pytest.raises(InspectionError):
            graph_with_job.pes_of_job("job_1")
        with pytest.raises(InspectionError):
            graph_with_job.job_of_pe("pe_1")


class TestEventAttrs:
    def test_operator_attrs_include_containment(self, graph_with_job):
        attrs = graph_with_job.operator_event_attrs(
            "Figure2", "c1.op3", "job_1", "pe_1"
        )
        assert attrs["operator_type"] == "Split"
        assert attrs["composite_type"] == {"composite1"}
        assert attrs["composite_instance"] == {"c1"}
        assert attrs["host"] == "hostA"

    def test_pe_attrs_union_composites(self, graph_with_job):
        attrs = graph_with_job.pe_event_attrs("Figure2", "job_1", "pe_2")
        assert attrs["composite_instance"] == {"c1", "c2"}
        assert attrs["composite_type"] == {"composite1"}


class TestEpochs:
    def test_metric_epoch_increments_per_poll(self):
        counter = MetricEpochCounter()
        assert counter.next() == 1
        assert counter.next() == 2
        assert counter.current == 2

    def test_failure_epoch_groups_same_physical_event(self):
        """Sec. 4.2: epoch from crash reason + detection timestamp."""
        tracker = FailureEpochTracker()
        e1 = tracker.epoch_for("host_failure", 100.0)
        e2 = tracker.epoch_for("host_failure", 100.0)
        assert e1 == e2  # two PEs of the same host failure

    def test_failure_epoch_distinguishes_reasons(self):
        tracker = FailureEpochTracker()
        e1 = tracker.epoch_for("host_failure", 100.0)
        e2 = tracker.epoch_for("injected_fault", 100.0)
        assert e2 == e1 + 1

    def test_failure_epoch_distinguishes_times(self):
        tracker = FailureEpochTracker()
        e1 = tracker.epoch_for("crash", 100.0)
        e2 = tracker.epoch_for("crash", 105.0)
        assert e2 == e1 + 1

    def test_tolerance_absorbs_jitter(self):
        tracker = FailureEpochTracker(tolerance=0.1)
        e1 = tracker.epoch_for("crash", 100.0)
        e2 = tracker.epoch_for("crash", 100.05)
        assert e1 == e2
