"""Edge-case tests across layers: timers, HC behaviour, error hierarchy,
dependency corner cases, ADL-only orchestrators, host-failure failover."""

import pytest

from repro import (
    ManagedApplication,
    Orchestrator,
    OrcaDescriptor,
    ReproError,
    SystemS,
)
from repro import errors as errors_module
from repro.errors import (
    ActuationError,
    DependencyCycleError,
    DependencyError,
    GraphError,
    OrcaError,
    RuntimeFault,
    SPLError,
    StarvationError,
)
from repro.orca.scopes import PEFailureScope, TimerScope
from repro.runtime.pe import PEState

from tests.conftest import make_linear_app


class TestErrorHierarchy:
    def test_every_error_derives_from_repro_error(self):
        for name in dir(errors_module):
            obj = getattr(errors_module, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, ReproError), name

    def test_layer_bases(self):
        assert issubclass(GraphError, SPLError)
        assert issubclass(StarvationError, DependencyError)
        assert issubclass(DependencyCycleError, OrcaError)
        assert issubclass(ActuationError, OrcaError)
        assert not issubclass(RuntimeFault, SPLError)

    def test_catch_all(self):
        with pytest.raises(ReproError):
            raise StarvationError("x")


class TestTimerService:
    def make_service(self, system):
        class Passive(Orchestrator):
            pass

        return system.submit_orchestrator(
            OrcaDescriptor(name="T", logic=Passive, applications=[])
        )

    def test_cancel_by_id(self, system):
        service = self.make_service(system)
        system.run_for(0.1)
        handle = service.create_timer(5.0, timer_id="x")
        assert service.timers.cancel_timer("x") is True
        assert service.timers.cancel_timer("x") is False
        system.run_for(10.0)
        assert handle.cancelled

    def test_negative_delay_rejected(self, system):
        service = self.make_service(system)
        with pytest.raises(ValueError):
            service.create_timer(-1.0)

    def test_handle_cancel_stops_periodic(self, system):
        fired = []

        class TimerOrca(Orchestrator):
            def handleOrcaStart(self, context):
                self.orca.registerEventScope(TimerScope("t"))
                self.handle = self.orca.create_timer(1.0, periodic=True)

            def handleTimerEvent(self, context, scopes):
                fired.append(context.time)
                if len(fired) >= 2:
                    self.handle.cancel()

        system.submit_orchestrator(
            OrcaDescriptor(name="T", logic=TimerOrca, applications=[])
        )
        system.run_for(10.0)
        assert len(fired) == 2

    def test_shutdown_cancels_all_timers(self, system):
        service = self.make_service(system)
        system.run_for(0.1)
        handle = service.create_timer(5.0)
        system.cancel_orchestrator(service.orca_id)
        assert handle.cancelled


class TestHostControllerDetails:
    def test_collect_and_push_counts_samples(self, system):
        job = system.submit_job(make_linear_app())
        system.run_for(1.0)
        hc = system.hcs[job.pes[0].host_name]
        pushed = hc.collect_and_push()
        assert pushed > 0

    def test_dead_host_stops_pushing(self, system):
        job = system.submit_job(make_linear_app())
        system.run_for(5.0)
        host = job.pes[0].host_name
        hc = system.hcs[host]
        hc.kill()
        before = len(system.srm.get_metrics())
        system.run_for(10.0)
        # PE metrics of the dead host no longer refresh; other hosts still push
        samples = system.srm.get_metrics()
        stale = [
            s
            for s in samples
            if s.pe_id == job.pes[0].pe_id and s.collection_ts > system.now - 9.0
        ]
        assert stale == []

    def test_crashed_pe_not_collected(self, system):
        job = system.submit_job(make_linear_app())
        system.run_for(5.0)
        pe = job.pes[0]
        pe.crash("t")
        hc = system.hcs[pe.host_name]
        hc.collect_and_push()  # must skip the crashed PE without error


class TestDependencyCornerCases:
    def make_service(self, system, names=("A", "B", "C")):
        class Passive(Orchestrator):
            pass

        return system.submit_orchestrator(
            OrcaDescriptor(
                name="D",
                logic=Passive,
                applications=[
                    ManagedApplication(name=n, application=make_linear_app(n))
                    for n in names
                ],
            )
        )

    def test_two_concurrent_starts_share_sleeping_dependency(self, system):
        """B and C both depend on A with uptime; both started at once."""
        service = self.make_service(system)
        deps = service.deps
        deps.create_app_config("a", "A")
        deps.create_app_config("b", "B")
        deps.create_app_config("c", "C")
        deps.register_dependency("b", "a", uptime_requirement=10.0)
        deps.register_dependency("c", "a", uptime_requirement=20.0)
        deps.start("b")
        deps.start("c")
        system.run_for(1.0)
        assert deps.is_running("a")
        assert not deps.is_running("b")
        system.run_for(10.0)
        assert deps.is_running("b")
        assert not deps.is_running("c")
        system.run_for(10.0)
        assert deps.is_running("c")
        # A was submitted exactly once
        assert len({deps.job_id_of(c) for c in "abc"}) == 3

    def test_cancel_while_dependent_still_sleeping(self, system):
        """A is up, B sleeps on its uptime; cancelling A must fail only if
        B is *running* — a sleeping dependent does not hold it."""
        service = self.make_service(system)
        deps = service.deps
        deps.create_app_config("a", "A", garbage_collectable=True)
        deps.create_app_config("b", "B")
        deps.register_dependency("b", "a", uptime_requirement=30.0)
        deps.start("b")
        system.run_for(1.0)
        assert deps.is_running("a") and not deps.is_running("b")
        deps.cancel("a")  # b not running yet: allowed
        system.run_for(1.0)
        assert not deps.is_running("a")
        # the sleeping thread re-submits a once its wake-up finds it gone
        system.run_for(60.0)
        assert deps.is_running("b")
        assert deps.is_running("a")

    def test_gc_queue_empty_after_everything_cancelled(self, system):
        service = self.make_service(system)
        deps = service.deps
        deps.create_app_config("a", "A", garbage_collectable=True, gc_timeout=1.0)
        deps.create_app_config("b", "B")
        deps.register_dependency("b", "a")
        deps.start("b")
        system.run_for(1.0)
        deps.cancel("b")
        system.run_for(3.0)
        assert deps.gc_queue() == []
        assert not deps.is_running("a")


class TestAdlOnlyOrchestrator:
    def test_inspects_but_cannot_submit(self, system):
        """Apps registered by ADL alone support inspection, not submission."""
        from repro.spl.adl import adl_to_xml
        from repro.spl.compiler import SPLCompiler

        compiled = SPLCompiler("manual").compile(make_linear_app("A"))

        class Passive(Orchestrator):
            pass

        service = system.submit_orchestrator(
            OrcaDescriptor(
                name="AdlOnly",
                logic=Passive,
                applications=[
                    ManagedApplication(name="A", adl_xml=adl_to_xml(compiled))
                ],
            )
        )
        system.run_for(0.1)
        # logical inspection works from the parsed ADL
        assert service.operators_of_type("A", "Sink") == ["sink"]
        with pytest.raises(ActuationError):
            service.submit_application("A")
        with pytest.raises(ActuationError):
            service.set_exclusive_host_pools("A")


class TestHostFailureFailover:
    def test_failover_on_whole_host_failure(self):
        """Sec. 5.2 variant: the active replica dies with its host; the
        failure epochs group the PE crashes; failover still happens."""
        import io

        from repro.apps.orchestrators import FailoverOrca
        from repro.apps.trend import TrendRecorderHub, build_trend_application
        from repro.apps.workloads import TradeWorkload

        system = SystemS(hosts=8, seed=42)
        hub = TrendRecorderHub()
        app = build_trend_application(
            lambda: TradeWorkload(seed=11), hub=hub, window_span=60.0
        )
        logic = FailoverOrca(n_replicas=3, status_stream=io.StringIO())
        service = system.submit_orchestrator(
            OrcaDescriptor(
                name="F",
                logic=lambda: logic,
                applications=[ManagedApplication(name=app.name, application=app)],
            )
        )
        system.run_for(90.0)
        active = logic.active_job_id()
        job = service.job(active)
        victim_host = job.pe_by_index(job.compiled.pe_of("calc")).host_name
        system.failures.fail_host(victim_host)
        system.run_for(30.0)
        # failover happened and every crashed PE was restarted... but the
        # host is still down, so restarts go nowhere until it revives;
        # what matters: the promoted replica is active and healthy.
        assert logic.failovers
        promoted = logic.failovers[0][2]
        assert logic.replicas[promoted]["status"] == "active"
        promoted_job = service.job(promoted)
        assert all(pe.state is PEState.RUNNING for pe in promoted_job.pes)
        # PE failure events of the one host failure shared an epoch
        pe_events = [
            e for e in service.event_journal if e.event_type == "pe_failure"
        ]
        epochs = {e.context.epoch for e in pe_events}
        assert len(epochs) == 1
