"""Tests for parallel-region annotation, expansion, and the channel operators."""

import pytest

from repro.errors import ParallelRegionError
from repro.spl.application import Application
from repro.spl.compiler import SPLCompiler
from repro.spl.library import (
    Beacon,
    Filter,
    Functor,
    OrderedMerger,
    ParallelSplitter,
    Sink,
)
from repro.spl.parallel import expand_parallel_regions, parallel, resize_region
from repro.spl.tuples import Punctuation, StreamTuple

from tests.conftest import make_operator_harness


def build_app(width=3, chain_len=1, annotation=None, partition="work"):
    """src -> [work0 -> ... -> work{n-1}] (annotated) -> sink."""
    app = Application("Par")
    g = app.graph
    src = g.add_operator("src", Beacon, params={"values": {}}, partition="feed")
    prev = src
    annotation = annotation or parallel(width=width, name="region")
    for i in range(chain_len):
        work = g.add_operator(
            f"work{i}",
            Functor,
            params={"fn": lambda t: t},
            partition=partition,
            parallel=annotation,
        )
        g.connect(prev.oport(0), work.iport(0))
        prev = work
    sink = g.add_operator("sink", Sink, partition="out")
    g.connect(prev.oport(0), sink.iport(0))
    return app


class TestExpansion:
    def test_no_annotation_is_identity(self):
        app = Application("Plain")
        g = app.graph
        src = g.add_operator("src", Beacon)
        sink = g.add_operator("sink", Sink)
        g.connect(src.oport(0), sink.iport(0))
        expanded, plans = expand_parallel_regions(app)
        assert expanded is app
        assert plans == {}

    def test_splitter_channels_merger(self):
        expanded, plans = expand_parallel_regions(build_app(width=3))
        ops = expanded.graph.operators
        assert "region__split" in ops and "region__merge" in ops
        for channel in range(3):
            assert f"work0__c{channel}" in ops
        assert "work0" not in ops
        plan = plans["region"]
        assert plan.width == 3
        assert plan.channel_ops == [["work0__c0"], ["work0__c1"], ["work0__c2"]]

    def test_channel_partition_tags_are_suffixed(self):
        expanded, _ = expand_parallel_regions(build_app(width=2, chain_len=2))
        g = expanded.graph
        assert g.operator("work0__c0").partition == "work__c0"
        assert g.operator("work1__c0").partition == "work__c0"
        assert g.operator("work0__c1").partition == "work__c1"

    def test_chain_is_replicated_per_channel(self):
        expanded, plans = expand_parallel_regions(build_app(width=2, chain_len=3))
        plan = plans["region"]
        assert plan.chain == ["work0", "work1", "work2"]
        assert plan.channel_ops[1] == ["work0__c1", "work1__c1", "work2__c1"]
        # internal chain edges exist per channel
        edges = {
            (e.src.full_name, e.dst.full_name) for e in expanded.graph.edges
        }
        assert ("work0__c1", "work1__c1") in edges
        assert ("work2__c0", "region__merge") in edges

    def test_compiler_fuses_channels_into_per_channel_pes(self):
        compiled = SPLCompiler("manual").compile(build_app(width=2, chain_len=2))
        pe_of = compiled.pe_of
        assert pe_of("work0__c0") == pe_of("work1__c0")
        assert pe_of("work0__c0") != pe_of("work0__c1")
        assert compiled.parallel_regions["region"].width == 2
        assert compiled.source_application is not None

    def test_external_edges_rewired_through_splitter_and_merger(self):
        expanded, _ = expand_parallel_regions(build_app(width=2))
        edges = {
            (e.src.full_name, e.dst.full_name) for e in expanded.graph.edges
        }
        assert ("src", "region__split") in edges
        assert ("region__merge", "sink") in edges

    def test_host_exlocation_suffixed_per_channel(self):
        app = Application("Exloc")
        g = app.graph
        src = g.add_operator("src", Beacon)
        work = g.add_operator(
            "work",
            Functor,
            params={"fn": lambda t: t},
            host_exlocation="spread",
            parallel=parallel(width=2, name="r"),
        )
        sink = g.add_operator("sink", Sink)
        g.connect(src.oport(0), work.iport(0))
        g.connect(work.oport(0), sink.iport(0))
        expanded, _ = expand_parallel_regions(app)
        assert expanded.graph.operator("work__c0").host_exlocation == "spread__c0"
        assert expanded.graph.operator("work__c1").host_exlocation == "spread__c1"


class TestValidation:
    def test_width_must_be_positive(self):
        with pytest.raises(ParallelRegionError):
            expand_parallel_regions(build_app(annotation=parallel(width=0)))

    def test_max_width_must_cover_width(self):
        with pytest.raises(ParallelRegionError):
            expand_parallel_regions(
                build_app(annotation=parallel(width=4, max_width=2))
            )

    def test_branching_region_rejected(self):
        app = Application("Branch")
        g = app.graph
        annotation = parallel(width=2, name="r")
        src = g.add_operator("src", Beacon)
        a = g.add_operator("a", Functor, params={"fn": lambda t: t},
                           parallel=annotation)
        b = g.add_operator("b", Functor, params={"fn": lambda t: t},
                           parallel=annotation)
        sink1 = g.add_operator("s1", Sink)
        sink2 = g.add_operator("s2", Sink)
        g.connect(src.oport(0), a.iport(0))
        g.connect(a.oport(0), b.iport(0))
        g.connect(a.oport(0), sink1.iport(0))  # a branches out of the region
        g.connect(b.oport(0), sink2.iport(0))
        with pytest.raises(ParallelRegionError):
            expand_parallel_regions(app)

    def test_disconnected_members_rejected(self):
        app = Application("Disc")
        g = app.graph
        annotation = parallel(width=2, name="r")
        src = g.add_operator("src", Beacon)
        a = g.add_operator("a", Functor, params={"fn": lambda t: t},
                           parallel=annotation)
        mid = g.add_operator("mid", Functor, params={"fn": lambda t: t})
        b = g.add_operator("b", Functor, params={"fn": lambda t: t},
                           parallel=annotation)
        sink = g.add_operator("sink", Sink)
        g.connect(src.oport(0), a.iport(0))
        g.connect(a.oport(0), mid.iport(0))
        g.connect(mid.oport(0), b.iport(0))
        g.connect(b.oport(0), sink.iport(0))
        with pytest.raises(ParallelRegionError):
            expand_parallel_regions(app)

    def test_source_cannot_be_a_region(self):
        app = Application("SrcPar")
        g = app.graph
        src = g.add_operator("src", Beacon, parallel=parallel(width=2))
        sink = g.add_operator("sink", Sink)
        g.connect(src.oport(0), sink.iport(0))
        with pytest.raises(ParallelRegionError):
            expand_parallel_regions(app)


class TestResize:
    def expanded(self, width=2):
        expanded, plans = expand_parallel_regions(build_app(width=width, chain_len=2))
        return expanded, plans["region"]

    def test_grow_adds_channels_and_ports(self):
        expanded, plan = self.expanded(2)
        added, removed = resize_region(expanded.graph, plan, 4)
        assert removed == []
        assert [s.full_name for s in added] == [
            "work0__c2", "work1__c2", "work0__c3", "work1__c3"
        ]
        assert plan.width == 4
        assert expanded.graph.operator("region__split").n_outputs == 4
        assert expanded.graph.operator("region__merge").n_inputs == 4
        expanded.validate()  # all new ports are connected

    def test_shrink_removes_channels_and_edges(self):
        expanded, plan = self.expanded(3)
        added, removed = resize_region(expanded.graph, plan, 1)
        assert added == []
        assert set(removed) == {
            "work0__c1", "work1__c1", "work0__c2", "work1__c2"
        }
        assert plan.width == 1
        for name in removed:
            assert name not in expanded.graph.operators
        expanded.validate()

    def test_resize_outside_max_width_rejected(self):
        expanded, plan = self.expanded(2)
        with pytest.raises(ParallelRegionError):
            resize_region(expanded.graph, plan, plan.max_width + 1)
        with pytest.raises(ParallelRegionError):
            resize_region(expanded.graph, plan, 0)


def tup(**values):
    return StreamTuple(values)


class TestParallelSplitter:
    def make(self, **params):
        defaults = {"width": 3, "region": "r"}
        defaults.update(params)
        return make_operator_harness(ParallelSplitter, params=defaults)

    def test_round_robin_with_sequence_stamps(self):
        op, emitted = self.make()
        for i in range(6):
            op._process(tup(i=i), 0)
        ports = [port for port, _ in emitted]
        assert ports == [0, 1, 2, 0, 1, 2]
        assert [item["_pseq"] for _, item in emitted] == list(range(6))

    def test_hash_partitioning_is_stable(self):
        op, emitted = self.make(partition_by="key")
        for _ in range(3):
            op._process(tup(key="alpha"), 0)
            op._process(tup(key="beta"), 0)
        alpha_ports = {p for p, item in emitted if item["key"] == "alpha"}
        beta_ports = {p for p, item in emitted if item["key"] == "beta"}
        assert len(alpha_ports) == 1 and len(beta_ports) == 1

    def test_unordered_region_does_not_stamp(self):
        op, emitted = self.make(ordered=False)
        op._process(tup(i=1), 0)
        assert "_pseq" not in emitted[0][1].values

    def test_quiesce_buffers_and_resume_flushes(self):
        op, emitted = self.make()
        op._process(tup(i=0), 0)
        op.on_control("quiesce", {})
        op._process(tup(i=1), 0)
        op._process(tup(i=2), 0)
        assert len(emitted) == 1
        assert op.pending_items() == 2
        op.on_control("resume", {"width": 2, "epoch": 7})
        tuples = [item for _, item in emitted if isinstance(item, StreamTuple)]
        assert len(tuples) == 3
        assert op.width == 2 and op.epoch == 7
        # sequence numbering continues across the barrier
        assert [t["_pseq"] for t in tuples] == [0, 1, 2]

    def test_window_puncts_buffered_while_quiesced(self):
        """A rescale must not merge two windows: WINDOW puncts hold position
        in the barrier buffer relative to the tuples around them."""
        op, emitted = self.make(width=1)
        op.on_control("quiesce", {})
        op._process(tup(i=0), 0)
        op._process(Punctuation.WINDOW, 0)
        op._process(tup(i=1), 0)
        assert emitted == []
        op.on_control("resume", {})
        kinds = [
            item if item is Punctuation.WINDOW else item["i"]
            for _, item in emitted
        ]
        assert kinds == [0, Punctuation.WINDOW, 1]

    def test_final_held_while_quiesced(self):
        op, emitted = self.make()
        op.on_control("quiesce", {})
        op._process(tup(i=0), 0)
        op._process(Punctuation.FINAL, 0)
        assert Punctuation.FINAL not in [item for _, item in emitted]
        op.on_control("resume", {})
        finals = [item for _, item in emitted if item is Punctuation.FINAL]
        assert len(finals) == op.width  # FINAL broadcast after the flush


class TestOrderedMerger:
    def make(self, **params):
        defaults = {"width": 2, "region": "r"}
        defaults.update(params)
        return make_operator_harness(OrderedMerger, params=defaults)

    def test_reorders_across_channels(self):
        op, emitted = self.make()
        op._process(tup(v="b", _pseq=1), 1)
        assert emitted == []  # waiting for seq 0
        assert op.pending_items() == 1
        op._process(tup(v="a", _pseq=0), 0)
        values = [item["v"] for _, item in emitted]
        assert values == ["a", "b"]
        assert all("_pseq" not in item.values for _, item in emitted)

    def test_unstamped_tuples_pass_through(self):
        op, emitted = self.make()
        op._process(tup(v="x"), 0)
        assert [item["v"] for _, item in emitted] == ["x"]

    def test_final_flushes_gaps(self):
        op, emitted = self.make()
        op._process(tup(v="late", _pseq=5), 0)
        op._process(Punctuation.FINAL, 0)
        op._process(Punctuation.FINAL, 1)
        values = [
            item["v"] for _, item in emitted if isinstance(item, StreamTuple)
        ]
        assert values == ["late"]
        assert emitted[-1][1] is Punctuation.FINAL

    def test_set_width_control(self):
        op, _ = self.make()
        op.on_control("setWidth", {"width": 5})
        assert op.n_inputs == 5
        # the widened port is usable (per-port metrics were created)
        op._process(tup(v="y", _pseq=0), 4)

    def test_gap_skipped_after_grace(self):
        """A permanent hole (crashed channel) stalls only until the grace."""
        op, emitted = self.make(reorder_grace=5.0)
        op._process(tup(v="a", _pseq=0), 0)
        op._process(tup(v="c", _pseq=2), 1)  # seq 1 died with its channel
        assert [i["v"] for _, i in emitted] == ["a"]
        # fire the scheduled gap guard (the harness captures schedules);
        # expiry is judged by arrival age, so advance the fake clock first
        guard = op._test_scheduled[-1]
        assert guard.delay == 5.0
        op._test_clock["now"] = 5.0
        guard.fn()
        assert [i["v"] for _, i in emitted] == ["a", "c"]
        assert op.metric("nSeqGapsSkipped").value == 1
        assert op.pending_items() == 0

    def test_straggler_after_skip_is_delivered(self):
        op, emitted = self.make(reorder_grace=5.0)
        op._process(tup(v="c", _pseq=2), 1)
        op._test_clock["now"] = 5.0
        op._test_scheduled[-1].fn()  # skip the 0..1 hole
        op._process(tup(v="a", _pseq=0), 0)  # straggler arrives late
        assert [i["v"] for _, i in emitted] == ["c", "a"]  # delivered, not dropped

    def test_double_crash_gap_skip_advances_monotonically(self):
        """Regression: holes from *two* crashed channels must be skipped in
        strictly increasing seq order, and fresh tuples (a slow-but-alive
        channel) must not be flushed past just because older seqs expired."""
        op, emitted = self.make(width=4, reorder_grace=5.0)
        # channels 1 and 2 died: seqs 1, 2, 5, 6 will never arrive
        op._process(tup(v="s0", _pseq=0), 0)   # released immediately
        op._process(tup(v="s3", _pseq=3), 3)   # blocked by holes 1, 2
        op._process(tup(v="s4", _pseq=4), 0)
        assert [i["v"] for _, i in emitted] == ["s0"]
        guard = op._test_scheduled[-1]
        # a *fresh* tuple far ahead arrives just before the guard fires:
        # its holes (5, 6) have not aged out yet and must stay open
        op._test_clock["now"] = 4.9
        op._process(tup(v="s7", _pseq=7), 3)
        op._test_clock["now"] = 5.0
        guard.fn()
        # holes 1-2 expired (witnessed by s3/s4, both 5s old); hole 5-6 is
        # only witnessed by the 0.1s-old s7, so s7 stays buffered
        assert [i["v"] for _, i in emitted] == ["s0", "s3", "s4"]
        assert op.metric("nSeqGapsSkipped").value == 1
        assert op.pending_items() == 1
        # second crashed channel's holes expire once s7 has aged out
        op._test_clock["now"] = 9.9
        op._test_scheduled[-1].fn()
        assert [i["v"] for _, i in emitted] == ["s0", "s3", "s4", "s7"]
        assert op.metric("nSeqGapsSkipped").value == 2
        # emission order was strictly monotone in seq throughout
        seqs = [i.get("v") for _, i in emitted]
        assert seqs == sorted(seqs, key=lambda v: int(v[1:]))

    def test_gap_guard_rearms_on_progress(self):
        op, emitted = self.make(reorder_grace=5.0)
        op._process(tup(v="b", _pseq=1), 0)  # hole at 0
        first_guard = op._test_scheduled[-1]
        op._process(tup(v="a", _pseq=0), 0)  # hole fills normally
        op._process(tup(v="d", _pseq=3), 1)  # new hole at 2
        first_guard.fn()  # old guard fires after progress: no skip
        assert op.metric("nSeqGapsSkipped").value == 0
        assert [i["v"] for _, i in emitted] == ["a", "b"]
