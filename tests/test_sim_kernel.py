"""Tests for the discrete-event kernel and clock."""

import pytest

from repro.sim.clock import Clock
from repro.sim.kernel import Kernel
from repro.sim.rand import RandomStreams


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0.0

    def test_custom_start(self):
        assert Clock(5.0).now == 5.0

    def test_advance(self):
        clock = Clock()
        clock._advance_to(3.5)
        assert clock.now == 3.5

    def test_cannot_go_backwards(self):
        clock = Clock(10.0)
        with pytest.raises(ValueError):
            clock._advance_to(9.0)


class TestKernelScheduling:
    def test_schedule_and_run(self):
        kernel = Kernel()
        fired = []
        kernel.schedule(1.0, fired.append, "a")
        kernel.schedule(2.0, fired.append, "b")
        kernel.run_until(5.0)
        assert fired == ["a", "b"]
        assert kernel.now == 5.0

    def test_order_by_time(self):
        kernel = Kernel()
        fired = []
        kernel.schedule(3.0, fired.append, 3)
        kernel.schedule(1.0, fired.append, 1)
        kernel.schedule(2.0, fired.append, 2)
        kernel.run_until(10.0)
        assert fired == [1, 2, 3]

    def test_ties_broken_by_scheduling_order(self):
        kernel = Kernel()
        fired = []
        for i in range(10):
            kernel.schedule(1.0, fired.append, i)
        kernel.run_until(1.0)
        assert fired == list(range(10))

    def test_negative_delay_rejected(self):
        kernel = Kernel()
        with pytest.raises(ValueError):
            kernel.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        kernel = Kernel()
        kernel.run_until(5.0)
        with pytest.raises(ValueError):
            kernel.schedule_at(4.0, lambda: None)

    def test_run_until_past_rejected(self):
        kernel = Kernel()
        kernel.run_until(5.0)
        with pytest.raises(ValueError):
            kernel.run_until(4.0)

    def test_cancellation(self):
        kernel = Kernel()
        fired = []
        handle = kernel.schedule(1.0, fired.append, "x")
        handle.cancel()
        kernel.run_until(2.0)
        assert fired == []

    def test_cancel_idempotent(self):
        kernel = Kernel()
        handle = kernel.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_clock_advances_only_to_event_times(self):
        kernel = Kernel()
        times = []
        kernel.schedule(1.5, lambda: times.append(kernel.now))
        kernel.schedule(2.5, lambda: times.append(kernel.now))
        kernel.run_until(4.0)
        assert times == [1.5, 2.5]

    def test_events_scheduled_during_run_execute_in_same_run(self):
        kernel = Kernel()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                kernel.schedule(1.0, chain, n + 1)

        kernel.schedule(1.0, chain, 0)
        kernel.run_until(10.0)
        assert fired == [0, 1, 2, 3]

    def test_events_beyond_horizon_not_executed(self):
        kernel = Kernel()
        fired = []
        kernel.schedule(5.0, fired.append, "late")
        kernel.run_until(4.9)
        assert fired == []
        kernel.run_until(5.0)
        assert fired == ["late"]

    def test_call_soon_runs_at_current_time(self):
        kernel = Kernel()
        kernel.run_until(2.0)
        fired = []
        kernel.call_soon(lambda: fired.append(kernel.now))
        kernel.run_until(2.0)
        assert fired == [2.0]

    def test_run_for(self):
        kernel = Kernel()
        kernel.run_for(3.0)
        kernel.run_for(2.0)
        assert kernel.now == 5.0

    def test_step(self):
        kernel = Kernel()
        fired = []
        kernel.schedule(1.0, fired.append, 1)
        kernel.schedule(2.0, fired.append, 2)
        assert kernel.step() is True
        assert fired == [1]
        assert kernel.step() is True
        assert kernel.step() is False

    def test_run_drains_queue(self):
        kernel = Kernel()
        fired = []
        kernel.schedule(1.0, fired.append, 1)
        kernel.run()
        assert fired == [1]

    def test_run_guards_against_unbounded_chains(self):
        kernel = Kernel()

        def forever():
            kernel.schedule(1.0, forever)

        kernel.schedule(1.0, forever)
        with pytest.raises(RuntimeError):
            kernel.run(max_events=100)

    def test_pending_count_excludes_cancelled(self):
        kernel = Kernel()
        kernel.schedule(1.0, lambda: None)
        handle = kernel.schedule(2.0, lambda: None)
        handle.cancel()
        assert kernel.pending_count() == 1

    def test_events_processed_counter(self):
        kernel = Kernel()
        for _ in range(5):
            kernel.schedule(1.0, lambda: None)
        kernel.run_until(2.0)
        assert kernel.events_processed == 5

    def test_args_passed_through(self):
        kernel = Kernel()
        seen = []
        kernel.schedule(1.0, lambda a, b: seen.append((a, b)), 1, "x")
        kernel.run_until(1.0)
        assert seen == [(1, "x")]

    def test_determinism_across_instances(self):
        def run():
            kernel = Kernel()
            log = []

            def emit(tag):
                log.append((kernel.now, tag))
                if kernel.now < 5:
                    kernel.schedule(1.0, emit, tag)

            kernel.schedule(0.5, emit, "a")
            kernel.schedule(0.5, emit, "b")
            kernel.run_until(6.0)
            return log

        assert run() == run()


class TestRandomStreams:
    def test_same_name_same_stream(self):
        streams = RandomStreams(1)
        assert streams.stream("a") is streams.stream("a")

    def test_deterministic_across_instances(self):
        a = RandomStreams(7).stream("x")
        b = RandomStreams(7).stream("x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_streams_are_independent(self):
        streams = RandomStreams(7)
        first = streams.stream("one")
        values_before = [first.random() for _ in range(3)]
        # Drawing from another stream must not perturb the first.
        streams2 = RandomStreams(7)
        other = streams2.stream("two")
        _ = [other.random() for _ in range(100)]
        first2 = streams2.stream("one")
        values_after = [first2.random() for _ in range(3)]
        assert values_before == values_after

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("x").random()
        b = RandomStreams(2).stream("x").random()
        assert a != b

    def test_reset_recreates_from_seed(self):
        streams = RandomStreams(3)
        first = streams.stream("s").random()
        streams.reset()
        assert streams.stream("s").random() == first
