"""Tests for SAM (job lifecycle), SRM (liveness + metrics), HC, failures."""

import pytest

from repro.errors import (
    CancellationError,
    PEControlError,
    SubmissionError,
    UnknownHostError,
    UnknownJobError,
    UnknownPEError,
)
from repro.runtime.job import JobState
from repro.runtime.pe import PEState

from tests.conftest import make_linear_app


class TestSubmission:
    def test_submit_allocates_ids(self, system):
        job1 = system.submit_job(make_linear_app("A"))
        job2 = system.submit_job(make_linear_app("B"))
        assert job1.job_id != job2.job_id
        pe_ids = {pe.pe_id for pe in job1.pes} | {pe.pe_id for pe in job2.pes}
        assert len(pe_ids) == 4  # globally unique

    def test_pes_assigned_to_hcs(self, system):
        job = system.submit_job(make_linear_app())
        for pe in job.pes:
            assert pe.pe_id in system.hcs[pe.host_name].pes

    def test_unplaceable_app_rejected(self):
        from repro import SystemS
        from repro.spl.hostpool import HostPool
        from repro.spl.application import Application
        from repro.spl.library import Beacon, Sink

        system = SystemS(hosts=1)
        app = Application("TooBig")
        app.add_host_pool(HostPool("ghost", hosts=("nonexistent",)))
        g = app.graph
        src = g.add_operator("src", Beacon, host_pool="ghost")
        sink = g.add_operator("sink", Sink)
        g.connect(src.oport(0), sink.iport(0))
        with pytest.raises(SubmissionError):
            system.submit_job(app)

    def test_bad_params_rejected(self, system):
        app = make_linear_app()
        app.declare_parameter("needed")
        with pytest.raises(Exception):
            system.submit_job(app, params={})

    def test_unknown_job_lookup(self, system):
        with pytest.raises(UnknownJobError):
            system.sam.get_job("job_999")

    def test_running_jobs_listing(self, system):
        job = system.submit_job(make_linear_app())
        system.run_for(1.0)
        assert job in system.sam.running_jobs()


class TestCancellation:
    def test_cancel_stops_pes_and_releases(self, system):
        job = system.submit_job(make_linear_app())
        system.run_for(2.0)
        system.cancel_job(job.job_id)
        assert job.state is JobState.CANCELLED
        assert all(pe.state is PEState.STOPPED for pe in job.pes)
        assert job.cancel_time == system.now
        for hc in system.hcs.values():
            for pe in job.pes:
                assert pe.pe_id not in hc.pes

    def test_double_cancel_rejected(self, system):
        job = system.submit_job(make_linear_app())
        system.run_for(1.0)
        system.cancel_job(job.job_id)
        with pytest.raises(CancellationError):
            system.cancel_job(job.job_id)

    def test_cancel_drops_metrics(self, system):
        job = system.submit_job(make_linear_app())
        system.run_for(10.0)
        assert system.srm.get_metrics([job.job_id])
        system.cancel_job(job.job_id)
        assert system.srm.get_metrics([job.job_id]) == []


class TestPERestart:
    def test_restart_after_delay(self, system):
        job = system.submit_job(make_linear_app())
        system.run_for(2.0)
        pe = job.pes[0]
        pe.crash("t")
        system.sam.restart_pe(job.job_id, pe.pe_id)
        assert pe.state is PEState.CRASHED  # not yet
        system.run_for(system.config.pe_restart_delay + 0.01)
        assert pe.state is PEState.RUNNING

    def test_restart_running_rejected(self, system):
        job = system.submit_job(make_linear_app())
        system.run_for(1.0)
        with pytest.raises(PEControlError):
            system.sam.restart_pe(job.job_id, job.pes[0].pe_id)

    def test_restart_skipped_if_job_cancelled_meanwhile(self, system):
        job = system.submit_job(make_linear_app())
        system.run_for(1.0)
        pe = job.pes[0]
        pe.crash("t")
        system.sam.restart_pe(job.job_id, pe.pe_id)
        system.cancel_job(job.job_id)
        system.run_for(5.0)
        assert pe.state is not PEState.RUNNING

    def test_auto_restart_policy(self):
        from repro import SystemConfig, SystemS

        system = SystemS(hosts=2, config=SystemConfig(auto_restart_pes=True))
        job = system.submit_job(make_linear_app())
        system.run_for(2.0)
        pe = job.pes[0]
        pe.crash("t")
        system.run_for(3.0)
        assert pe.state is PEState.RUNNING
        assert system.sam.restarts_issued == 1


class TestMetricsCollection:
    def test_hc_pushes_every_interval(self, system):
        job = system.submit_job(make_linear_app())
        system.run_for(system.config.metric_push_interval + 0.2)
        samples = system.srm.get_metrics([job.job_id])
        assert samples
        names = {s.name for s in samples}
        assert "nTuplesProcessed" in names

    def test_samples_have_operator_and_pe_scope(self, system):
        job = system.submit_job(make_linear_app())
        system.run_for(4.0)
        samples = system.srm.get_metrics([job.job_id])
        assert any(s.operator is None for s in samples)  # PE scope
        assert any(s.operator == "sink" for s in samples)

    def test_custom_flag(self, system):
        from tests.conftest import make_filter_app

        job = system.submit_job(make_filter_app())
        system.run_for(4.0)
        samples = system.srm.get_metrics([job.job_id])
        discarded = [s for s in samples if s.name == "nDiscarded"]
        assert discarded and all(s.is_custom for s in discarded)
        builtin = [s for s in samples if s.name == "nTuplesProcessed"]
        assert builtin and not any(s.is_custom for s in builtin)

    def test_point_query(self, system):
        job = system.submit_job(make_linear_app())
        system.run_for(10.0)
        pe_id = job.pe_of_operator("sink").pe_id
        value = system.srm.metric_value(job.job_id, pe_id, "sink", "nTuplesProcessed")
        assert value and value > 0

    def test_values_are_upserts_not_history(self, system):
        job = system.submit_job(make_linear_app())
        system.run_for(20.0)
        samples = [
            s
            for s in system.srm.get_metrics([job.job_id])
            if s.operator == "sink" and s.name == "nTuplesProcessed" and s.port is None
        ]
        assert len(samples) == 1  # latest value only

    def test_get_metrics_all_jobs(self, system):
        system.submit_job(make_linear_app("A"))
        system.submit_job(make_linear_app("B"))
        system.run_for(4.0)
        all_samples = system.srm.get_metrics()
        assert {s.app_name for s in all_samples} == {"A", "B"}


class TestHostFailure:
    def test_detected_by_missed_heartbeats(self, system):
        job = system.submit_job(make_linear_app())
        system.run_for(2.0)
        victim_host = job.pes[0].host_name
        system.failures.fail_host(victim_host)
        # PEs die with the host immediately ...
        affected = [pe for pe in job.pes if pe.host_name == victim_host]
        assert all(pe.state is PEState.CRASHED for pe in affected)
        assert all(pe.last_crash_reason == "host_failure" for pe in affected)
        # ... but SRM only learns about it after missed heartbeats.
        assert system.srm.host(victim_host).is_up
        system.run_for(system.config.heartbeat_timeout + 2.0)
        assert not system.srm.host(victim_host).is_up

    def test_unknown_host_rejected(self, system):
        with pytest.raises(UnknownHostError):
            system.failures.fail_host("ghost")

    def test_scheduled_failure(self, system):
        job = system.submit_job(make_linear_app())
        system.run_for(1.0)
        victim = job.pes[0]
        system.failures.crash_pe(job.job_id, pe_id=victim.pe_id, at=5.0)
        system.run_for(3.0)
        assert victim.state is PEState.RUNNING
        system.run_for(2.0)
        assert victim.state is PEState.CRASHED

    def test_crash_pe_requires_identifier(self, system):
        job = system.submit_job(make_linear_app())
        with pytest.raises(UnknownPEError):
            system.failures.crash_pe(job.job_id)

    def test_host_revive(self, system):
        job = system.submit_job(make_linear_app())
        system.run_for(1.0)
        victim_host = job.pes[0].host_name
        system.failures.fail_host(victim_host)
        system.run_for(5.0)
        system.hcs[victim_host].revive()
        system.run_for(5.0)
        assert system.srm.host(victim_host).is_up


class TestImportExport:
    def build_producer(self, name="Producer", stream_id=None, properties=None):
        from repro.spl.application import Application
        from repro.spl.library import Beacon, Export

        app = Application(name)
        g = app.graph
        src = g.add_operator("src", Beacon, params={"values": {"from": name},
                                                    "period": 0.5})
        params = {}
        if stream_id:
            params["stream_id"] = stream_id
        if properties:
            params["properties"] = properties
        exp = g.add_operator("exp", Export, params=params)
        g.connect(src.oport(0), exp.iport(0))
        return app

    def build_consumer(self, name="Consumer", stream_id=None, subscription=None):
        from repro.spl.application import Application
        from repro.spl.library import Import, Sink

        app = Application(name)
        g = app.graph
        params = {}
        if stream_id:
            params["stream_id"] = stream_id
        if subscription:
            params["subscription"] = subscription
        imp = g.add_operator("imp", Import, params=params)
        sink = g.add_operator("sink", Sink)
        g.connect(imp.oport(0), sink.iport(0))
        return app

    def test_stream_id_matching(self, system):
        system.submit_job(self.build_producer(stream_id="feed"))
        consumer = system.submit_job(self.build_consumer(stream_id="feed"))
        system.run_for(10.0)
        assert len(consumer.operator_instance("sink").seen) > 0

    def test_property_subscription_matching(self, system):
        system.submit_job(
            self.build_producer(properties={"kind": "tweets", "lang": "en"})
        )
        consumer = system.submit_job(
            self.build_consumer(subscription={"kind": "tweets"})
        )
        system.run_for(10.0)
        assert len(consumer.operator_instance("sink").seen) > 0

    def test_non_matching_subscription_gets_nothing(self, system):
        system.submit_job(self.build_producer(properties={"kind": "tweets"}))
        consumer = system.submit_job(
            self.build_consumer(subscription={"kind": "trades"})
        )
        system.run_for(10.0)
        assert consumer.operator_instance("sink").seen == []

    def test_late_consumer_connects_dynamically(self, system):
        system.submit_job(self.build_producer(stream_id="feed"))
        system.run_for(20.0)
        consumer = system.submit_job(self.build_consumer(stream_id="feed"))
        system.run_for(10.0)
        assert len(consumer.operator_instance("sink").seen) > 0

    def test_producer_cancellation_stops_flow(self, system):
        producer = system.submit_job(self.build_producer(stream_id="feed"))
        consumer = system.submit_job(self.build_consumer(stream_id="feed"))
        system.run_for(10.0)
        system.cancel_job(producer.job_id)
        count = len(consumer.operator_instance("sink").seen)
        system.run_for(10.0)
        assert len(consumer.operator_instance("sink").seen) == count

    def test_one_export_feeds_many_importers(self, system):
        system.submit_job(self.build_producer(stream_id="feed"))
        c1 = system.submit_job(self.build_consumer("C1", stream_id="feed"))
        c2 = system.submit_job(self.build_consumer("C2", stream_id="feed"))
        system.run_for(10.0)
        assert len(c1.operator_instance("sink").seen) > 0
        assert len(c2.operator_instance("sink").seen) > 0

    def test_connections_introspection(self, system):
        system.submit_job(self.build_producer(stream_id="feed"))
        system.submit_job(self.build_consumer(stream_id="feed"))
        system.run_for(1.0)
        pairs = system.import_export.connections()
        assert len(pairs) == 1
        export, import_ = pairs[0]
        assert export.stream_id == "feed"
