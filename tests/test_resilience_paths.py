"""Tests for recovery interplay: restarts vs sources, metrics resets,
import/export across restarts, and orchestrator resilience."""

import pytest

from repro import ManagedApplication, Orchestrator, OrcaDescriptor, SystemS
from repro.orca.scopes import OperatorMetricScope, PEFailureScope
from repro.runtime.pe import PEState
from repro.spl.application import Application
from repro.spl.library import Beacon, CallbackSource, Export, Import, Sink

from tests.conftest import make_linear_app


class TestRestartInterplay:
    def test_restarted_source_resumes_emitting(self, system):
        job = system.submit_job(make_linear_app(period=0.5))
        system.run_for(5.0)
        src_pe = job.pe_of_operator("src")
        src_pe.crash("t")
        system.sam.restart_pe(job.job_id, src_pe.pe_id)
        system.run_for(5.0)
        count_after_restart = len(job.operator_instance("sink").seen)
        system.run_for(5.0)
        assert len(job.operator_instance("sink").seen) > count_after_restart

    def test_metric_counters_reset_after_restart(self, system):
        job = system.submit_job(make_linear_app(period=0.5))
        system.run_for(10.0)
        sink_pe = job.pe_of_operator("sink")
        before = job.operator_instance("sink").metric("nTuplesProcessed").value
        assert before > 0
        sink_pe.crash("t")
        sink_pe.restart()
        after = job.operator_instance("sink").metric("nTuplesProcessed").value
        assert after == 0  # fresh instance, fresh counters

    def test_srm_reflects_reset_on_next_push(self, system):
        job = system.submit_job(make_linear_app(period=0.5))
        system.run_for(10.0)
        sink_pe = job.pe_of_operator("sink")
        pe_id = sink_pe.pe_id
        old = system.srm.metric_value(job.job_id, pe_id, "sink", "nTuplesProcessed")
        sink_pe.crash("t")
        sink_pe.restart()
        system.run_for(system.config.metric_push_interval + 0.5)
        new = system.srm.metric_value(job.job_id, pe_id, "sink", "nTuplesProcessed")
        assert new is not None and new < old

    def test_import_flow_survives_importer_restart(self, system):
        producer = Application("Prod")
        g = producer.graph
        src = g.add_operator("src", Beacon, params={"values": {}, "period": 0.5})
        exp = g.add_operator("exp", Export, params={"stream_id": "s"})
        g.connect(src.oport(0), exp.iport(0))

        consumer = Application("Cons")
        g2 = consumer.graph
        imp = g2.add_operator("imp", Import, params={"stream_id": "s"})
        sink = g2.add_operator("sink", Sink)
        g2.connect(imp.oport(0), sink.iport(0))

        system.submit_job(producer)
        consumer_job = system.submit_job(consumer)
        system.run_for(5.0)
        pe = consumer_job.pe_of_operator("imp")
        pe.crash("t")
        system.sam.restart_pe(consumer_job.job_id, pe.pe_id)
        system.run_for(5.0)
        baseline = len(consumer_job.operator_instance("sink").seen)
        system.run_for(5.0)
        # dynamic connection still live: tuples keep arriving post-restart
        assert len(consumer_job.operator_instance("sink").seen) > baseline


class SentimentLikeOrca(Orchestrator):
    """Delta-tracking logic exercising the counter-reset guard."""

    def __init__(self):
        super().__init__()
        self.job = None
        self.deltas = []
        self._prev = None

    def handleOrcaStart(self, context):
        scope = OperatorMetricScope("m")
        scope.addOperatorInstanceFilter("sink")
        scope.addOperatorMetric("nTuplesProcessed")
        self.orca.registerEventScope(scope)
        self.orca.registerEventScope(PEFailureScope("f"))
        self.job = self.orca.submit_application("Linear")

    def handleOperatorMetricEvent(self, context, scopes):
        if self._prev is not None:
            self.deltas.append(context.value - self._prev)
        self._prev = context.value

    def handlePEFailureEvent(self, context, scopes):
        self.orca.restart_pe(context.pe_id)


class TestOrchestratorUnderRestarts:
    def test_negative_delta_observable_after_restart(self, system):
        """Counter resets surface as negative deltas — policies (like
        SentimentOrca) must guard for them; here we verify they occur."""
        logic = SentimentLikeOrca()
        system.submit_orchestrator(
            OrcaDescriptor(
                name="S",
                logic=lambda: logic,
                applications=[
                    ManagedApplication(name="Linear", application=make_linear_app())
                ],
                metric_poll_interval=2.0,
            )
        )
        system.run_for(20.0)
        job = logic.job
        pe = job.pe_of_operator("sink")
        system.failures.crash_pe(job.job_id, pe_id=pe.pe_id)
        system.run_for(20.0)
        assert pe.state is PEState.RUNNING
        assert any(d < 0 for d in logic.deltas)
        assert logic.deltas[-1] >= 0  # back to normal growth

    def test_sentiment_orca_survives_counter_reset(self):
        """SentimentOrca's explicit reset guard: no spurious trigger."""
        from repro.apps.datastore import CauseModelStore, CorpusStore
        from repro.apps.hadoop import SimulatedHadoopCluster
        from repro.apps.orchestrators import SentimentOrca
        from repro.apps.sentiment import build_sentiment_application
        from repro.apps.workloads import CausePhase, TweetWorkload

        system = SystemS(hosts=4, seed=42)
        corpus = CorpusStore()
        models = CauseModelStore(("flash", "screen"))
        hadoop = SimulatedHadoopCluster(system.kernel, corpus, models)
        workload = TweetWorkload(
            seed=7, rate=20,
            phases=(CausePhase(0.0, {"flash": 0.6, "screen": 0.4}),),
        )
        app = build_sentiment_application(workload, corpus, models)
        logic = SentimentOrca(hadoop)
        service = system.submit_orchestrator(
            OrcaDescriptor(
                name="S",
                logic=lambda: logic,
                applications=[ManagedApplication(name=app.name, application=app)],
                metric_poll_interval=1.0,
            )
        )
        system.run_for(60.0)
        job = logic.job
        pe = job.pe_of_operator("op5")
        system.failures.crash_pe(job.job_id, pe_id=pe.pe_id)
        system.run_for(2.0)
        system.sam.restart_pe(job.job_id, pe.pe_id)
        system.run_for(60.0)
        # counters reset mid-run; with no distribution shift there must
        # still be no Hadoop trigger
        assert hadoop.jobs == []
        assert not service.handler_errors


class TestCancellationDuringActivity:
    def test_cancel_job_with_inflight_tuples(self, system):
        job = system.submit_job(make_linear_app(per_tick=50, period=0.1))
        system.run_for(5.0)
        system.cancel_job(job.job_id)
        system.run_for(5.0)  # in-flight deliveries drain harmlessly
        assert all(pe.state is PEState.STOPPED for pe in job.pes)

    def test_orchestrator_cancels_job_from_handler(self, system):
        class SelfCancelling(Orchestrator):
            def __init__(self):
                super().__init__()
                self.job = None
                self.cancelled = False

            def handleOrcaStart(self, context):
                scope = OperatorMetricScope("m")
                scope.addOperatorMetric("nTuplesProcessed")
                self.orca.registerEventScope(scope)
                self.job = self.orca.submit_application("Linear")

            def handleOperatorMetricEvent(self, context, scopes):
                if not self.cancelled and context.value >= 10:
                    self.orca.cancel_job(self.job.job_id)
                    self.cancelled = True

        logic = SelfCancelling()
        service = system.submit_orchestrator(
            OrcaDescriptor(
                name="SC",
                logic=lambda: logic,
                applications=[
                    ManagedApplication(name="Linear", application=make_linear_app())
                ],
                metric_poll_interval=5.0,
            )
        )
        system.run_for(60.0)
        assert logic.cancelled
        assert not service.handler_errors
        from repro.runtime.job import JobState

        assert logic.job.state is JobState.CANCELLED
