"""Tests for the repro.obs tracing pipeline: deterministic sampling,
data-plane span capture, the two-tier gating (control always on, data
gated by ``trace_enabled``), flight-recorder auto-dumps (PE crash,
oracle violation), the satellite acceptance bar — same seed + same
campaign replayed twice produces a byte-identical flight-recorder dump
— and the ``repro.tools.timeline`` renderer."""

import pytest

from repro.chaos import Campaign, Scenario
from repro.chaos.fuzz import FuzzHarnessConfig, run_fuzz_case
from repro.chaos.perturbations import LatencySpike, PEFlap
from repro.obs import CONTROL, DATA, FlightRecorder, Span, Tracer
from repro.runtime.system import SystemConfig, SystemS
from repro.spl.application import Application
from repro.spl.library import CallbackSource, KeyedCounter, Sink
from repro.tools.timeline import main, parse_dump, render_timeline


def build_app(period=0.05, limit=None):
    app = Application("Traced")
    g = app.graph
    src = g.add_operator(
        "src",
        CallbackSource,
        params={
            "generator": lambda now, count: [{"key": f"k{count % 4}"}],
            "period": period,
            "limit": limit,
        },
        partition="feed",
    )
    work = g.add_operator("work", KeyedCounter, params={"key": "key"})
    sink = g.add_operator("sink", Sink, partition="out")
    g.connect(src.oport(0), work.iport(0))
    g.connect(work.oport(0), sink.iport(0))
    return app


def traced_system(**config_kwargs):
    config_kwargs.setdefault("trace_enabled", True)
    system = SystemS(hosts=2, config=SystemConfig(**config_kwargs))
    job = system.submit_job(build_app())
    return system, job


class TestTracerSampling:
    def test_sample_every_one_traces_everything(self):
        tracer = Tracer(sample_every=1)
        assert [tracer.sample() for _ in range(5)] == [True] * 5

    def test_sample_every_n_is_counter_based(self):
        tracer = Tracer(sample_every=3)
        decisions = [tracer.sample() for _ in range(9)]
        assert decisions == [False, False, True] * 3

    def test_invalid_sample_rate_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_every=0)

    def test_span_attrs_are_sorted_and_queryable(self):
        tracer = Tracer()
        captured = []
        tracer.sinks.append(captured.append)
        span = tracer.record("hop", DATA, 1.0, 2.5, zeta="z", alpha="a")
        assert captured == [span]
        assert [k for k, _ in span.attrs] == ["alpha", "zeta"]
        assert span.attr("zeta") == "z"
        assert span.attr("missing", "dflt") == "dflt"
        assert span.duration == 1.5


class TestDataPlaneCapture:
    def test_traced_run_records_tuple_spans(self):
        system, job = traced_system()
        system.run_for(2.0)
        assert system.transport.obs is system.obs
        assert system.kernel.event_tap is not None
        dump = system.obs.dump_flight("inspect", job_id=job.job_id)
        names = {e.name for e in dump.entries if e.kind == DATA}
        assert {"emit", "transport", "process"} <= names

    def test_sampling_rate_thins_data_spans(self):
        dense_sys, dense_job = traced_system(trace_sample_every=1)
        dense_sys.run_for(2.0)
        sparse_sys, sparse_job = traced_system(trace_sample_every=8)
        sparse_sys.run_for(2.0)
        dense = sum(
            1
            for e in dense_sys.obs.dump_flight("n", job_id=dense_job.job_id).entries
            if e.kind == DATA
        )
        sparse = sum(
            1
            for e in sparse_sys.obs.dump_flight("n", job_id=sparse_job.job_id).entries
            if e.kind == DATA
        )
        assert dense > sparse > 0

    def test_tracing_off_keeps_data_plane_unhooked(self):
        system = SystemS(hosts=2, config=SystemConfig())
        job = system.submit_job(build_app())
        system.run_for(2.0)
        assert system.transport.obs is None
        assert system.kernel.event_tap is None
        dump = system.obs.dump_flight("inspect", job_id=job.job_id)
        assert all(e.kind == CONTROL for e in dump.entries)

    def test_control_plane_records_without_tracing(self):
        """Control spans (PE crash) are captured even when tracing is
        off — but the crash auto-dump only fires when tracing is on."""
        system = SystemS(hosts=2, config=SystemConfig())
        job = system.submit_job(build_app())
        system.run_for(1.0)
        pe = job.pes[0]
        system.failures.crash_pe(job.job_id, pe_id=pe.pe_id)
        system.run_for(0.5)
        assert not system.obs.flight.dumps
        dump = system.obs.dump_flight("inspect", job_id=job.job_id)
        assert "pe:crash" in {e.name for e in dump.entries}

    def test_pe_crash_autodumps_when_tracing(self):
        system, job = traced_system()
        system.run_for(1.0)
        pe = job.pes[0]
        system.failures.crash_pe(job.job_id, pe_id=pe.pe_id)
        system.run_for(0.5)
        reasons = [d.reason for d in system.obs.flight.dumps]
        assert f"pe_crash:{pe.pe_id}" in reasons

    def test_detach_unhooks_everything(self):
        system, _ = traced_system()
        system.obs.detach()
        assert system.transport.obs is None
        assert system.kernel.event_tap is None
        assert system.transport.batch_observer is None

    def test_batched_hop_records_one_transport_span(self):
        """A traced batch crossing the wire is one transport span but
        still one process span per member tuple."""
        # the source emits one tuple per 0.05s activation, so a 0.2s
        # linger coalesces several activations into each wire batch
        system, job = traced_system(
            trace_sample_every=1, batch_max_size=8, batch_linger=0.2
        )
        system.run_for(2.0)
        entries = system.obs.dump_flight("inspect", job_id=job.job_id).entries
        transport_spans = sum(1 for e in entries if e.name == "transport")
        process_spans = sum(1 for e in entries if e.name == "process")
        assert 0 < transport_spans < process_spans


class TestOrchestratorMarkers:
    def test_emit_trace_marker_lands_in_flight_ring(self):
        from repro import Orchestrator, OrcaDescriptor

        class Marking(Orchestrator):
            def handleOrcaStart(self, context):
                self.emitTraceMarker("booted", phase="start")

        system = SystemS(hosts=2, config=SystemConfig())
        system.submit_orchestrator(
            OrcaDescriptor(name="M", logic=Marking, applications=[])
        )
        system.run_for(0.5)
        dump = system.obs.dump_flight("inspect")
        marker = next(e for e in dump.entries if e.name == "user:booted")
        assert marker.attr("phase") == "start"
        assert marker.attr("orca")

    def test_marker_is_noop_before_binding(self):
        from repro import Orchestrator

        Orchestrator().emitTraceMarker("early")  # must not raise


class TestFlightRecorder:
    def test_ring_is_bounded(self):
        flight = FlightRecorder(capacity=4)
        for i in range(10):
            flight.record(Span("e", CONTROL, float(i), float(i), (("job", "j1"),)))
        assert flight.span_count("j1") == 4
        dump = flight.dump("over", 10.0, job_id="j1")
        assert [e.start for e in dump.entries] == [6.0, 7.0, 8.0, 9.0]

    def test_dump_merges_system_and_job_rings(self):
        flight = FlightRecorder()
        flight.record(Span("sys", CONTROL, 1.0, 1.0))
        flight.record(Span("job", CONTROL, 2.0, 2.0, (("job", "j1"),)))
        flight.record(Span("other", CONTROL, 3.0, 3.0, (("job", "j2"),)))
        dump = flight.dump("mix", 5.0, job_id="j1")
        assert [e.name for e in dump.entries] == ["sys", "job"]

    def test_render_is_headered_and_sorted(self):
        flight = FlightRecorder()
        flight.record(Span("b", CONTROL, 2.0, 3.0, (("job", "j1"),)))
        flight.record(Span("a", DATA, 1.0, 1.5, (("job", "j1"), ("op", "x"))))
        text = flight.dump("why", 4.0, job_id="j1").render()
        lines = text.splitlines()
        assert lines[0] == "# flight-recorder dump"
        assert "# reason: why" in lines
        assert "# sim_time: 4.000000" in lines
        body = [ln for ln in lines if not ln.startswith("#")]
        assert body[0].startswith("[    1.000000 ..     1.500000] data")
        assert "op=x" in body[0]


class TestDeterministicReplay:
    """Satellite acceptance: same seed + same campaign -> byte-identical
    flight-recorder dump (and Prometheus export), run twice."""

    CAMPAIGN = Campaign(
        name="obs_trace_determinism",
        scenario=Scenario(
            "obs_flap", description="latency noise racing a channel flap"
        )
        .add(0.5, LatencySpike(extra=0.05, duration=1.0))
        .add(1.0, PEFlap(operator="work__c0", downtime=1.0)),
        seed=17,
        duration=6.0,
    )

    def run_once(self):
        config = FuzzHarnessConfig(
            seed=self.CAMPAIGN.seed,
            hosts=4,
            duration=self.CAMPAIGN.duration,
            warmup=1.0,
            recovery_settle=2.0,
            drain=2.0,
        )
        return run_fuzz_case(self.CAMPAIGN.validate().scenario, config)

    def test_flight_dump_is_byte_identical_across_runs(self):
        first = self.run_once()
        second = self.run_once()
        assert first.timeline
        assert first.timeline.startswith("# flight-recorder dump")
        assert first.timeline == second.timeline
        assert first.prometheus == second.prometheus

    def test_clean_run_dump_reason(self):
        outcome = self.run_once()
        assert outcome.report.ok, [v.detail for v in outcome.violations]
        assert "# reason: fuzz_case_complete" in outcome.timeline

    def test_trace_off_case_carries_no_artifacts(self):
        config = FuzzHarnessConfig(
            seed=17, hosts=4, duration=4.0, warmup=1.0,
            recovery_settle=1.0, drain=1.0, trace=False,
        )
        scenario = Scenario("quiet", description="no trace").add(
            1.0, LatencySpike(extra=0.01, duration=0.5)
        )
        outcome = run_fuzz_case(scenario, config)
        assert outcome.timeline == ""
        assert outcome.prometheus == ""


class TestOracleViolationDump:
    def test_violation_autodumps_timeline(self):
        """A fuzz-oracle violation ships its evidence trail: the outcome
        timeline is a flight dump whose reason names the tripped
        oracles."""
        config = FuzzHarnessConfig(duration=6.0, torn_commits=True)
        scenario = Scenario(
            "torn_flap", description="flap under permanently torn commits"
        ).add(1.0, PEFlap(operator="work__c0", downtime=1.0))
        outcome = run_fuzz_case(scenario, config)
        assert outcome.violations
        oracles = ",".join(sorted({v.oracle for v in outcome.violations}))
        assert f"# reason: oracle_violation:{oracles}" in outcome.timeline
        header, entries = parse_dump(outcome.timeline)
        assert header["reason"].startswith("oracle_violation:")
        assert entries


class TestTimelineRenderer:
    def sample_dump(self):
        flight = FlightRecorder()
        flight.record(Span("mask", CONTROL, 1.0, 3.0, (("job", "j1"),)))
        flight.record(Span("crash", CONTROL, 2.0, 2.0, (("job", "j1"),)))
        flight.record(
            Span("hop", DATA, 1.5, 2.5, (("job", "j1"), ("op", "w")))
        )
        return flight.dump("demo", 4.0, job_id="j1").render()

    def test_parse_round_trips_header_and_entries(self):
        header, entries = parse_dump(self.sample_dump())
        assert header["reason"] == "demo"
        assert header["scope"] == "j1"
        assert [e.name for e in entries] == ["mask", "hop", "crash"]
        assert entries[0].start == 1.0 and entries[0].end == 3.0

    def test_render_draws_bars_and_ticks(self):
        text = render_timeline(self.sample_dump(), width=40)
        assert "reason: demo" in text
        mask_row = next(ln for ln in text.splitlines() if ln.startswith("mask"))
        crash_row = next(
            ln for ln in text.splitlines() if ln.startswith("crash")
        )
        assert "[" in mask_row and "]" in mask_row and "=" in mask_row
        assert "|" in crash_row

    def test_kind_filter(self):
        text = render_timeline(self.sample_dump(), kind="data")
        assert "spans: 1" in text
        assert "hop" in text and "mask" not in text

    def test_unparseable_line_raises(self):
        with pytest.raises(ValueError):
            parse_dump("not a span line\n")

    def test_cli_renders_artifact(self, tmp_path, capsys):
        path = tmp_path / "demo.timeline.txt"
        path.write_text(self.sample_dump())
        assert main([str(path), "--width", "30"]) == 0
        out = capsys.readouterr().out
        assert "reason: demo" in out
