"""Tests for workloads, data stores, and the simulated Hadoop cluster."""

import pytest

from repro.apps.datastore import (
    CauseModel,
    CauseModelStore,
    CorpusStore,
    ProfileDataStore,
)
from repro.apps.hadoop import SimulatedHadoopCluster
from repro.apps.workloads import (
    CausePhase,
    ProfileWorkload,
    TradeWorkload,
    TweetWorkload,
)
from repro.sim.kernel import Kernel


class TestTweetWorkload:
    def test_deterministic(self):
        a = TweetWorkload(seed=1)
        b = TweetWorkload(seed=1)
        assert [a.make_tweet(0.0) for _ in range(10)] == [
            b.make_tweet(0.0) for _ in range(10)
        ]

    def test_phase_shift_changes_cause_mix(self):
        workload = TweetWorkload(seed=2)
        early = [workload.make_tweet(10.0) for _ in range(300)]
        late = [workload.make_tweet(300.0) for _ in range(300)]
        early_causes = {t["true_cause"] for t in early if t["true_cause"]}
        late_negative = [t for t in late if t["true_cause"]]
        antenna = sum(1 for t in late_negative if t["true_cause"] == "antenna")
        assert "antenna" not in early_causes
        assert antenna / len(late_negative) > 0.5

    def test_cause_word_appears_in_text(self):
        workload = TweetWorkload(seed=3)
        for _ in range(100):
            tweet = workload.make_tweet(0.0)
            if tweet["true_cause"]:
                assert tweet["true_cause"] in tweet["text"].split()

    def test_custom_phases(self):
        workload = TweetWorkload(
            seed=4, phases=(CausePhase(0.0, {"zz": 1.0}),)
        )
        tweets = [workload.make_tweet(0.0) for _ in range(50)]
        causes = {t["true_cause"] for t in tweets if t["true_cause"]}
        assert causes == {"zz"}

    def test_generator_rate(self):
        workload = TweetWorkload(seed=5, rate=7)
        assert len(workload.generator()(0.0, 0)) == 7


class TestTradeWorkload:
    def test_prices_positive_random_walk(self):
        workload = TradeWorkload(seed=1)
        trades = [workload.make_trade(float(i)) for i in range(500)]
        assert all(t["price"] >= 1.0 for t in trades)
        assert {t["symbol"] for t in trades} == set(workload.symbols)

    def test_deterministic(self):
        a = TradeWorkload(seed=2)
        b = TradeWorkload(seed=2)
        assert [a.make_trade(0.0) for _ in range(20)] == [
            b.make_trade(0.0) for _ in range(20)
        ]


class TestProfileWorkload:
    def test_ids_unique_and_source_tagged(self):
        workload = ProfileWorkload(source="twitter", seed=1)
        profiles = [workload.make_profile(0.0) for _ in range(100)]
        ids = [p["profile_id"] for p in profiles]
        assert len(set(ids)) == 100
        assert all(p["source"] == "twitter" for p in profiles)

    def test_attribute_probabilities_respected(self):
        workload = ProfileWorkload(
            seed=2, attribute_probabilities={"gender": 1.0, "age": 0.0}
        )
        profiles = [workload.make_profile(0.0) for _ in range(50)]
        assert all("gender" in p["attributes"] for p in profiles)
        assert not any("age" in p["attributes"] for p in profiles)


class TestStores:
    def test_corpus_time_filtering(self):
        corpus = CorpusStore()
        corpus.append("one", ts=1.0)
        corpus.append("two", ts=5.0)
        assert len(corpus) == 2
        assert [e.text for e in corpus.entries_since(2.0)] == ["two"]

    def test_cause_model_matching(self):
        model = CauseModel(version=1, causes=frozenset({"flash"}))
        assert model.knows(["my", "flash", "died"]) == "flash"
        assert model.knows(["antenna"]) is None

    def test_model_store_versions(self):
        store = CauseModelStore(("flash",))
        assert store.version == 1
        store.publish(frozenset({"flash", "antenna"}), computed_at=5.0)
        assert store.version == 2
        assert "antenna" in store.current.causes
        assert len(store.history) == 2

    def test_profile_store_dedup(self):
        store = ProfileDataStore()
        assert store.upsert("p1", {"gender": "f"}) is True
        assert store.upsert("p1", {"age": 30}) is False  # merged
        assert store.get("p1") == {"gender": "f", "age": 30}
        assert len(store) == 1
        assert store.total_writes == 2

    def test_profile_store_attribute_queries(self):
        store = ProfileDataStore()
        store.upsert("p1", {"gender": "f"})
        store.upsert("p2", {"age": 30})
        store.upsert("p3", {"gender": "m", "age": 40})
        assert store.count_with_attribute("gender") == 2
        names = {pid for pid, _ in store.profiles_with_attribute("age")}
        assert names == {"p2", "p3"}

    def test_profile_store_get_copies(self):
        store = ProfileDataStore()
        store.upsert("p1", {"gender": "f"})
        copy = store.get("p1")
        copy["gender"] = "mutated"
        assert store.get("p1")["gender"] == "f"
        assert store.get("ghost") is None


class TestHadoop:
    def test_job_takes_duration(self):
        kernel = Kernel()
        corpus = CorpusStore()
        models = CauseModelStore()
        cluster = SimulatedHadoopCluster(kernel, corpus, models, duration=25.0)
        record = cluster.submit_cause_recomputation()
        kernel.run_until(24.0)
        assert not record.is_complete
        kernel.run_until(26.0)
        assert record.is_complete
        assert record.completed_at == pytest.approx(25.0)

    def test_extracts_frequent_causes(self):
        kernel = Kernel()
        corpus = CorpusStore()
        for _ in range(50):
            corpus.append("iphone hate antenna today", ts=0.0)
        for _ in range(2):
            corpus.append("iphone hate rarecause today", ts=0.0)
        models = CauseModelStore()
        cluster = SimulatedHadoopCluster(
            kernel, corpus, models, duration=1.0, support_fraction=0.2
        )
        cluster.submit_cause_recomputation()
        kernel.run_until(2.0)
        assert "antenna" in models.current.causes
        assert "rarecause" not in models.current.causes
        assert "iphone" not in models.current.causes  # stop word

    def test_counts_token_once_per_tweet(self):
        kernel = Kernel()
        corpus = CorpusStore()
        corpus.append("antenna antenna antenna", ts=0.0)
        corpus.append("screen broke", ts=0.0)
        models = CauseModelStore()
        cluster = SimulatedHadoopCluster(
            kernel, corpus, models, duration=1.0, support_fraction=0.9
        )
        # antenna appears in 1/2 tweets -> below 90% support
        causes = cluster.extract_causes()
        assert "antenna" not in causes

    def test_empty_corpus(self):
        kernel = Kernel()
        cluster = SimulatedHadoopCluster(
            kernel, CorpusStore(), CauseModelStore(), duration=1.0
        )
        assert cluster.extract_causes() == []
