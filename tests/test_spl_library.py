"""Tests for the built-in operator library."""

import pytest

from repro.errors import GraphError
from repro.spl.library import (
    Aggregate,
    Beacon,
    CallbackSource,
    Custom,
    Export,
    Filter,
    Functor,
    Import,
    Merge,
    Sink,
    Split,
    Throttle,
)
from repro.spl.tuples import Punctuation, StreamTuple

from tests.conftest import make_operator_harness


def tup(**values):
    return StreamTuple(values)


def run_source_ticks(op, n):
    """Drive a Source's scheduled ticks manually through the fake harness."""
    for _ in range(n):
        pending = [h for h in op._test_scheduled if not h.cancelled]
        if not pending:
            break
        handle = pending[-1]
        handle.cancel()
        handle.fn()


class TestBeacon:
    def test_emits_per_tick_with_iteration(self):
        op, emitted = make_operator_harness(
            Beacon, params={"values": {"k": "v"}, "per_tick": 3}
        )
        op.on_initialize()
        run_source_ticks(op, 1)
        tuples = [item for _, item in emitted if isinstance(item, StreamTuple)]
        assert [t["iter"] for t in tuples] == [0, 1, 2]
        assert all(t["k"] == "v" for t in tuples)

    def test_limit_emits_final(self):
        op, emitted = make_operator_harness(
            Beacon, params={"values": {}, "per_tick": 2, "limit": 3}
        )
        op.on_initialize()
        run_source_ticks(op, 5)
        tuples = [item for _, item in emitted if isinstance(item, StreamTuple)]
        finals = [item for _, item in emitted if item is Punctuation.FINAL]
        assert len(tuples) == 3
        assert finals == [Punctuation.FINAL]
        assert op.emitted == 3

    def test_no_emission_after_stop(self):
        op, emitted = make_operator_harness(
            Beacon, params={"values": {}, "limit": 1}
        )
        op.on_initialize()
        run_source_ticks(op, 3)
        count = len(emitted)
        run_source_ticks(op, 3)
        assert len(emitted) == count


class TestCallbackSource:
    def test_generator_receives_now_and_count(self):
        calls = []

        def gen(now, count):
            calls.append((now, count))
            return [{"n": count}]

        op, emitted = make_operator_harness(CallbackSource, params={"generator": gen})
        op.on_initialize()
        run_source_ticks(op, 2)
        assert calls == [(0.0, 0), (0.0, 1)]

    def test_generator_factory_used_per_instance(self):
        built = []

        def factory():
            built.append(1)
            return lambda now, count: []

        op1, _ = make_operator_harness(
            CallbackSource, params={"generator_factory": factory}
        )
        op2, _ = make_operator_harness(
            CallbackSource, params={"generator_factory": factory}
        )
        assert len(built) == 2

    def test_missing_generator_raises(self):
        with pytest.raises(GraphError):
            make_operator_harness(CallbackSource)


class TestFilter:
    def test_forwards_matching_counts_discarded(self):
        op, emitted = make_operator_harness(
            Filter, params={"predicate": lambda t: t["v"] > 2}
        )
        for v in range(5):
            op._process(tup(v=v), 0)
        passed = [item["v"] for _, item in emitted if isinstance(item, StreamTuple)]
        assert passed == [3, 4]
        assert op.metric("nDiscarded").value == 3

    def test_window_punct_forwarded(self):
        op, emitted = make_operator_harness(
            Filter, params={"predicate": lambda t: True}
        )
        op._process(Punctuation.WINDOW, 0)
        assert (0, Punctuation.WINDOW) in emitted

    def test_dynamic_predicate_control(self):
        op, emitted = make_operator_harness(
            Filter, params={"predicate": lambda t: False}
        )
        op._process(tup(v=1), 0)
        assert not [i for _, i in emitted if isinstance(i, StreamTuple)]
        op.on_control("setPredicate", {"predicate": lambda t: True})
        op._process(tup(v=1), 0)
        assert [i for _, i in emitted if isinstance(i, StreamTuple)]


class TestFunctor:
    def test_map(self):
        op, emitted = make_operator_harness(
            Functor, params={"fn": lambda t: {"v": t["v"] * 2}}
        )
        op._process(tup(v=3), 0)
        assert emitted[0][1]["v"] == 6

    def test_none_drops(self):
        op, emitted = make_operator_harness(Functor, params={"fn": lambda t: None})
        op._process(tup(v=1), 0)
        assert emitted == []

    def test_flatmap(self):
        op, emitted = make_operator_harness(
            Functor, params={"fn": lambda t: [{"i": 0}, {"i": 1}]}
        )
        op._process(tup(v=1), 0)
        assert [i["i"] for _, i in emitted] == [0, 1]


class TestSplitMerge:
    def test_split_routes_by_router(self):
        op, emitted = make_operator_harness(
            Split, params={"router": lambda t: t["v"] % 3, "n_outputs": 3}
        )
        for v in range(6):
            op._process(tup(v=v), 0)
        ports = [port for port, _ in emitted]
        assert ports == [0, 1, 2, 0, 1, 2]

    def test_split_multicast(self):
        op, emitted = make_operator_harness(
            Split, params={"router": lambda t: [0, 1], "n_outputs": 2}
        )
        op._process(tup(v=1), 0)
        assert [port for port, _ in emitted] == [0, 1]

    def test_split_window_punct_to_all_ports(self):
        op, emitted = make_operator_harness(Split, params={"n_outputs": 2})
        op._process(Punctuation.WINDOW, 0)
        assert emitted == [(0, Punctuation.WINDOW), (1, Punctuation.WINDOW)]

    def test_merge_funnels_all_ports(self):
        op, emitted = make_operator_harness(Merge, params={"n_inputs": 3})
        op._process(tup(v=1), 0)
        op._process(tup(v=2), 2)
        assert [port for port, _ in emitted] == [0, 0]

    def test_merge_waits_for_all_finals(self):
        op, emitted = make_operator_harness(Merge, params={"n_inputs": 2})
        op._process(Punctuation.FINAL, 0)
        assert (0, Punctuation.FINAL) not in emitted
        op._process(Punctuation.FINAL, 1)
        assert (0, Punctuation.FINAL) in emitted


class TestAggregate:
    def test_tumbles_and_emits_window_punct(self):
        op, emitted = make_operator_harness(
            Aggregate,
            params={"count": 2, "aggregator": lambda b: {"n": len(b)}},
        )
        op._process(tup(v=1), 0)
        assert emitted == []
        op._process(tup(v=2), 0)
        assert emitted[0][1]["n"] == 2
        assert emitted[1][1] is Punctuation.WINDOW

    def test_final_flushes_partial(self):
        op, emitted = make_operator_harness(
            Aggregate,
            params={"count": 10, "aggregator": lambda b: {"n": len(b)}},
        )
        op._process(tup(v=1), 0)
        op._process(Punctuation.FINAL, 0)
        tuples = [i for _, i in emitted if isinstance(i, StreamTuple)]
        assert tuples[0]["n"] == 1
        assert (0, Punctuation.FINAL) in emitted

    def test_nonpositive_count_rejected(self):
        with pytest.raises(GraphError):
            make_operator_harness(
                Aggregate, params={"count": 0, "aggregator": lambda b: {}}
            )


class TestSink:
    def test_records_and_consumes(self):
        consumed = []
        op, _ = make_operator_harness(Sink, params={"consumer": consumed.append})
        op._process(tup(v=1), 0)
        assert len(op.seen) == 1
        assert len(consumed) == 1

    def test_record_disabled(self):
        op, _ = make_operator_harness(Sink, params={"record": False})
        op._process(tup(v=1), 0)
        assert op.seen == []

    def test_no_output_ports(self):
        op, _ = make_operator_harness(Sink)
        assert op.n_outputs == 0


class TestExportImport:
    def test_export_requires_id_or_properties(self):
        with pytest.raises(GraphError):
            make_operator_harness(Export)

    def test_export_hands_items_to_registry(self):
        op, _ = make_operator_harness(Export, params={"stream_id": "s"})
        published = []
        op.bind_export(published.append)
        op._process(tup(v=1), 0)
        op._process(Punctuation.WINDOW, 0)
        assert len(published) == 2

    def test_export_without_binding_is_safe(self):
        op, _ = make_operator_harness(Export, params={"stream_id": "s"})
        op._process(tup(v=1), 0)  # no crash

    def test_import_requires_subscription(self):
        with pytest.raises(GraphError):
            make_operator_harness(Import)

    def test_import_delivery_forwards_tuples_not_final(self):
        op, emitted = make_operator_harness(Import, params={"stream_id": "s"})
        op.deliver(tup(v=1))
        op.deliver(Punctuation.WINDOW)
        op.deliver(Punctuation.FINAL)
        kinds = [item for _, item in emitted]
        assert isinstance(kinds[0], StreamTuple)
        assert kinds[1] is Punctuation.WINDOW
        # FINAL from a remote job must NOT finalize the importer
        assert Punctuation.FINAL not in kinds


class TestCustom:
    def test_all_callbacks(self):
        log = []
        op, _ = make_operator_harness(
            Custom,
            params={
                "on_init_fn": lambda o: log.append("init"),
                "on_tuple_fn": lambda o, t, p: log.append(("tuple", p)),
                "on_punct_fn": lambda o, pu, p: log.append(("punct", pu)),
                "on_final_fn": lambda o: log.append("final"),
            },
        )
        op.on_initialize()
        op._process(tup(v=1), 0)
        op._process(Punctuation.FINAL, 0)
        assert log == ["init", ("tuple", 0), ("punct", Punctuation.FINAL), "final"]

    def test_callbacks_optional(self):
        op, _ = make_operator_harness(Custom)
        op.on_initialize()
        op._process(tup(v=1), 0)  # no error


class TestThrottle:
    def test_buffers_and_drains(self):
        op, emitted = make_operator_harness(Throttle, params={"rate": 10.0})
        op._process(tup(v=1), 0)
        op._process(tup(v=2), 0)
        assert op.metric("nBuffered").value == 2
        run_source_ticks(op, 5)
        tuples = [i for _, i in emitted if isinstance(i, StreamTuple)]
        assert [t["v"] for t in tuples] == [1, 2]
        assert op.metric("nBuffered").value == 0

    def test_rate_must_be_positive(self):
        with pytest.raises(GraphError):
            make_operator_harness(Throttle, params={"rate": 0})


class TestJoin:
    def make(self, window=100, prefix_right=False):
        from repro.spl.library import Join

        return make_operator_harness(
            Join,
            params={"key": "symbol", "window": window,
                    "prefix_right": prefix_right},
        )

    def test_matching_keys_join(self):
        op, emitted = self.make()
        op._process(tup(symbol="IBM", price=10), 0)
        op._process(tup(symbol="IBM", volume=5), 1)
        assert len(emitted) == 1
        joined = emitted[0][1]
        assert joined["price"] == 10 and joined["volume"] == 5
        assert op.metric("nMatches").value == 1

    def test_non_matching_keys_do_not_join(self):
        op, emitted = self.make()
        op._process(tup(symbol="IBM", price=10), 0)
        op._process(tup(symbol="MSFT", volume=5), 1)
        assert emitted == []

    def test_window_eviction(self):
        op, emitted = self.make(window=1)
        op._process(tup(symbol="IBM", price=1), 0)
        op._process(tup(symbol="MSFT", price=2), 0)  # evicts IBM
        op._process(tup(symbol="IBM", volume=5), 1)
        assert emitted == []
        op._process(tup(symbol="MSFT", volume=9), 1)
        assert len(emitted) == 1

    def test_left_values_win_on_clash(self):
        op, emitted = self.make()
        op._process(tup(symbol="IBM", ts=1), 0)
        op._process(tup(symbol="IBM", ts=2), 1)
        assert emitted[0][1]["ts"] == 1  # left side wins

    def test_prefix_right(self):
        op, emitted = self.make(prefix_right=True)
        op._process(tup(symbol="IBM", ts=1), 0)
        op._process(tup(symbol="IBM", ts=2), 1)
        joined = emitted[0][1]
        assert joined["ts"] == 1 and joined["r_ts"] == 2

    def test_one_to_many_matches(self):
        op, emitted = self.make()
        op._process(tup(symbol="IBM", price=1), 0)
        op._process(tup(symbol="IBM", price=2), 0)
        op._process(tup(symbol="IBM", volume=9), 1)
        assert len(emitted) == 2

    def test_final_waits_for_both_ports(self):
        op, emitted = self.make()
        op._process(Punctuation.FINAL, 0)
        assert (0, Punctuation.FINAL) not in emitted
        op._process(Punctuation.FINAL, 1)
        assert (0, Punctuation.FINAL) in emitted

    def test_window_must_be_positive(self):
        from repro.spl.library import Join

        with pytest.raises(GraphError):
            make_operator_harness(Join, params={"key": "k", "window": 0})
