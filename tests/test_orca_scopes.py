"""Tests for event scopes: the filter semantics of Sec. 4.1."""

import pytest

from repro.errors import ScopeError
from repro.orca.scopes import (
    HostFailureScope,
    JobCancellationScope,
    JobSubmissionScope,
    OperatorMetricScope,
    OperatorPortMetricScope,
    PEFailureScope,
    PEMetricScope,
    ScopeRegistry,
    TimerScope,
    UserEventScope,
    to_string,
)


class TestFilterSemantics:
    def test_empty_scope_matches_anything_of_its_type(self):
        scope = OperatorMetricScope("s")
        assert scope.matches({"application": "A"})
        assert scope.matches({})

    def test_same_attribute_disjunctive(self):
        """Filters on one attribute OR together (Sec. 4.1)."""
        scope = OperatorMetricScope("s")
        scope.addApplicationFilter("A")
        scope.addApplicationFilter("B")
        assert scope.matches({"application": "A"})
        assert scope.matches({"application": "B"})
        assert not scope.matches({"application": "C"})

    def test_different_attributes_conjunctive(self):
        """Filters on different attributes AND together (Sec. 4.1)."""
        scope = OperatorMetricScope("s")
        scope.addApplicationFilter("A")
        scope.addCompositeTypeFilter("composite1")
        assert scope.matches(
            {"application": "A", "composite_type": {"composite1"}}
        )
        assert not scope.matches(
            {"application": "A", "composite_type": {"other"}}
        )
        assert not scope.matches(
            {"application": "B", "composite_type": {"composite1"}}
        )

    def test_missing_attribute_fails_filter(self):
        scope = OperatorMetricScope("s")
        scope.addCompositeTypeFilter("composite1")
        assert not scope.matches({"application": "A"})

    def test_collection_attributes_intersect(self):
        """Containment chains are sets: any enclosing composite matches."""
        scope = OperatorMetricScope("s")
        scope.addCompositeTypeFilter("outer")
        assert scope.matches({"composite_type": {"inner", "outer"}})
        assert not scope.matches({"composite_type": {"inner"}})

    def test_iterable_filter_values(self):
        scope = OperatorMetricScope("s")
        scope.addOperatorTypeFilter(["Split", "Merge"])
        assert scope.matches({"operator_type": "Split"})
        assert scope.matches({"operator_type": "Merge"})
        assert not scope.matches({"operator_type": "Filter"})

    def test_empty_filter_values_rejected(self):
        scope = OperatorMetricScope("s")
        with pytest.raises(ScopeError):
            scope.addOperatorTypeFilter([])

    def test_key_required(self):
        with pytest.raises(ScopeError):
            OperatorMetricScope("")

    def test_figure5_scope(self):
        """The exact scope of the paper's Fig. 5."""
        oms = OperatorMetricScope("opMetricScope")
        oms.addCompositeTypeFilter("composite1")
        oms.addOperatorTypeFilter(["Split", "Merge"])
        oms.addOperatorMetric(OperatorMetricScope.queueSize)
        # op3' (a Split in composite1) queueSize -> match
        assert oms.matches(
            {
                "application": "Figure2",
                "operator_type": "Split",
                "composite_type": {"composite1"},
                "metric_name": "queueSize",
            }
        )
        # a Functor in composite1 -> no match
        assert not oms.matches(
            {
                "operator_type": "Functor",
                "composite_type": {"composite1"},
                "metric_name": "queueSize",
            }
        )
        # Split outside the composite -> no match
        assert not oms.matches(
            {"operator_type": "Split", "composite_type": set(),
             "metric_name": "queueSize"}
        )
        # wrong metric -> no match
        assert not oms.matches(
            {
                "operator_type": "Split",
                "composite_type": {"composite1"},
                "metric_name": "nTuplesProcessed",
            }
        )

    def test_to_string_identity(self):
        assert to_string(OperatorMetricScope.queueSize) == "queueSize"


class TestScopeTypes:
    def test_event_types(self):
        assert OperatorMetricScope("k").EVENT_TYPE == "operator_metric"
        assert OperatorPortMetricScope("k").EVENT_TYPE == "operator_port_metric"
        assert PEMetricScope("k").EVENT_TYPE == "pe_metric"
        assert PEFailureScope("k").EVENT_TYPE == "pe_failure"
        assert HostFailureScope("k").EVENT_TYPE == "host_failure"
        assert JobSubmissionScope("k").EVENT_TYPE == "job_submission"
        assert JobCancellationScope("k").EVENT_TYPE == "job_cancellation"
        assert TimerScope("k").EVENT_TYPE == "timer"
        assert UserEventScope("k").EVENT_TYPE == "user"

    def test_port_filter(self):
        scope = OperatorPortMetricScope("k")
        scope.addPortFilter([0, 1])
        assert scope.matches({"port": 0})
        assert not scope.matches({"port": 2})

    def test_pe_failure_reason_filter(self):
        scope = PEFailureScope("k")
        scope.addReasonFilter("host_failure")
        assert scope.matches({"reason": "host_failure"})
        assert not scope.matches({"reason": "injected_fault"})

    def test_pe_metric_builtin_names(self):
        assert PEMetricScope.nTupleBytesProcessed == "nTupleBytesProcessed"

    def test_timer_and_user_filters(self):
        t = TimerScope("k").addTimerFilter("timer_1")
        assert t.matches({"timer": "timer_1"})
        u = UserEventScope("k").addNameFilter("failover")
        assert u.matches({"name": "failover"})
        assert not u.matches({"name": "other"})


class TestScopeRegistry:
    def test_register_and_match(self):
        registry = ScopeRegistry()
        registry.register(OperatorMetricScope("a").addApplicationFilter("X"))
        registry.register(OperatorMetricScope("b"))
        keys = registry.matching_keys("operator_metric", {"application": "X"})
        assert keys == ["a", "b"]

    def test_event_delivered_once_with_all_keys(self):
        """Sec. 4.1: delivered once even when several subscopes match."""
        registry = ScopeRegistry()
        registry.register(OperatorMetricScope("a"))
        registry.register(OperatorMetricScope("b"))
        keys = registry.matching_keys("operator_metric", {})
        assert sorted(keys) == ["a", "b"]  # one event, two keys

    def test_type_mismatch_no_keys(self):
        registry = ScopeRegistry()
        registry.register(PEFailureScope("f"))
        assert registry.matching_keys("operator_metric", {}) == []

    def test_duplicate_key_rejected(self):
        registry = ScopeRegistry()
        registry.register(OperatorMetricScope("a"))
        with pytest.raises(ScopeError):
            registry.register(PEFailureScope("a"))

    def test_multiple_subscopes_same_type_allowed(self):
        """Sec. 4.1: 'the ORCA logic can register multiple subscopes of the
        same type'."""
        registry = ScopeRegistry()
        registry.register(OperatorMetricScope("a").addApplicationFilter("X"))
        registry.register(OperatorMetricScope("b").addApplicationFilter("Y"))
        assert registry.matching_keys("operator_metric", {"application": "Y"}) == ["b"]

    def test_unregister(self):
        registry = ScopeRegistry()
        registry.register(OperatorMetricScope("a"))
        assert registry.unregister("a") is True
        assert registry.unregister("a") is False
        assert len(registry) == 0

    def test_non_scope_rejected(self):
        registry = ScopeRegistry()
        with pytest.raises(ScopeError):
            registry.register("not a scope")

    def test_scopes_of_type(self):
        registry = ScopeRegistry()
        registry.register(OperatorMetricScope("a"))
        registry.register(PEFailureScope("b"))
        assert [s.key for s in registry.scopes_of_type("pe_failure")] == ["b"]
