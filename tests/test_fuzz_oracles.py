"""Invariant-oracle suite tests: profile conditioning (no false
positives on restart-empty stacks — the PR 4 failover semantics), the
FIFO probe and its transport regression, the new barrier/attempt
instrumentation taps, and the deferred detour seeding the fuzzer's
state-conservation oracle flushed out."""

from __future__ import annotations

import pytest

from repro import SystemConfig, SystemS
from repro.apps.workloads import ChaosFeed
from repro.chaos import LinkLoss, PEFlap, Scenario
from repro.chaos.fuzz import (
    FifoProbe,
    FuzzHarnessConfig,
    OracleProfile,
    run_fuzz_case,
)
from repro.elastic.controller import ChannelReroute
from repro.runtime.transport import DeliveryRecord
from repro.spl.application import Application
from repro.spl.library import CallbackSource, KeyedCounter, Sink
from repro.spl.parallel import parallel


def build_region_app(feed, width=2):
    app = Application("OracleApp")
    g = app.graph
    src = g.add_operator(
        "src",
        CallbackSource,
        params={"generator": feed.generator(), "period": 0.05},
        partition="feed",
    )
    work = g.add_operator(
        "work",
        KeyedCounter,
        params={"key": "key"},
        parallel=parallel(
            width=width,
            name="region",
            partition_by="key",
            max_width=8,
            reorder_grace=1.0,
        ),
    )
    sink = g.add_operator("sink", Sink, partition="out")
    g.connect(src.oport(0), work.iport(0))
    g.connect(work.oport(0), sink.iport(0))
    return app


# ---------------------------------------------------------------------------
# profile conditioning
# ---------------------------------------------------------------------------


class TestProfileConditioning:
    def test_for_config_derivations(self):
        full = OracleProfile.for_config(checkpointed=True)
        assert full.zero_tuple_loss and full.state_recovery_bar is not None
        assert full.checkpoint_liveness

        empty = OracleProfile.for_config(checkpointed=False)
        assert empty.name == "restart_empty"
        assert not empty.zero_tuple_loss
        assert empty.state_recovery_bar is None
        assert not empty.checkpoint_liveness
        assert empty.recovery_required  # flaps must still come back

        lossy = OracleProfile.for_config(checkpointed=True, lossless_network=False)
        assert not lossy.zero_tuple_loss and not lossy.zero_duplicates
        assert lossy.state_recovery_bar is not None

    def test_restart_empty_stack_raises_no_false_positives(self):
        """The PR 4 failover semantics: no checkpoints, flaps restart
        empty and genuinely lose keyed state — the oracle suite, keyed
        off the configuration, must stay green."""
        scenario = Scenario("failover_like").add(
            1.02, PEFlap(operator="work__c0", downtime=1.0, rehydrate=False)
        )
        # the feed stops right after the restart-empty recovery, so the
        # reset counters cannot recount their way past the loss
        outcome = run_fuzz_case(
            scenario,
            FuzzHarnessConfig(checkpoint_interval=0.0, duration=3.2),
        )
        assert outcome.report.profile.name == "restart_empty"
        assert outcome.report.ok, [v.detail for v in outcome.violations]
        # the loss is real (restart-empty recovers nothing) ...
        assert outcome.scorecard.state_recovery < 0.99
        # ... and the exempting oracles say why they did not fire
        assert "state_conservation" in outcome.report.skipped
        assert "checkpoint_liveness" in outcome.report.skipped

    def test_same_run_fails_under_the_checkpointed_profile(self):
        """Forcing the checkpointed profile onto the restart-empty stack
        must violate — proving the conditioning (not luck) is what keeps
        the failover stack green."""
        scenario = Scenario("failover_like").add(
            1.02, PEFlap(operator="work__c0", downtime=1.0, rehydrate=False)
        )
        outcome = run_fuzz_case(
            scenario,
            FuzzHarnessConfig(
                checkpoint_interval=0.0,
                duration=8.0,
                profile=OracleProfile(),
            ),
        )
        assert not outcome.report.ok
        assert "checkpoint_liveness" in {v.oracle for v in outcome.violations}

    def test_clean_checkpointed_run_checks_everything(self):
        scenario = Scenario("clean").add(
            1.02, PEFlap(operator="work__c0", downtime=1.0)
        )
        outcome = run_fuzz_case(scenario, FuzzHarnessConfig(duration=8.0))
        assert outcome.report.ok
        checked = set(outcome.report.checked)
        assert {
            "zero_tuple_loss",
            "no_unaccounted_loss",
            "no_duplicates",
            "state_conservation",
            "checkpoint_liveness",
            "recovery_completeness",
            "epoch_monotonicity",
            "fifo_per_connection",
            "no_phantom_reroutes",
            "no_stuck_rescale",
            "no_step_errors",
        } <= checked
        # report text is deterministic and diff-stable
        assert outcome.report.lines()[0].startswith("oracle profile:")


# ---------------------------------------------------------------------------
# delivery-guarantee profiles: both directions under seeded link loss
# ---------------------------------------------------------------------------


def lossy_scenario():
    """A seeded 30% drop window over every link, healing mid-run."""
    return Scenario("lossy").add(
        1.02, LinkLoss(drop_probability=0.3, duration=2.0)
    )


class TestDeliveryProfiles:
    def test_for_config_delivery_derivations(self):
        eo = OracleProfile.for_config(checkpointed=True, delivery="exactly_once")
        assert eo.name == "exactly_once"
        assert eo.zero_tuple_loss and eo.zero_duplicates
        assert eo.state_recovery_bar == 1.0
        assert eo.loss_forgiveness == "none"
        assert eo.at_crash_conservation
        assert eo.fifo_order
        # the exactly-once promises hold on lossy networks too
        lossy_eo = OracleProfile.for_config(
            checkpointed=True, lossless_network=False, delivery="exactly_once"
        )
        assert lossy_eo.zero_tuple_loss and lossy_eo.loss_forgiveness == "none"

        eo_empty = OracleProfile.for_config(
            checkpointed=False, delivery="exactly_once"
        )
        assert eo_empty.name == "exactly_once_restart_empty"
        assert not eo_empty.zero_tuple_loss  # restart-empty still loses state
        assert eo_empty.zero_duplicates  # but the wire never duplicates

        alo = OracleProfile.for_config(
            checkpointed=True, delivery="at_least_once"
        )
        assert alo.name == "at_least_once"
        assert not alo.zero_duplicates  # duplicates are the mode's contract
        assert not alo.fifo_order  # loss-retransmit races break link FIFO
        assert alo.loss_forgiveness == "buffered"

        alo_empty = OracleProfile.for_config(
            checkpointed=False, delivery="at_least_once"
        )
        assert alo_empty.name == "at_least_once_restart_empty"
        assert not alo_empty.checkpoint_liveness

    def test_exactly_once_asserts_zero_loss_under_link_loss(self):
        """Forward direction: under seeded drops the exactly-once stack
        must genuinely deliver everything — the oracle checks zero loss
        (no lossy-network forgiveness) and would violate on any gap."""
        outcome = run_fuzz_case(
            lossy_scenario(),
            FuzzHarnessConfig(duration=8.0, delivery="exactly_once"),
        )
        assert outcome.report.profile.name == "exactly_once"
        assert outcome.report.ok, [v.detail for v in outcome.violations]
        assert "zero_tuple_loss" in outcome.report.checked
        assert "zero_tuple_loss" not in outcome.report.skipped
        assert outcome.scorecard.tuples_lost == 0
        assert outcome.scorecard.duplicates == 0
        # the drops were real: the sender had to retransmit through them
        assert outcome.scorecard.retransmissions > 0

    def test_at_least_once_recovers_loss_but_tolerates_duplicates(self):
        outcome = run_fuzz_case(
            lossy_scenario(),
            FuzzHarnessConfig(duration=8.0, delivery="at_least_once"),
        )
        assert outcome.report.profile.name == "at_least_once"
        assert outcome.report.ok, [v.detail for v in outcome.violations]
        assert outcome.scorecard.tuples_lost == 0
        assert "no_duplicates" in outcome.report.skipped
        assert "fifo_per_connection" in outcome.report.skipped

    def test_best_effort_link_loss_raises_no_false_positives(self):
        """Reverse direction: the same seeded drops on the best-effort
        stack lose tuples for real — and the lossy-net profile, keyed off
        the configuration, must not flag the by-design loss."""
        outcome = run_fuzz_case(
            lossy_scenario(),
            FuzzHarnessConfig(duration=8.0),
        )
        assert outcome.report.profile.name == "checkpointed_lossy_net"
        assert outcome.report.ok, [v.detail for v in outcome.violations]
        assert outcome.scorecard.tuples_lost > 0  # the loss is real
        assert outcome.scorecard.retransmissions == 0

    def test_exactly_once_crash_judged_at_crash_conservation(self):
        """A crash mid-loss-window: the exactly-once profile judges state
        conservation against the at-crash floor (no restore-epoch
        forgiveness) and still must hold the 1.0 bar."""
        scenario = (
            Scenario("lossy_flap")
            .add(1.02, LinkLoss(drop_probability=0.3, duration=2.0))
            .add(2.02, PEFlap(operator="work__c0", downtime=1.0))
        )
        outcome = run_fuzz_case(
            scenario,
            FuzzHarnessConfig(duration=11.0, delivery="exactly_once"),
        )
        assert outcome.report.ok, [v.detail for v in outcome.violations]
        assert "state_conservation" in outcome.report.checked
        assert "state_conservation" not in outcome.report.skipped
        assert outcome.scorecard.tuples_lost == 0
        assert outcome.scorecard.duplicates == 0


# ---------------------------------------------------------------------------
# per-connection FIFO: probe + transport regression
# ---------------------------------------------------------------------------


class TestFifo:
    def test_probe_flags_reordered_deliveries(self):
        system = SystemS(hosts=2)
        probe = FifoProbe(system.transport)
        record = lambda seq: DeliveryRecord(  # noqa: E731
            src_key="pe_1",
            dst_pe_id="pe_2",
            op_full_name="work",
            port=0,
            link_seq=seq,
            time=0.0,
        )
        probe._on_delivery(record(1))
        probe._on_delivery(record(2))
        probe._on_delivery(record(4))  # gap: fine (drops create gaps)
        assert probe.violations == []
        probe._on_delivery(record(3))  # went backwards: violation
        assert probe.violations == [(("pe_1", "pe_2"), 4, 3)]
        probe.detach()
        assert probe._on_delivery not in system.transport.delivery_taps
        probe.detach()  # idempotent

    def test_probe_reanchors_on_replay_redeliveries(self):
        """An exactly-once restart rewinds a link and re-sends retained
        units: those deliveries go backwards *by design*, so the probe
        re-anchors on them instead of flagging — and keeps checking
        forward from the replayed position."""
        system = SystemS(hosts=2)
        probe = FifoProbe(system.transport)
        record = lambda seq, redelivery=False: DeliveryRecord(  # noqa: E731
            src_key="pe_1",
            dst_pe_id="pe_2",
            op_full_name="work",
            port=0,
            link_seq=seq,
            time=0.0,
            redelivery=redelivery,
        )
        probe._on_delivery(record(5))
        probe._on_delivery(record(2, redelivery=True))  # rewound replay
        assert probe.violations == []
        probe._on_delivery(record(3))  # forward from the new anchor: fine
        probe._on_delivery(record(2))  # backwards again, not a replay
        assert probe.violations == [(("pe_1", "pe_2"), 3, 2)]
        probe.detach()

    @staticmethod
    def _overlapping_partitions_run(clear_older_first: bool):
        """Two overlapping untimed partitions on one link, cleared in
        either order; returns (probe, sink seqs, feed)."""
        system = SystemS(hosts=4, seed=42)
        feed = ChaosFeed(seed=3, base_rate=2, n_keys=6)
        app = Application("FifoApp")
        g = app.graph
        src = g.add_operator(
            "src",
            CallbackSource,
            params={"generator": feed.generator(), "period": 0.05},
            partition="feed",
        )
        work = g.add_operator("work", KeyedCounter, params={"key": "key"})
        sink = g.add_operator("sink", Sink, partition="out")
        g.connect(src.oport(0), work.iport(0))
        g.connect(work.oport(0), sink.iport(0))
        job = system.submit_job(app)
        probe = FifoProbe(system.transport)
        system.run_for(1.0)
        work_pe = job.pe_of_operator("work")
        older = system.transport.install_link_fault(
            partition=True, dst_pe=work_pe.pe_id
        )
        system.run_for(0.5)  # items pile up in the older partition
        newer = system.transport.install_link_fault(
            partition=True, dst_pe=work_pe.pe_id
        )
        system.run_for(0.5)  # newer items pile up in the newer one
        order = [older, newer] if clear_older_first else [newer, older]
        system.transport.clear_link_fault(order[0])
        system.run_for(0.2)
        system.transport.clear_link_fault(order[1])
        feed.set_rate_factor(0.0)
        system.run_for(2.0)
        sink_op = job.operator_instance("sink")
        return probe, [t["seq"] for t in sink_op.seen], feed

    @pytest.mark.parametrize("clear_older_first", [True, False])
    def test_overlapping_untimed_partitions_preserve_link_fifo(
        self, clear_older_first
    ):
        """Regression for the reorder the FIFO oracle exposed: with two
        overlapping untimed partitions, *either* fault may clear first —
        flushed items that re-hold under the surviving fault must merge
        into its queue by original send sequence, or a link delivers
        later sends ahead of earlier ones."""
        probe, seqs, feed = self._overlapping_partitions_run(clear_older_first)
        assert probe.violations == []
        assert seqs == sorted(seqs)  # the keyed stream arrived in order
        assert len(set(seqs)) == feed.emitted  # and nothing was lost


# ---------------------------------------------------------------------------
# instrumentation taps
# ---------------------------------------------------------------------------


class TestBarrierTaps:
    def test_rescale_emits_phase_timeline(self):
        system = SystemS(
            hosts=10, seed=42, config=SystemConfig(checkpoint_interval=0.25)
        )
        feed = ChaosFeed(seed=3, base_rate=2)
        job = system.submit_job(build_region_app(feed))
        seen = []
        system.elastic.barrier_listeners.append(
            lambda event: seen.append(event.phase)
        )
        system.run_for(2.0)
        system.elastic.set_channel_width(job, "region", 4)
        system.run_for(3.0)
        phases = [
            e.phase for e in system.elastic.barrier_events if e.region == "region"
        ]
        assert phases == ["quiesce", "drain_clean", "migrate", "rewire", "resume"]
        assert seen == phases  # listeners saw the same timeline
        resume = system.elastic.barrier_events[-1]
        assert resume.epoch > 0 and resume.job_id == job.job_id
        times = [e.time for e in system.elastic.barrier_events]
        assert times == sorted(times)

    def test_checkpoint_attempt_listeners_see_torn_records(self):
        system = SystemS(
            hosts=4, seed=42, config=SystemConfig(checkpoint_interval=0.2)
        )
        feed = ChaosFeed(seed=3, base_rate=2)
        system.submit_job(build_region_app(feed))
        attempts = []
        system.checkpoints.attempt_listeners.append(attempts.append)
        system.run_for(1.0)
        assert attempts and all(r.committed for r in attempts)
        system.checkpoints.commit_fault = lambda pe: True
        before = len(attempts)
        system.run_for(1.0)
        system.checkpoints.commit_fault = None
        torn = [r for r in attempts[before:] if not r.committed]
        assert torn  # torn attempts reach the tap (commit_listeners skip them)


# ---------------------------------------------------------------------------
# the deferred-seeding fix (found by the state-conservation oracle)
# ---------------------------------------------------------------------------


class TestDeferredSeeding:
    def test_all_channels_down_race_conserves_committed_state(self):
        """Both channels of a width-2 region down at once: the second
        victim's mask found no live detour to seed.  When the first
        channel rejoins, the still-dead channel's committed state must be
        seeded onto it — without that, the eventual unmask reclaim
        overwrites rehydrated state with base-less detour accruals
        (counts collapsing 12 -> 1), the exact loss the fuzzer found."""
        scenario = (
            Scenario("race")
            .add(1.02, PEFlap(operator="work__c0", downtime=1.0))
            .add(1.99, PEFlap(operator="work__c1", downtime=1.0))
        )
        outcome = run_fuzz_case(scenario, FuzzHarnessConfig(duration=11.0))
        assert outcome.report.ok, [v.detail for v in outcome.violations]
        # every tuple lost in the all-masked window is crash-accounted
        assert outcome.scorecard.tuples_lost <= outcome.scorecard.accounted_losses

    def test_unmask_record_reports_deferred_seeding(self):
        system = SystemS(
            hosts=10,
            seed=42,
            config=SystemConfig(
                checkpoint_interval=0.25, failure_notification_delay=0.001
            ),
        )
        feed = ChaosFeed(n_keys=12, base_rate=2, seed=5)
        job = system.submit_job(build_region_app(feed))
        system.run_for(3.0)
        scenario = (
            Scenario("race")
            .add(1.02, PEFlap(operator="work__c0", downtime=1.0))
            .add(1.99, PEFlap(operator="work__c1", downtime=1.0))
        )
        system.chaos.run_scenario(scenario, job=job, feed=feed)
        system.run_for(6.0)
        unmasks = [r for r in system.elastic.reroutes if not r.masked]
        # the first channel to rejoin deferred-seeded the still-dead one
        assert unmasks and unmasks[0].seeded_keys > 0


# ---------------------------------------------------------------------------
# phantom-reroute detection
# ---------------------------------------------------------------------------


class TestPhantomRerouteOracle:
    def test_unmatched_unmask_is_flagged(self):
        scenario = Scenario("clean").add(
            1.02, PEFlap(operator="work__c0", downtime=1.0)
        )
        config = FuzzHarnessConfig(duration=6.0)
        outcome = run_fuzz_case(scenario, config)
        assert outcome.report.ok

        # replay on a live system and plant a phantom unmask in the journal
        from repro.chaos.fuzz.oracles import evaluate_oracles

        system = SystemS(
            hosts=10,
            seed=42,
            config=SystemConfig(
                checkpoint_interval=0.25, failure_notification_delay=0.001
            ),
        )
        feed = ChaosFeed(n_keys=12, base_rate=2, seed=5)
        job = system.submit_job(build_region_app(feed))
        system.run_for(3.0)
        run = system.chaos.run_scenario(
            Scenario("p").add(
                1.02, PEFlap(operator="work__c0", downtime=1.0)
            ),
            job=job,
            feed=feed,
        )
        system.run_for(6.0)
        system.elastic.reroutes.append(
            ChannelReroute(
                job_id=job.job_id,
                region="region",
                channel=1,
                masked=False,  # unmask that no mask preceded
                reason="phantom",
                width=2,
                pe_id="pe_x",
                time=system.now,
            )
        )
        report = evaluate_oracles(
            system, run, outcome.scorecard, OracleProfile()
        )
        assert any(
            v.oracle == "no_phantom_reroutes" for v in report.violations
        )
