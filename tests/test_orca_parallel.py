"""Tests for the ORCA side of elastic parallel regions: ParallelRegionScope,
channel_congested / region_rescaled events, set_channel_width actuation,
inspection, and the auto-scaling use case."""

import pytest

from repro import (
    ManagedApplication,
    Orchestrator,
    OrcaDescriptor,
    SystemConfig,
    SystemS,
)
from repro.apps.elastic_trend import (
    REGION,
    AutoScalingTrendOrchestrator,
    build_elastic_trend_application,
)
from repro.elastic import QueueSizeScalingPolicy
from repro.errors import InspectionError, OrcaPermissionError
from repro.orca.scopes import ParallelRegionScope

from tests.test_elastic import build_region_app


class TestParallelRegionScope:
    def test_handles_both_region_event_types(self):
        scope = ParallelRegionScope("s")
        assert scope.handles("channel_congested")
        assert scope.handles("region_rescaled")
        assert not scope.handles("pe_failure")

    def test_region_filter(self):
        scope = ParallelRegionScope("s").addRegionFilter("analytics")
        assert scope.matches({"region": "analytics", "event_kind": "x"})
        assert not scope.matches({"region": "other"})

    def test_event_type_filter(self):
        scope = ParallelRegionScope("s").addEventTypeFilter("region_rescaled")
        assert scope.matches({"event_kind": "region_rescaled"})
        assert not scope.matches({"event_kind": "channel_congested"})

    def test_single_type_scopes_unaffected(self):
        from repro.orca.scopes import PEFailureScope

        scope = PEFailureScope("s")
        assert scope.handles("pe_failure")
        assert not scope.handles("channel_congested")


class RecordingRegionOrca(Orchestrator):
    """Registers a region scope, records region events, never actuates."""

    def __init__(self, app_name="Elastic", region="region"):
        super().__init__()
        self.app_name = app_name
        self.region = region
        self.congested = []
        self.rescaled = []
        self.job_id = None

    def handleOrcaStart(self, context):
        self.orca.registerEventScope(
            ParallelRegionScope("region").addRegionFilter(self.region)
        )
        self.job_id = self.orca.submit_application(self.app_name).job_id

    def handleChannelCongestedEvent(self, context, scopes):
        self.congested.append((context, scopes))

    def handleRegionRescaledEvent(self, context, scopes):
        self.rescaled.append((context, scopes))


def submit_orca(system, logic, app, name="Orca"):
    return system.submit_orchestrator(
        OrcaDescriptor(
            name=name,
            logic=lambda: logic,
            applications=[ManagedApplication(name=app.name, application=app)],
        )
    )


@pytest.fixture
def system():
    return SystemS(hosts=12, seed=42, config=SystemConfig(orca_poll_interval=5.0))


class TestCongestionEvents:
    def test_congested_channel_raises_event(self, system):
        # 2 tuples/s service vs 40/s arrival with the default queueSize
        # congestion metric replaced by the throttle's nBuffered gauge.
        app = build_region_app(width=1, rate=2.0)
        work = app.graph.operator("work")
        work.parallel.congestion_metric = "nBuffered"
        work.parallel.congestion_threshold = 5.0
        logic = RecordingRegionOrca()
        service = submit_orca(system, logic, app)
        system.run_for(12.0)
        assert logic.congested
        context, scopes = logic.congested[0]
        assert scopes == ["region"]
        assert context.region == "region"
        assert context.channel == 0
        assert context.metric == "nBuffered"
        assert context.value > context.threshold
        assert context.width == 1
        assert context.epoch >= 1
        assert not service.handler_errors

    def test_uncongested_region_stays_silent(self, system):
        app = build_region_app(width=2, rate=500.0)  # drains instantly
        logic = RecordingRegionOrca()
        submit_orca(system, logic, app)
        system.run_for(12.0)
        assert logic.congested == []

    def test_events_respect_scope_matching(self, system):
        app = build_region_app(width=1, rate=2.0)
        work = app.graph.operator("work")
        work.parallel.congestion_metric = "nBuffered"
        work.parallel.congestion_threshold = 5.0

        class OtherRegionOrca(RecordingRegionOrca):
            def __init__(self):
                super().__init__(region="not-this-region")

        logic = OtherRegionOrca()
        service = submit_orca(system, logic, app)
        system.run_for(12.0)
        assert logic.congested == []
        assert service.queue.dropped_count > 0


class TestSetChannelWidthActuation:
    def test_rescale_emits_event_and_updates_inspection(self, system):
        app = build_region_app(width=1, limit=150, rate=30.0)
        logic = RecordingRegionOrca()
        service = submit_orca(system, logic, app)
        system.run_for(2.0)
        operation = service.set_channel_width(logic.job_id, "region", 3)
        system.run_for(20.0)
        assert operation.epoch == 1
        assert len(logic.rescaled) == 1
        context, scopes = logic.rescaled[0]
        assert scopes == ["region"]
        assert (context.old_width, context.new_width) == (1, 3)
        assert context.duration > 0
        assert service.channel_width(logic.job_id, "region") == 3
        assert service.parallel_regions(logic.job_id) == {"region": 3}
        channels = service.region_channels(logic.job_id, "region")
        assert [ops[0] for ops in channels] == [
            "work__c0", "work__c1", "work__c2"
        ]
        actions = [r.action for r in service.actuation_log]
        assert "set_channel_width" in actions

    def test_stream_graph_refreshed_with_new_channels(self, system):
        app = build_region_app(width=1, rate=30.0)
        logic = RecordingRegionOrca()
        service = submit_orca(system, logic, app)
        system.run_for(2.0)
        service.set_channel_width(logic.job_id, "region", 2)
        system.run_for(20.0)
        # inspection reaches the new channel operator and its PE
        pe_id = service.pe_of_operator(logic.job_id, "work__c1")
        assert "work__c1" in service.operators_in_pe(pe_id)
        # metric events for the new channel keep flowing without skips
        assert service.metric_event_skips == 0
        assert not service.handler_errors

    def test_external_rescale_refreshes_graph_via_topology_observer(self, system):
        """A rescale driven outside the service still refreshes its graph.

        The refresh must ride on the SAM topology observer alone, so the
        orchestrator's own rescale-completion listener is removed first.
        """
        app = build_region_app(width=1, rate=30.0)
        logic = RecordingRegionOrca()
        service = submit_orca(system, logic, app)
        system.run_for(2.0)
        system.elastic.rescale_listeners.remove(service._on_region_rescaled)
        job = system.sam.get_job(logic.job_id)
        system.elastic.set_channel_width(job, "region", 2)
        system.run_for(20.0)
        # inspection reaches the new channel operator and its PE even though
        # the rescale-completion refresh never ran
        pe_id = service.pe_of_operator(logic.job_id, "work__c1")
        assert "work__c1" in service.operators_in_pe(pe_id)
        assert service.host_of_pe(pe_id) is not None

    def test_chaos_rescale_notifies_topology_at_completion(self, system):
        """ROADMAP carryover: a chaos-driven rescale refreshes everyone.

        The rescale is injected by the chaos engine (the paradigmatic
        outside-the-orchestrator driver), the service's own
        rescale-completion listener is removed, and the rewired mapping
        must still reach the service — through SAM's topology-change
        notification, which also fires a final ``"rescale"`` kind at
        protocol completion (when the channel->PE mapping is final,
        unlike the mid-protocol ``add_pes`` refresh).
        """
        from repro.chaos.perturbations import Rescale
        from repro.chaos.scenario import Scenario

        app = build_region_app(width=1, rate=30.0)
        logic = RecordingRegionOrca()
        service = submit_orca(system, logic, app)
        system.run_for(2.0)
        system.elastic.rescale_listeners.remove(service._on_region_rescaled)
        kinds = []
        system.sam.topology_observers.append(
            lambda job, kind: kinds.append(kind)
        )
        job = system.sam.get_job(logic.job_id)
        scenario = Scenario("external-rescale").add(
            0.1, Rescale(region="region", width=2)
        )
        system.chaos.run_scenario(scenario, job=job)
        system.run_for(20.0)
        assert "add_pes" in kinds
        assert "rescale" in kinds  # the completion-time announcement
        # the service's materialized graph answers from the new topology
        pe_id = service.pe_of_operator(logic.job_id, "work__c1")
        assert "work__c1" in service.operators_in_pe(pe_id)
        assert service.host_of_pe(pe_id) is not None

    def test_foreign_job_rejected(self, system):
        app = build_region_app(width=1)
        logic = RecordingRegionOrca()
        service = submit_orca(system, logic, app)
        foreign = system.submit_job(build_region_app(name="Foreign"))
        system.run_for(2.0)
        with pytest.raises(OrcaPermissionError):
            service.set_channel_width(foreign.job_id, "region", 2)

    def test_inspection_of_unknown_region_raises(self, system):
        app = build_region_app(width=1)
        logic = RecordingRegionOrca()
        service = submit_orca(system, logic, app)
        system.run_for(2.0)
        with pytest.raises(InspectionError):
            service.channel_width(logic.job_id, "ghost")

    def test_region_observation_for_policies(self, system):
        app = build_region_app(width=2, rate=2.0)
        work = app.graph.operator("work")
        work.parallel.congestion_metric = "nBuffered"
        logic = RecordingRegionOrca()
        service = submit_orca(system, logic, app)
        system.run_for(10.0)
        observation = service.region_observation(logic.job_id, "region")
        assert observation.width == 2
        assert set(observation.channel_backlogs) == {0, 1}
        assert observation.total_backlog > 0


class TestFailedRescaleVisibility:
    def test_failed_rescale_delivers_event_and_unwedges_autoscaler(self):
        # Drain cannot finish in time: 1 tuple/s worker with a deep backlog
        # against a 2s drain timeout.
        system = SystemS(
            hosts=12,
            config=SystemConfig(orca_poll_interval=5.0, elastic_drain_timeout=2.0),
        )
        app = build_region_app(width=1, rate=1.0)
        logic = RecordingRegionOrca()
        service = submit_orca(system, logic, app)
        system.run_for(5.0)
        operation = service.set_channel_width(logic.job_id, "region", 2)
        system.run_for(10.0)
        from repro.elastic import RescaleState

        assert operation.state is RescaleState.FAILED
        assert len(logic.rescaled) == 1
        context, _ = logic.rescaled[0]
        assert context.succeeded is False
        assert "drain did not complete" in context.error
        assert service.channel_width(logic.job_id, "region") == 1

    def test_autoscaler_retries_after_failure(self):
        system = SystemS(
            hosts=12,
            config=SystemConfig(orca_poll_interval=5.0, elastic_drain_timeout=0.5),
        )
        app = build_elastic_trend_application(
            width=1, max_width=4, worker_rate=2.0, feed_rate=60.0
        )
        logic = AutoScalingTrendOrchestrator(max_width=4)
        submit_orca(system, logic, app, name="ElasticOrca")
        system.run_for(60.0)
        # the deep backlog makes every drain time out, but the in-flight
        # guard is released each time so the scaler keeps trying
        assert len(logic.failed_rescales) >= 2
        assert logic.rescaling is False or logic.failed_rescales


class TestElasticTrendUseCase:
    def test_auto_scaler_reacts_to_congestion(self, system):
        app = build_elastic_trend_application(
            width=1, max_width=4, worker_rate=20.0, feed_rate=60.0, limit=1200
        )
        logic = AutoScalingTrendOrchestrator(max_width=4)
        service = submit_orca(system, logic, app, name="ElasticOrca")
        system.run_for(120.0)
        # congestion drove the region from 1 channel to the needed width
        assert logic.congestion_events > 0
        assert [t[:2] for t in logic.rescale_history] == [(1, 2), (2, 3), (3, 4)]
        assert logic.observed_width == 4
        assert service.channel_width(logic.job_id, REGION) == 4
        # zero loss, exactly once, in order — across three live rescales
        sink = service.jobs[logic.job_id].operator_instance("out")
        seqs = [t["seq"] for t in sink.seen]
        assert sorted(seqs) == list(range(1200))
        assert seqs == sorted(seqs)
        assert not service.handler_errors

    def test_policy_driven_scale_in(self, system):
        # Over-provisioned region + idle feed tail: the timer policy narrows it.
        app = build_elastic_trend_application(
            width=4, max_width=4, worker_rate=50.0, feed_rate=20.0, limit=100
        )
        logic = AutoScalingTrendOrchestrator(
            max_width=4,
            scale_in_policy=QueueSizeScalingPolicy(
                high_watermark=50.0, low_watermark=2.0, min_width=1, max_width=4
            ),
            scale_in_period=15.0,
        )
        service = submit_orca(system, logic, app, name="ElasticOrca")
        system.run_for(90.0)
        assert logic.rescale_history  # at least one scale-in happened
        assert all(new < old for old, new, _ in logic.rescale_history)
        assert service.channel_width(logic.job_id, REGION) < 4
        sink = service.jobs[logic.job_id].operator_instance("out")
        assert sorted(t["seq"] for t in sink.seen) == list(range(100))
