"""Adversarial search + shrink acceptance: given a deliberately
weakened configuration (checkpoint commits permanently torn via the
existing ``commit_fault`` hook), the fuzzer must find an invariant
violation within a small fixed-seed budget, shrink it to a <= 3 step
repro, and do all of it deterministically — the CI ``chaos-fuzz`` job
runs this file."""

from __future__ import annotations

import pytest

from repro.chaos import (
    KeySkewShift,
    LatencySpike,
    PEFlap,
    RateSurge,
    Scenario,
)
from repro.chaos.fuzz import (
    FuzzBudget,
    FuzzHarnessConfig,
    fuzz_scenario,
    mutate_step_time,
    run_fuzz_case,
    shrink_scenario,
)


def planted_scenario() -> Scenario:
    """A noisy scenario whose only damaging step is the flap."""
    return (
        Scenario("planted", description="weakened-config hunt")
        .add(0.5, LatencySpike(extra=0.05, duration=1.5))
        .add(0.8, RateSurge(factor=2.0, duration=3.0))
        .add(1.02, PEFlap(operator="work__c0", downtime=1.0))
        .add(2.0, KeySkewShift(hot_fraction=0.8, hot_keys=("k0",), duration=2.0))
    )


WEAK = FuzzHarnessConfig(duration=8.0, torn_commits=True)
BUDGET = FuzzBudget(seeds=(42, 7), mutation_rounds=2)


def weak_runner(scenario, seed):
    return run_fuzz_case(scenario, WEAK.with_seed(seed))


def search_and_shrink():
    """The whole pipeline: search -> shrink -> serialized repro."""
    report = fuzz_scenario(planted_scenario(), weak_runner, BUDGET)
    assert report.found_violation
    worst = report.worst
    shrunk = shrink_scenario(
        worst.scenario,
        lambda s: bool(weak_runner(s, worst.seed).violations),
    )
    return report, shrunk


class TestPlantedWeakness:
    def test_search_finds_violation_within_budget(self):
        report = fuzz_scenario(planted_scenario(), weak_runner, BUDGET)
        assert report.found_violation
        assert report.runs_executed <= (1 + BUDGET.mutation_rounds) * len(
            BUDGET.seeds
        )
        oracles = {v.oracle for v in report.worst.violations}
        assert "checkpoint_liveness" in oracles  # commits never landed

    def test_shrinks_to_minimal_repro(self):
        _, shrunk = search_and_shrink()
        assert shrunk.original_steps == 4
        assert shrunk.steps <= 3  # the acceptance bar
        assert shrunk.steps == 1  # and in fact minimal
        assert len(shrunk.removed) == 3
        # the minimized repro still fails on a fresh stack
        final = weak_runner(shrunk.scenario, 42)
        assert final.violations

    def test_search_and_shrink_are_deterministic(self):
        """Run the whole pipeline twice: identical summaries and an
        identical serialized minimized scenario (what CI diffs)."""
        first_report, first_shrunk = search_and_shrink()
        second_report, second_shrunk = search_and_shrink()
        assert first_report.summary_lines() == second_report.summary_lines()
        assert (
            first_shrunk.scenario.to_dict() == second_shrunk.scenario.to_dict()
        )
        assert first_shrunk.removed == second_shrunk.removed

    def test_healthy_stack_passes_the_same_search(self):
        """The violation comes from the planted weakness, not the
        scenario: the identical search on the healthy stack is clean."""
        healthy = FuzzHarnessConfig(duration=8.0)
        report = fuzz_scenario(
            planted_scenario(),
            lambda s, seed: run_fuzz_case(s, healthy.with_seed(seed)),
            FuzzBudget(seeds=(42,), mutation_rounds=1),
        )
        assert not report.found_violation
        assert report.worst.report.ok


class TestSearchMechanics:
    def test_mutate_step_time_replaces_one_step_only(self):
        scenario = planted_scenario()
        mutated = mutate_step_time(scenario, 2, 5.5)
        assert mutated is not scenario
        assert mutated.name == scenario.name  # jitter stream unchanged
        assert [s.at for s in scenario.steps] == [0.5, 0.8, 1.02, 2.0]
        assert [s.at for s in mutated.steps] == [0.5, 0.8, 5.5, 2.0]
        assert mutated.steps[2].perturbation is scenario.steps[2].perturbation
        assert mutate_step_time(scenario, 0, -3.0).steps[0].at == 0.0

    def test_search_validates_the_base_scenario(self):
        from repro.chaos import ChaosError

        with pytest.raises(ChaosError, match="no steps"):
            fuzz_scenario(Scenario("empty"), weak_runner, BUDGET)

    def test_mutations_target_observed_barriers(self):
        healthy = FuzzHarnessConfig(duration=6.0)
        report = fuzz_scenario(
            Scenario("aim").add(1.02, PEFlap(operator="work__c0", downtime=1.0)),
            lambda s, seed: run_fuzz_case(s, healthy.with_seed(seed)),
            FuzzBudget(seeds=(42,), mutation_rounds=3),
        )
        result = report.results[0]
        assert result.runs == 4  # base + 3 mutations
        assert len(result.barriers_targeted) == 3
        # every target is a label the instrumentation taps produce
        assert all(
            target.split(":")[0] in {"rescale", "checkpoint", "reroute"}
            for target in result.barriers_targeted
        )


class TestShrinkMechanics:
    def test_shrinker_minimizes_with_synthetic_predicate(self):
        scenario = planted_scenario()
        # failure iff the flap step (index 2's perturbation) is present
        def fails(candidate):
            return any(
                s.perturbation.KIND == "pe_flap" for s in candidate.steps
            )

        result = shrink_scenario(scenario, fails)
        assert result.steps == 1
        assert result.scenario.steps[0].perturbation.KIND == "pe_flap"

    def test_shrinker_respects_run_budget(self):
        scenario = planted_scenario()
        calls = []

        def fails(candidate):
            calls.append(1)
            return True  # everything "fails": shrink to a single step

        result = shrink_scenario(scenario, fails, max_runs=2)
        assert len(calls) <= 2
        assert result.runs <= 2
        assert result.steps >= 1  # budget ran out before full minimization
