"""The fuzz regression corpus replayer.

Every ``tests/corpus/*.json`` entry is a serialized chaos campaign —
the hand-found double-fault races of ``tests/test_double_faults.py``
ported into the scenario DSL, plus whatever minimized repros future
fuzz runs commit.  Each entry is replayed **twice** on fresh systems
through the full invariant-oracle suite: the scorecards and oracle
reports must be byte-identical across the two runs, and the current
stack must clear every applicable oracle.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import replace

import pytest

from repro.chaos import Campaign
from repro.chaos.fuzz import FuzzHarnessConfig, run_fuzz_case

CORPUS_DIR = pathlib.Path(__file__).parent / "corpus"
CORPUS = sorted(CORPUS_DIR.glob("*.json"))


def load_entry(path: pathlib.Path):
    """Parse one corpus file into its campaign and harness config."""
    entry = json.loads(path.read_text())
    campaign = Campaign.from_dict(entry["campaign"]).validate()
    config = FuzzHarnessConfig.from_overrides(entry.get("harness", {}))
    config = replace(
        config, seed=campaign.seed, duration=campaign.duration
    )
    if not campaign.checkpointed:
        config = replace(config, checkpoint_interval=0.0)
    return entry, campaign, config


def test_corpus_is_populated():
    assert CORPUS, "the regression corpus must not be empty"
    names = [json.loads(p.read_text())["campaign"]["name"] for p in CORPUS]
    assert len(names) == len(set(names))  # unique campaign names
    assert all(p.stem == name for p, name in zip(CORPUS, names))


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_entry_round_trips(path):
    """Serialization stability: from_dict -> to_dict is the identity."""
    entry, campaign, _ = load_entry(path)
    assert campaign.to_dict() == entry["campaign"]


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_entry_replays_clean_twice(path):
    """The acceptance bar: every corpus scenario replays with zero
    oracle violations on the current stack, twice, with byte-identical
    scorecards and oracle reports."""
    entry, campaign, config = load_entry(path)
    first = run_fuzz_case(campaign.scenario, config)
    # a fresh deserialization for the repeat, so the run cannot lean on
    # any state the first execution left on the scenario objects
    _, campaign_again, config_again = load_entry(path)
    second = run_fuzz_case(campaign_again.scenario, config_again)

    assert first.report.ok, [v.detail for v in first.violations]
    assert second.report.ok
    assert first.scorecard.render() == second.scorecard.render()
    assert first.report.lines() == second.report.lines()
    assert first.objective == second.objective
    # the disturbance actually landed (a corpus of no-ops proves nothing)
    assert first.scorecard.injections == len(campaign.scenario.steps)
    # every repro ships its evidence trail: the flight-recorder timeline
    # is byte-identical across the two runs and matches the committed
    # artifact the entry references
    assert first.timeline == second.timeline
    committed = (CORPUS_DIR / entry["timeline"]).read_text()
    assert first.timeline == committed


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_entry_replays_clean_batched(path):
    """Every corpus scenario also replays clean over the batched
    transport hot path (``batch_max_size=8``), twice, byte-identically —
    and matches the committed batched scorecard artifact, so a batching
    change that shifts any counter is caught as a diff, not just as an
    oracle violation."""
    _, campaign, config = load_entry(path)
    config = replace(config, batch_max_size=8)
    first = run_fuzz_case(campaign.scenario, config)
    _, campaign_again, config_again = load_entry(path)
    config_again = replace(config_again, batch_max_size=8)
    second = run_fuzz_case(campaign_again.scenario, config_again)

    assert first.report.ok, [v.detail for v in first.violations]
    assert second.report.ok
    assert first.scorecard.render() == second.scorecard.render()
    assert first.report.lines() == second.report.lines()
    assert first.objective == second.objective
    assert first.scorecard.injections == len(campaign.scenario.steps)
    committed = (CORPUS_DIR / f"{path.stem}.batched.scorecard.txt").read_text()
    assert first.scorecard.render() == committed


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_entry_replays_clean_exactly_once(path):
    """Every corpus scenario also replays clean under the exactly-once
    delivery guarantee on the batched hot path (``batch_max_size=8``),
    twice, byte-identically — with zero tuple loss and zero duplicates
    (the reliable wire retransmits and replays instead of condemning),
    and matches the committed ``.eo.scorecard.txt`` artifact."""
    _, campaign, config = load_entry(path)
    config = replace(config, batch_max_size=8, delivery="exactly_once")
    first = run_fuzz_case(campaign.scenario, config)
    _, campaign_again, config_again = load_entry(path)
    config_again = replace(
        config_again, batch_max_size=8, delivery="exactly_once"
    )
    second = run_fuzz_case(campaign_again.scenario, config_again)

    assert first.report.ok, [v.detail for v in first.violations]
    assert second.report.ok
    assert first.scorecard.render() == second.scorecard.render()
    assert first.report.lines() == second.report.lines()
    assert first.objective == second.objective
    assert first.scorecard.injections == len(campaign.scenario.steps)
    assert first.scorecard.tuples_lost == 0
    assert first.scorecard.duplicates == 0
    committed = (CORPUS_DIR / f"{path.stem}.eo.scorecard.txt").read_text()
    assert first.scorecard.render() == committed


def test_corpus_names_document_their_origin():
    for path in CORPUS:
        entry = json.loads(path.read_text())
        assert entry.get("origin"), f"{path.name}: missing origin pointer"
        assert entry["campaign"]["scenario"]["description"], path.name


def test_corpus_entries_reference_committed_timelines():
    """Each entry points at its flight-recorder timeline artifact, and
    the artifact is a well-formed dump for that entry's scope."""
    for path in CORPUS:
        entry = json.loads(path.read_text())
        artifact = entry.get("timeline")
        assert artifact, f"{path.name}: missing timeline artifact pointer"
        assert artifact == f"{path.stem}.timeline.txt"
        text = (CORPUS_DIR / artifact).read_text()
        assert text.startswith("# flight-recorder dump"), artifact
        assert "# reason: " in text
