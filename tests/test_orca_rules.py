"""Tests for the rule-based orchestration layer (Sec. 7 future work)."""

import pytest

from repro import ManagedApplication, OrcaDescriptor
from repro.errors import ScopeError
from repro.orca.rules import Rule, RuleOrchestrator, when
from repro.orca.scopes import (
    OperatorMetricScope,
    PEFailureScope,
    TimerScope,
    UserEventScope,
)
from repro.runtime.pe import PEState

from tests.conftest import make_linear_app


def submit_rules(system, logic, apps=None):
    apps = apps or [make_linear_app()]
    return system.submit_orchestrator(
        OrcaDescriptor(
            name="Rules",
            logic=lambda: logic,
            applications=[
                ManagedApplication(name=a.name, application=a) for a in apps
            ],
        )
    )


class TestRuleConstruction:
    def test_when_given_then(self):
        rule = (
            when("r", OperatorMetricScope("r"))
            .given(lambda ctx: ctx.value > 5)
            .then(lambda orca, ctx: None)
        )
        assert rule.name == "r"
        assert rule.condition is not None and rule.action is not None

    def test_scope_key_must_match_name(self):
        with pytest.raises(ScopeError):
            Rule(name="a", scope=OperatorMetricScope("b"))

    def test_once_builder(self):
        rule = (
            when("r", OperatorMetricScope("r")).once().then(lambda o, c: None)
        )
        assert rule.once

    def test_duplicate_rule_names_rejected(self):
        rules = [
            when("r", OperatorMetricScope("r")).then(lambda o, c: None),
            when("r", PEFailureScope("r")).then(lambda o, c: None),
        ]
        with pytest.raises(ScopeError):
            RuleOrchestrator(rules)

    def test_applies_respects_condition_and_once(self):
        rule = Rule(
            name="r",
            scope=OperatorMetricScope("r"),
            condition=lambda ctx: ctx > 5,
            once=True,
        )
        assert not rule.applies(3)
        assert rule.applies(10)
        rule.fired = 1
        assert not rule.applies(10)


class TestRuleDispatch:
    def test_metric_rule_fires_with_condition(self, system):
        fired = []
        rules = [
            when(
                "many-tuples",
                OperatorMetricScope("many-tuples")
                .addOperatorMetric("nTuplesProcessed")
                .addOperatorInstanceFilter("sink"),
            )
            .given(lambda ctx: ctx.value >= 10)
            .then(lambda orca, ctx: fired.append(ctx.value)),
        ]
        logic = RuleOrchestrator(rules, submit=["Linear"])
        submit_rules(system, logic)
        system.run_for(31.0)
        assert fired
        assert all(v >= 10 for v in fired)
        assert [f[0] for f in logic.firings] == ["many-tuples"] * len(fired)

    def test_condition_false_suppresses_action(self, system):
        fired = []
        rules = [
            when(
                "never",
                OperatorMetricScope("never").addOperatorMetric("nTuplesProcessed"),
            )
            .given(lambda ctx: False)
            .then(lambda orca, ctx: fired.append(1)),
        ]
        logic = RuleOrchestrator(rules, submit=["Linear"])
        submit_rules(system, logic)
        system.run_for(31.0)
        assert fired == []

    def test_once_rule_fires_single_time(self, system):
        fired = []
        rules = [
            when(
                "first-poll",
                OperatorMetricScope("first-poll").addOperatorMetric(
                    "nTuplesProcessed"
                ),
            )
            .once()
            .then(lambda orca, ctx: fired.append(ctx.epoch)),
        ]
        logic = RuleOrchestrator(rules, submit=["Linear"])
        submit_rules(system, logic)
        system.run_for(60.0)
        assert len(fired) == 1

    def test_user_rule_overrides_default_restart(self, system):
        handled = []
        rules = [
            when("my-failover", PEFailureScope("my-failover"))
            .then(lambda orca, ctx: handled.append(ctx.pe_id)),
        ]
        logic = RuleOrchestrator(rules, submit=["Linear"])
        service = submit_rules(system, logic)
        system.run_for(2.0)
        job = logic.jobs[0]
        victim = job.pes[0]
        system.failures.crash_pe(job.job_id, pe_id=victim.pe_id)
        system.run_for(3.0)
        assert handled == [victim.pe_id]
        assert logic.defaulted == []  # user rule took it
        assert victim.state is PEState.CRASHED  # rule did not restart

    def test_default_pe_restart_when_no_rule(self, system):
        """The paper's example: automatic PE restart as the default."""
        logic = RuleOrchestrator(rules=(), submit=["Linear"])
        submit_rules(system, logic)
        system.run_for(2.0)
        job = logic.jobs[0]
        victim = job.pes[0]
        system.failures.crash_pe(job.job_id, pe_id=victim.pe_id)
        system.run_for(3.0)
        assert len(logic.defaulted) == 1
        assert victim.state is PEState.RUNNING

    def test_default_disabled(self, system):
        logic = RuleOrchestrator(
            rules=(), submit=["Linear"], auto_restart_failed_pes=False
        )
        submit_rules(system, logic)
        system.run_for(2.0)
        job = logic.jobs[0]
        victim = job.pes[0]
        system.failures.crash_pe(job.job_id, pe_id=victim.pe_id)
        system.run_for(3.0)
        assert victim.state is PEState.CRASHED
        assert logic.defaulted == []

    def test_timer_and_user_rules(self, system):
        log = []
        rules = [
            when("tick", TimerScope("tick"))
            .then(lambda orca, ctx: log.append(("timer", ctx.timer_id))),
            when("cmd", UserEventScope("cmd").addNameFilter("go"))
            .then(lambda orca, ctx: log.append(("user", ctx.name))),
        ]
        logic = RuleOrchestrator(rules, submit=())
        service = submit_rules(system, logic)
        system.run_for(0.1)
        service.create_timer(1.0, timer_id="t1")
        service.command_tool.submit_event("go", {})
        system.run_for(2.0)
        assert ("user", "go") in log
        assert ("timer", "t1") in log

    def test_rule_actions_are_actuation_logged_with_txn(self, system):
        rules = [
            when("restart", PEFailureScope("restart"))
            .then(lambda orca, ctx: orca.restart_pe(ctx.pe_id)),
        ]
        logic = RuleOrchestrator(rules, submit=["Linear"])
        service = submit_rules(system, logic)
        system.run_for(2.0)
        job = logic.jobs[0]
        system.failures.crash_pe(job.job_id, pe_id=job.pes[0].pe_id)
        system.run_for(3.0)
        restarts = [r for r in service.actuation_log if r.action == "restart_pe"]
        assert restarts
        txn = restarts[0].txn_id
        # the journal ties the actuation back to the delivered event
        event = service.journal_entry(txn)
        assert event is not None and event.event_type == "pe_failure"
        assert service.actuations_for(txn) == restarts


class TestJournal:
    def test_journal_records_delivery_order(self, system):
        logic = RuleOrchestrator(rules=(), submit=["Linear"])
        service = submit_rules(system, logic)
        system.run_for(5.0)
        kinds = [e.event_type for e in service.event_journal]
        assert kinds[0] == "orca_start"
        txns = [e.txn_id for e in service.event_journal]
        assert txns == sorted(txns)

    def test_journal_entry_lookup_missing(self, system):
        logic = RuleOrchestrator(rules=(), submit=())
        service = submit_rules(system, logic)
        system.run_for(1.0)
        assert service.journal_entry(99999) is None
