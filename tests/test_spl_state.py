"""Tests for the partitioned operator state layer (repro.spl.state):
StateStore primitives, Operator snapshot/restore hooks, the stateful
library operators (Aggregate, Join, Dedup) ported onto the store, window
snapshots, and the compiler's PESpec state descriptors."""

import pytest

from repro.spl.compiler import SPLCompiler
from repro.spl.application import Application
from repro.spl.library import (
    Aggregate,
    Beacon,
    Dedup,
    Join,
    Sink,
    stable_channel_of,
)
from repro.spl.operators import Operator
from repro.spl.state import GlobalState, KeyedState, StateStore, estimate_value_size
from repro.spl.tuples import Punctuation, StreamTuple
from repro.spl.windows import (
    SlidingCountWindow,
    SlidingTimeWindow,
    TumblingCountWindow,
)

from tests.conftest import make_operator_harness


def tup(**values):
    return StreamTuple(values)


class TestKeyedState:
    def test_put_get_delete(self):
        state = KeyedState("counts")
        state.put("a", 1)
        assert state.get("a") == 1
        assert "a" in state and len(state) == 1
        assert state.delete("a") and not state.delete("a")
        assert state.get("a", 42) == 42

    def test_update_and_setdefault(self):
        state = KeyedState("counts")
        assert state.update("k", lambda n: n + 1, default=0) == 1
        assert state.update("k", lambda n: n + 1, default=0) == 2
        bucket = state.setdefault("list", list)
        bucket.append(5)
        assert state.get("list") == [5]

    def test_extract_partition_removes_entries(self):
        state = KeyedState("counts")
        for i in range(10):
            state.put(f"k{i}", i)
        moved = state.extract_partition(lambda key: int(key[1:]) % 2 == 0)
        assert set(moved) == {f"k{i}" for i in range(0, 10, 2)}
        assert set(state.keys()) == {f"k{i}" for i in range(1, 10, 2)}

    def test_install_merges_on_collision(self):
        state = KeyedState("counts")
        state.put("k", 3)
        state.install({"k": 4, "j": 1}, merge_fn=lambda old, new: old + new)
        assert state.get("k") == 7 and state.get("j") == 1
        state.install({"k": 100})  # incoming wins without merge_fn
        assert state.get("k") == 100

    def test_snapshot_is_detached(self):
        state = KeyedState("w")
        state.put("k", [1, 2])
        snap = state.snapshot()
        state.get("k").append(3)
        assert snap["k"] == [1, 2]
        state.restore(snap)
        assert state.get("k") == [1, 2]


class TestGlobalStateAndStore:
    def test_global_default_factory(self):
        gs = GlobalState("order", default=list)
        gs.value.append(1)
        assert gs.value == [1]

    def test_store_handles_survive_restore(self):
        store = StateStore()
        counts = store.keyed("counts")
        order = store.global_("order", default=list)
        counts.put("a", 1)
        order.value.append("a")
        snap = store.snapshot()
        counts.put("a", 99)
        counts.put("b", 2)
        order.value.append("b")
        store.restore(snap)
        # the same handle objects see the restored contents
        assert counts.get("a") == 1 and "b" not in counts
        assert order.value == ["a"]

    def test_store_accounting(self):
        store = StateStore()
        assert not store.in_use and store.n_keys() == 0
        store.keyed("a").put("k", "value")
        store.keyed("b").put("k2", 7)
        store.global_("g").set([1, 2, 3])
        assert store.in_use
        assert store.n_keys() == 2
        assert store.size_bytes() > 0

    def test_estimate_value_size_variants(self):
        assert estimate_value_size("abcd") == 4
        assert estimate_value_size(3.5) == 8
        assert estimate_value_size(True) == 1
        assert estimate_value_size([1, 2]) == 8 + 16
        assert estimate_value_size({"k": 1}) == 8 + 1 + 8
        assert estimate_value_size(tup(a=1)) == tup(a=1).size_bytes
        assert estimate_value_size(object()) == 16


class TestOperatorSnapshotRestore:
    def test_snapshot_roundtrip_through_fresh_instance(self):
        class Counter(Operator):
            STATEFUL = True

            def on_tuple(self, t, port):
                self.state.keyed("counts").update(
                    t["key"], lambda n: n + 1, default=0
                )

        op, _ = make_operator_harness(Counter)
        for key in ("a", "a", "b"):
            op._process(tup(key=key), 0)
        payload = op.snapshot()

        fresh, _ = make_operator_harness(Counter)
        fresh.restore(payload)
        assert fresh.state.keyed("counts").get("a") == 2
        assert fresh.state.keyed("counts").get("b") == 1

    def test_on_snapshot_extra_rides_along(self):
        class WithExtra(Operator):
            def __init__(self, ctx):
                super().__init__(ctx)
                self.cursor = 0

            def on_snapshot(self):
                return {"cursor": self.cursor}

            def on_restore(self, extra):
                self.cursor = extra["cursor"]

        op, _ = make_operator_harness(WithExtra)
        op.cursor = 17
        payload = op.snapshot()
        fresh, _ = make_operator_harness(WithExtra)
        fresh.restore(payload)
        assert fresh.cursor == 17


class TestAggregateOnState:
    def agg(self, batch):
        return {"total": sum(t["v"] for t in batch)}

    def test_unkeyed_aggregate_still_tumbles(self):
        op, emitted = make_operator_harness(
            Aggregate, params={"count": 2, "aggregator": self.agg}
        )
        for v in (1, 2, 3):
            op._process(tup(v=v), 0)
        tuples = [i for _, i in emitted if isinstance(i, StreamTuple)]
        assert [t["total"] for t in tuples] == [3]
        op._process(Punctuation.FINAL, 0)
        tuples = [i for _, i in emitted if isinstance(i, StreamTuple)]
        assert [t["total"] for t in tuples] == [3, 3]  # partial flush

    def test_keyed_aggregate_tumbles_per_key(self):
        op, emitted = make_operator_harness(
            Aggregate, params={"count": 2, "aggregator": self.agg, "key": "k"}
        )
        op._process(tup(k="a", v=1), 0)
        op._process(tup(k="b", v=10), 0)
        op._process(tup(k="a", v=2), 0)  # tumbles key a
        tuples = [i for _, i in emitted if isinstance(i, StreamTuple)]
        assert [(t["k"], t["total"]) for t in tuples] == [("a", 3)]
        op._process(Punctuation.FINAL, 0)
        tuples = [i for _, i in emitted if isinstance(i, StreamTuple)]
        assert ("b", 10) in [(t["k"], t["total"]) for t in tuples]

    def test_snapshot_mid_window_preserves_partial_window(self):
        """State edge case: an operator snapshotted mid-window resumes the
        window exactly where it was."""
        op, emitted = make_operator_harness(
            Aggregate, params={"count": 5, "aggregator": self.agg}
        )
        for v in (1, 2, 3):
            op._process(tup(v=v), 0)
        assert emitted == []  # window partially filled
        payload = op.snapshot()

        fresh, fresh_emitted = make_operator_harness(
            Aggregate, params={"count": 5, "aggregator": self.agg}
        )
        fresh.restore(payload)
        fresh._process(tup(v=4), 0)
        fresh._process(tup(v=5), 0)
        tuples = [i for _, i in fresh_emitted if isinstance(i, StreamTuple)]
        assert [t["total"] for t in tuples] == [15]  # all five values

    def test_keyed_snapshot_mid_window(self):
        op, _ = make_operator_harness(
            Aggregate, params={"count": 3, "aggregator": self.agg, "key": "k"}
        )
        op._process(tup(k="a", v=1), 0)
        op._process(tup(k="a", v=2), 0)
        payload = op.snapshot()
        fresh, fresh_emitted = make_operator_harness(
            Aggregate, params={"count": 3, "aggregator": self.agg, "key": "k"}
        )
        fresh.restore(payload)
        fresh._process(tup(k="a", v=3), 0)
        tuples = [i for _, i in fresh_emitted if isinstance(i, StreamTuple)]
        assert [(t["k"], t["total"]) for t in tuples] == [("a", 6)]


class TestJoinOnState:
    def test_join_matches_by_key(self):
        op, emitted = make_operator_harness(Join, params={"key": "k"})
        op._process(tup(k="x", left=1), 0)
        op._process(tup(k="y", left=2), 0)
        op._process(tup(k="x", right=10), 1)
        tuples = [i for _, i in emitted if isinstance(i, StreamTuple)]
        assert len(tuples) == 1
        assert tuples[0]["left"] == 1 and tuples[0]["right"] == 10

    def test_join_window_eviction_spans_keys(self):
        op, emitted = make_operator_harness(Join, params={"key": "k", "window": 2})
        op._process(tup(k="a", n=1), 0)
        op._process(tup(k="b", n=2), 0)
        op._process(tup(k="c", n=3), 0)  # evicts the (a, 1) entry
        op._process(tup(k="a", m=9), 1)
        assert [i for _, i in emitted if isinstance(i, StreamTuple)] == []
        op._process(tup(k="b", m=8), 1)
        tuples = [i for _, i in emitted if isinstance(i, StreamTuple)]
        assert len(tuples) == 1 and tuples[0]["n"] == 2

    def test_join_state_is_keyed_by_join_key(self):
        op, _ = make_operator_harness(Join, params={"key": "k"})
        op._process(tup(k="x", left=1), 0)
        op._process(tup(k="y", right=2), 1)
        assert set(op.state.keyed("w0").keys()) == {"x"}
        assert set(op.state.keyed("w1").keys()) == {"y"}
        assert Join.STATEFUL

    def test_join_window_bound_survives_migration(self):
        """Regression: eviction bookkeeping lives inside the keyed entries,
        so a migrated partition still evicts on the destination operator
        (an external order list would have been left behind)."""
        src, _ = make_operator_harness(Join, params={"key": "k", "window": 3})
        for i in range(3):
            src._process(tup(k=f"k{i}", n=i), 0)
        dst, _ = make_operator_harness(Join, params={"key": "k", "window": 3})
        moved = src.state.keyed("w0").extract_partition(lambda k: k in ("k0", "k1"))
        dst.state.keyed("w0").install(moved)
        # destination: 2 migrated + 2 fresh entries -> bound of 3 enforced,
        # and the evicted entries are the oldest *migrated* ones
        dst._process(tup(k="a", n=10), 0)
        dst._process(tup(k="b", n=11), 0)
        total = sum(len(b) for _, b in dst.state.keyed("w0").items())
        assert total == 3
        assert "k0" not in dst.state.keyed("w0")  # oldest migrated entry evicted

    def test_join_seq_floor_bumps_past_migrated_entries(self):
        """Regression: migrated entries can carry seqs far above the
        destination's local counter; appends must not slot below them or
        eviction misclassifies live entries as stale and the window grows
        without bound."""
        src, _ = make_operator_harness(Join, params={"key": "k", "window": 3})
        for i in range(50):  # drive the source's arrival seq well past 0
            src._process(tup(k="K", n=i), 0)
        dst, _ = make_operator_harness(Join, params={"key": "k", "window": 3})
        moved = src.state.keyed("w0").extract_partition(lambda k: True)
        dst.state.keyed("w0").install(moved)  # entries with seqs 47..49
        for i in range(10):  # fresh counter would restart at 0 without the floor
            dst._process(tup(k="K", n=100 + i), 0)
        bucket = dst.state.keyed("w0").get("K")
        assert len(bucket) == 3  # bound enforced, no leak
        seqs = [entry[0] for entry in bucket]
        assert seqs == sorted(seqs)  # bucket stayed seq-sorted
        # the window holds the *newest* tuples, not stuck migrated ones
        assert [entry[1]["n"] for entry in bucket] == [107, 108, 109]


class TestDedup:
    def test_first_occurrence_passes_repeats_drop(self):
        op, emitted = make_operator_harness(Dedup, params={"key": "id"})
        for value in ("a", "b", "a", "a", "c", "b"):
            op._process(tup(id=value), 0)
        passed = [i["id"] for _, i in emitted if isinstance(i, StreamTuple)]
        assert passed == ["a", "b", "c"]
        assert op.metric("nDuplicates").value == 3

    def test_capacity_eviction_readmits(self):
        op, emitted = make_operator_harness(
            Dedup, params={"key": "id", "capacity": 2}
        )
        for value in ("a", "b", "c", "a"):  # 'a' evicted by 'c'
            op._process(tup(id=value), 0)
        passed = [i["id"] for _, i in emitted if isinstance(i, StreamTuple)]
        assert passed == ["a", "b", "c", "a"]

    def test_invalid_capacity_rejected(self):
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            make_operator_harness(Dedup, params={"key": "id", "capacity": 0})

    def test_capacity_bound_survives_migration(self):
        """Regression: the first-seen seq rides inside each keyed entry, so
        a migrated seen-set still counts toward (and is evictable from)
        the destination's capacity bound."""
        src, _ = make_operator_harness(Dedup, params={"key": "id", "capacity": 3})
        for value in ("a", "b"):
            src._process(tup(id=value), 0)
        dst, dst_emitted = make_operator_harness(
            Dedup, params={"key": "id", "capacity": 3}
        )
        moved = src.state.keyed("seen").extract_partition(lambda k: True)
        dst.state.keyed("seen").install(moved)
        # migrated keys still dedup on the destination
        dst._process(tup(id="a"), 0)
        assert dst.metric("nDuplicates").value == 1
        # and they occupy (and age out of) the capacity bound
        dst._process(tup(id="x"), 0)
        dst._process(tup(id="y"), 0)  # capacity 3 exceeded: evicts 'a'
        assert len(dst.state.keyed("seen")) == 3
        assert "a" not in dst.state.keyed("seen")
        passed = [i["id"] for _, i in dst_emitted if isinstance(i, StreamTuple)]
        assert passed == ["x", "y"]


class TestWindowSnapshots:
    def test_sliding_time_window_roundtrip(self):
        window = SlidingTimeWindow(span=10.0)
        for ts, v in [(1.0, 2.0), (2.0, 4.0), (3.0, 6.0)]:
            window.insert(ts, v)
        clone = SlidingTimeWindow.from_snapshot(window.to_snapshot())
        assert clone.mean() == window.mean()
        assert clone.values() == window.values()

    def test_tumbling_count_window_roundtrip(self):
        window = TumblingCountWindow(size=4)
        window.insert("a")
        window.insert("b")
        clone = TumblingCountWindow.from_snapshot(window.to_snapshot())
        assert len(clone) == 2
        assert clone.insert("c") is None
        assert clone.insert("d") == ["a", "b", "c", "d"]

    def test_sliding_count_window_roundtrip(self):
        window = SlidingCountWindow(size=3)
        for v in (1.0, 2.0, 3.0, 4.0):
            window.insert(v)
        clone = SlidingCountWindow.from_snapshot(window.to_snapshot())
        assert clone.values() == [2.0, 3.0, 4.0]

    def test_window_objects_survive_store_snapshot(self):
        store = StateStore()
        store.keyed("windows").put("sym", SlidingTimeWindow(span=5.0))
        store.keyed("windows").get("sym").insert(1.0, 10.0)
        snap = store.snapshot()
        store.keyed("windows").get("sym").insert(2.0, 20.0)
        store.restore(snap)
        assert store.keyed("windows").get("sym").values() == [10.0]


class TestCompilerStateDescriptors:
    def test_pespec_records_stateful_operators(self):
        app = Application("Desc")
        g = app.graph
        src = g.add_operator("src", Beacon, params={"values": {}}, partition="p")
        agg = g.add_operator(
            "agg",
            Aggregate,
            params={"count": 2, "aggregator": lambda b: {}},
            partition="p",
        )
        sink = g.add_operator("sink", Sink, partition="p")
        g.connect(src.oport(0), agg.iport(0))
        g.connect(agg.oport(0), sink.iport(0))
        compiled = SPLCompiler("manual").compile(app)
        assert len(compiled.pes) == 1
        assert compiled.pes[0].stateful_ops == ["agg"]

    def test_stable_channel_of_matches_modulo(self):
        for width in (1, 2, 5):
            for key in ("a", "b", 3, None):
                owner = stable_channel_of(key, width)
                assert 0 <= owner < width
                assert owner == stable_channel_of(key, width)  # deterministic
