"""Tests for the repro.obs metrics registry and naming shim: counter/
gauge/histogram semantics, deterministic quantiles, Prometheus and
JSONL rendering, the canonical ``repro_*`` <-> legacy camelCase metric
name translation (and that SRM queries accept both spellings), the
``subscribe_runtime`` listener helper, and the hub's SRM export."""

import json

import pytest

from repro.obs import (
    CANONICAL_BY_LEGACY,
    MetricsRegistry,
    canonical_metric_name,
    legacy_metric_name,
    sanitize_metric_name,
    subscribe_runtime,
)
from tests.conftest import make_linear_app


class TestRegistry:
    def test_counter_get_or_create_identity(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_hits_total", {"op": "x"})
        b = reg.counter("repro_hits_total", {"op": "x"})
        c = reg.counter("repro_hits_total", {"op": "y"})
        assert a is b and a is not c
        a.inc()
        a.inc(2)
        assert a.value == 3 and c.value == 0

    def test_gauge_set(self):
        reg = MetricsRegistry()
        g = reg.gauge("repro_depth")
        g.set(7.5)
        assert g.value == 7.5

    def test_kind_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("repro_thing")
        with pytest.raises(ValueError):
            reg.gauge("repro_thing")

    def test_histogram_quantiles_interpolate(self):
        reg = MetricsRegistry()
        h = reg.histogram(
            "repro_lat", buckets=(1.0, 2.0, 4.0, float("inf"))
        )
        for v in (0.5, 1.5, 1.5, 3.0):
            h.observe(v)
        assert h.total == 4
        assert h.sum == 6.5
        assert h.min == 0.5 and h.max == 3.0
        assert 0.0 < h.quantile(0.5) <= 2.0
        assert h.quantile(0.99) <= 4.0
        # quantiles are a pure function of the bucket counts
        assert h.quantile(0.5) == h.quantile(0.5)

    def test_histogram_inf_bucket_clamps_to_observed_max(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_big", buckets=(1.0, float("inf")))
        h.observe(50.0)
        assert h.quantile(0.99) <= 50.0

    def test_empty_histogram_quantile_is_zero(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_none")
        assert h.quantile(0.5) == 0.0


class TestRendering:
    def build(self):
        reg = MetricsRegistry()
        reg.counter(
            "repro_hits_total", {"op": "b"}, help_text="hits"
        ).inc(2)
        reg.counter("repro_hits_total", {"op": "a"}, help_text="hits").inc()
        reg.gauge("repro_depth", help_text="queue depth").set(3)
        h = reg.histogram(
            "repro_lat_seconds",
            {"op": "a"},
            help_text="latency",
            buckets=(0.1, 1.0, float("inf")),
        )
        h.observe(0.05)
        h.observe(0.5)
        return reg

    def test_prometheus_format(self):
        text = self.build().render_prometheus()
        lines = text.splitlines()
        assert "# HELP repro_hits_total hits" in lines
        assert "# TYPE repro_hits_total counter" in lines
        # series sorted within a family, families sorted by name
        assert lines.index('repro_hits_total{op="a"} 1') < lines.index(
            'repro_hits_total{op="b"} 2'
        )
        assert 'repro_lat_seconds_bucket{op="a",le="0.1"} 1' in lines
        assert 'repro_lat_seconds_bucket{op="a",le="+Inf"} 2' in lines
        assert 'repro_lat_seconds_count{op="a"} 2' in lines
        assert "repro_depth 3" in lines

    def test_prometheus_is_byte_stable(self):
        assert self.build().render_prometheus() == self.build().render_prometheus()

    def test_jsonl_rows_carry_quantiles(self):
        rows = [
            json.loads(line)
            for line in self.build().render_jsonl().splitlines()
        ]
        assert all(list(r) == sorted(r) for r in rows)  # sort_keys
        hist = next(r for r in rows if r["type"] == "histogram")
        assert hist["count"] == 2
        assert {"p50", "p95", "p99", "min", "max"} <= set(hist)
        counter = next(
            r
            for r in rows
            if r["type"] == "counter" and r["labels"] == {"op": "b"}
        )
        assert counter["value"] == 2


class TestNaming:
    def test_catalog_round_trips(self):
        for legacy, canonical in CANONICAL_BY_LEGACY.items():
            assert canonical_metric_name(legacy) == canonical
            assert legacy_metric_name(canonical) == legacy

    def test_srm_builtins_are_catalogued(self):
        assert canonical_metric_name("nTuplesProcessed") == (
            "repro_tuples_processed_total"
        )
        assert canonical_metric_name("stateBytes") == "repro_pe_state_bytes"
        assert canonical_metric_name("queueSize") == "repro_queue_depth"

    def test_per_kind_injection_counters(self):
        assert canonical_metric_name("chaosInjections.crash_pe") == (
            "repro_chaos_injections_crash_pe"
        )

    def test_unknown_names_sanitize(self):
        assert canonical_metric_name("nDiscarded") == "repro_n_discarded"
        assert sanitize_metric_name("my.metric-2") == "my_metric_2"

    def test_legacy_passthrough_for_unknown(self):
        assert legacy_metric_name("nDiscarded") == "nDiscarded"
        assert legacy_metric_name("repro_not_in_catalog") == (
            "repro_not_in_catalog"
        )


class TestSRMShim:
    """Satellite 2: SRM stores legacy spellings; queries resolve both."""

    def push_metrics(self, system):
        job = system.submit_job(make_linear_app())
        system.run_for(system.config.metric_push_interval + 1.0)
        pe = job.pe_of_operator("sink")
        return job, pe

    def test_point_query_accepts_both_spellings(self, system):
        job, pe = self.push_metrics(system)
        legacy = system.srm.metric_value(
            job.job_id, pe.pe_id, "sink", "nTuplesProcessed"
        )
        canonical = system.srm.metric_value(
            job.job_id, pe.pe_id, "sink", "repro_tuples_processed_total"
        )
        assert legacy is not None and legacy > 0
        assert canonical == legacy

    def test_aggregate_accepts_both_spellings(self, system):
        job, _ = self.push_metrics(system)
        legacy = system.srm.aggregate_operator_metric(
            job.job_id, ["sink"], "nTuplesProcessed"
        )
        canonical = system.srm.aggregate_operator_metric(
            job.job_id, ["sink"], "repro_tuples_processed_total"
        )
        assert legacy.total > 0
        assert canonical.total == legacy.total

    def test_group_sums_accept_both_spellings(self, system):
        job, _ = self.push_metrics(system)
        groups = {0: ["sink"]}
        legacy = system.srm.sum_operator_metric_by_group(
            job.job_id, groups, "nTuplesProcessed"
        )
        canonical = system.srm.sum_operator_metric_by_group(
            job.job_id, groups, "repro_tuples_processed_total"
        )
        assert legacy == canonical and legacy[0] > 0

    def test_storage_keeps_legacy_names(self, system):
        """The shim sits at the query layer, not in storage: HC pushes
        land under the legacy spelling so existing scope filters and
        dashboards keep matching."""
        job, _ = self.push_metrics(system)
        names = {s.name for s in system.srm.get_metrics([job.job_id])}
        assert "nTuplesProcessed" in names
        assert "repro_tuples_processed_total" not in names


class TestHubExport:
    def test_scrape_mirrors_srm_under_canonical_names(self, system):
        job = system.submit_job(make_linear_app())
        system.run_for(system.config.metric_push_interval + 1.0)
        assert system.obs.scrape_srm() > 0
        text = system.obs.render_prometheus(scrape=False)
        assert "repro_tuples_processed_total{" in text
        assert f'job="{job.job_id}"' in text
        assert "nTuplesProcessed" not in text

    def test_jsonl_export_parses(self, system):
        system.submit_job(make_linear_app())
        system.run_for(4.0)
        rows = [
            json.loads(line)
            for line in system.obs.render_jsonl().splitlines()
        ]
        assert rows
        assert {"name", "type", "labels"} <= set(rows[0])

    def test_batch_size_histogram_only_when_batching(self, system):
        """The batch-size histogram is created lazily on the first
        flush, so an unbatched run's Prometheus render stays
        byte-identical to the pre-batching artifacts."""
        from repro.runtime import SystemConfig, SystemS

        system.submit_job(make_linear_app())
        system.run_for(4.0)
        assert "repro_transport_batch_size" not in (
            system.obs.render_prometheus()
        )

        batched = SystemS(
            hosts=2, config=SystemConfig(batch_max_size=8)
        )
        batched.submit_job(make_linear_app())
        batched.run_for(4.0)
        text = batched.obs.render_prometheus()
        assert "repro_transport_batch_size_count" in text
        hist = batched.obs.metrics.histogram(
            "repro_transport_batch_size"
        )
        assert hist.total > 0 and hist.max <= 8


class TestListenerHelper:
    """Satellite 1: one documented registration surface for every
    runtime instrumentation tap, with symmetric detach."""

    def tap_lengths(self, system):
        return (
            len(system.elastic.barrier_listeners),
            len(system.elastic.reroute_listeners),
            len(system.elastic.reclaim_listeners),
            len(system.elastic.rescale_listeners),
            len(system.checkpoints.attempt_listeners),
            len(system.checkpoints.commit_listeners),
            len(system.sam.pe_failure_observers),
            len(system.sam.pe_restart_observers),
            len(system.sam.topology_observers),
            len(system.chaos.injection_listeners),
            len(system.transport.delivery_taps),
        )

    def test_attach_detach_is_symmetric(self, system):
        before = self.tap_lengths(system)
        seen = []
        sub = subscribe_runtime(
            system,
            on_barrier=lambda e: seen.append(e),
            on_checkpoint_commit=lambda r: seen.append(r),
            on_pe_failure=lambda pe, reason: seen.append(reason),
            on_injection=lambda inj: seen.append(inj),
        )
        assert sub.attached and len(sub) == 4
        after = self.tap_lengths(system)
        assert sum(after) == sum(before) + 4
        sub.detach()
        assert not sub.attached
        assert self.tap_lengths(system) == before

    def test_topology_observer_fires_on_external_rescale(self, system):
        from tests.test_elastic import build_region_app

        job = system.submit_job(build_region_app(width=1, rate=50.0))
        system.run_for(1.0)
        changes = []
        sub = subscribe_runtime(
            system,
            on_topology=lambda j, change: changes.append((j.job_id, change)),
        )
        system.elastic.set_channel_width(job, "region", 3)
        system.run_for(20.0)
        assert (job.job_id, "add_pes") in changes
        system.elastic.set_channel_width(job, "region", 1)
        system.run_for(20.0)
        assert (job.job_id, "remove_pes") in changes
        sub.detach()
        assert system.sam.topology_observers == []

    def test_detach_is_idempotent(self, system):
        sub = subscribe_runtime(system, on_injection=lambda inj: None)
        sub.detach()
        sub.detach()
        assert not sub.attached

    def test_redundant_detach_is_recorded(self, system):
        """A double detach stays a no-op, but the subscription counts
        it so teardown bugs surface in assertions instead of silently
        passing."""
        sub = subscribe_runtime(system, on_injection=lambda inj: None)
        assert sub.redundant_detaches == 0
        sub.detach()
        assert sub.redundant_detaches == 0
        sub.detach()
        sub.detach()
        assert sub.redundant_detaches == 2
        assert not sub.attached

    def test_no_callbacks_is_an_empty_subscription(self, system):
        sub = subscribe_runtime(system)
        assert len(sub) == 0
        sub.detach()
