"""Tests for the repro.checkpoint subsystem: dirty tracking, the epoch
store (commit/retention/torn fallback), the background service, crash
rehydration from committed epochs, detour seeding + unmask reclaim, the
scale-in global-merge hook, and the new ORCA events."""

import pytest

from repro import ManagedApplication, Orchestrator, OrcaDescriptor, SystemS
from repro.checkpoint import CheckpointStore
from repro.orca.scopes import CheckpointScope
from repro.runtime.system import SystemConfig
from repro.spl.application import Application
from repro.spl.library import CallbackSource, KeyedCounter, Sink, stable_channel_of
from repro.spl.operators import Operator
from repro.spl.parallel import parallel
from repro.spl.state import KeyedState

N_KEYS = 8


def keyed_generator(n_keys=N_KEYS):
    def generate(now, count):
        return [{"key": f"k{count % n_keys}", "seq": count}]

    return generate


def build_plain_app(period=0.05, limit=None):
    app = Application("PlainCkpt")
    g = app.graph
    src = g.add_operator(
        "src",
        CallbackSource,
        params={"generator": keyed_generator(), "period": period, "limit": limit},
        partition="feed",
    )
    work = g.add_operator("work", KeyedCounter, params={"key": "key"})
    sink = g.add_operator("sink", Sink, partition="out")
    g.connect(src.oport(0), work.iport(0))
    g.connect(work.oport(0), sink.iport(0))
    return app


def build_region_app(width=2, period=0.02, limit=None):
    app = Application("RegionCkpt")
    g = app.graph
    src = g.add_operator(
        "src",
        CallbackSource,
        params={"generator": keyed_generator(), "period": period, "limit": limit},
        partition="feed",
    )
    work = g.add_operator(
        "work",
        KeyedCounter,
        params={"key": "key"},
        parallel=parallel(width=width, name="region", partition_by="key", max_width=8),
    )
    sink = g.add_operator("sink", Sink, partition="out")
    g.connect(src.oport(0), work.iport(0))
    g.connect(work.oport(0), sink.iport(0))
    return app


class TestDirtyTracking:
    def test_first_capture_is_full(self):
        state = KeyedState("s")
        state.put("a", 1)
        full, changed, dropped = state.dirty_snapshot()
        assert full and changed == {"a": 1} and dropped == set()

    def test_delta_after_mark_clean(self):
        state = KeyedState("s")
        for i in range(5):
            state.put(f"k{i}", i)
        state.mark_clean()
        state.update("k1", lambda v: v + 10, default=0)
        full, changed, dropped = state.dirty_snapshot()
        assert not full
        assert changed == {"k1": 11}
        assert dropped == set()
        assert state.dirty_count == 1

    def test_get_of_present_key_marks_dirty(self):
        state = KeyedState("s")
        state.put("a", [1])
        state.mark_clean()
        state.get("a").append(2)  # in-place mutation through the handle
        full, changed, _ = state.dirty_snapshot()
        assert not full and changed == {"a": [1, 2]}
        # absent keys are not tracked
        state.mark_clean()
        assert state.get("ghost") is None
        assert state.dirty_count == 0

    def test_delete_tracks_dropped_keys(self):
        state = KeyedState("s")
        state.put("a", 1)
        state.put("b", 2)
        state.mark_clean()
        state.delete("a")
        full, changed, dropped = state.dirty_snapshot()
        assert not full and changed == {} and dropped == {"a"}
        # re-adding moves it back to changed
        state.put("a", 3)
        full, changed, dropped = state.dirty_snapshot()
        assert changed == {"a": 3} and dropped == set()

    def test_restore_invalidates_deltas(self):
        state = KeyedState("s")
        state.put("a", 1)
        state.mark_clean()
        state.restore({"x": 9})
        full, changed, dropped = state.dirty_snapshot()
        assert full and changed == {"x": 9}

    def test_snapshot_values_are_detached(self):
        state = KeyedState("s")
        state.put("a", [1])
        _, changed, _ = state.dirty_snapshot()
        changed["a"].append(2)
        # mutating the captured copy must not affect the live value
        assert state.get("a") == [1]


class TestCheckpointStore:
    def test_commit_gates_visibility(self):
        store = CheckpointStore()
        entry = store.record("j", "pe", {"op": {"store": {}}}, time=1.0)
        assert store.latest_committed("j", "pe") is None  # torn until commit
        assert store.latest("j", "pe") is entry
        store.commit("j", "pe", entry.epoch)
        assert store.latest_committed("j", "pe") is entry

    def test_commit_unknown_epoch_raises(self):
        store = CheckpointStore()
        with pytest.raises(KeyError):
            store.commit("j", "pe", 42)

    def test_retention_keeps_last_n_committed(self):
        store = CheckpointStore(retention=2)
        epochs = []
        for t in range(4):
            entry = store.record("j", "pe", {}, time=float(t))
            store.commit("j", "pe", entry.epoch)
            epochs.append(entry.epoch)
        retained = [e.epoch for e in store.epochs_of("j", "pe")]
        assert retained == epochs[-2:]

    def test_torn_epoch_older_than_commit_is_trimmed(self):
        store = CheckpointStore(retention=2)
        torn = store.record("j", "pe", {}, time=0.0)
        fresh = store.record("j", "pe", {}, time=1.0)
        store.commit("j", "pe", fresh.epoch)
        retained = [e.epoch for e in store.epochs_of("j", "pe")]
        assert torn.epoch not in retained

    def test_epoch_clock_is_monotone_across_pes(self):
        store = CheckpointStore()
        a = store.record("j", "pe1", {}, time=0.0)
        b = store.record("j", "pe2", {}, time=0.0)
        assert b.epoch == a.epoch + 1

    def test_drop_job_and_pe(self):
        store = CheckpointStore()
        e1 = store.record("j1", "pe1", {}, time=0.0)
        store.commit("j1", "pe1", e1.epoch)
        e2 = store.record("j1", "pe2", {}, time=0.0)
        store.commit("j1", "pe2", e2.epoch)
        store.drop_pe("j1", "pe1")
        assert store.latest_committed("j1", "pe1") is None
        assert store.latest_committed("j1", "pe2") is not None
        store.drop_job("j1")
        assert store.latest_committed("j1", "pe2") is None
        assert store.job_status("j1") == {}

    def test_retention_validation(self):
        with pytest.raises(ValueError):
            CheckpointStore(retention=0)


class TestPeriodicCheckpointing:
    def test_background_loop_commits_epochs(self):
        system = SystemS(hosts=6, config=SystemConfig(checkpoint_interval=0.5))
        job = system.submit_job(build_plain_app())
        system.run_for(3.0)
        pe = job.pe_of_operator("work")
        latest = system.checkpoint_store.latest_committed(job.job_id, pe.pe_id)
        assert latest is not None and latest.committed
        assert "work" in latest.payloads
        assert len(system.checkpoints.records) >= 4

    def test_disabled_by_default_paper_semantics(self):
        system = SystemS(hosts=6)
        job = system.submit_job(build_plain_app())
        system.run_for(3.0)
        pe = job.pe_of_operator("work")
        assert system.checkpoint_store.latest_committed(job.job_id, pe.pe_id) is None
        pe.crash("test")
        pe.restart(rehydrate=True)
        assert pe.last_restore is not None
        assert pe.last_restore.source == "none"
        assert len(pe.operators["work"].state.keyed("counts")) == 0

    def test_incremental_capture_skips_cold_partitions(self):
        system = SystemS(hosts=6)
        job = system.submit_job(build_plain_app(limit=64))
        system.run_for(10.0)  # feed exhausted: all 8 keys hold counts
        pe = job.pe_of_operator("work")
        first = system.checkpoints.checkpoint_pe(pe)
        assert first.full and first.keys_total == N_KEYS
        assert first.keys_dirty == N_KEYS
        # touch exactly one key, then capture again: only it re-serializes
        pe.operators["work"].state.keyed("counts").update(
            "k0", lambda v: v + 1, default=0
        )
        second = system.checkpoints.checkpoint_pe(pe)
        assert not second.full
        assert second.keys_dirty == 1
        assert second.keys_total == N_KEYS
        assert second.bytes_written < first.bytes_written
        # the incremental epoch still materializes the complete map
        latest = system.checkpoint_store.latest_committed(job.job_id, pe.pe_id)
        keyed = latest.payloads["work"]["store"]["keyed"]["counts"]
        assert len(keyed) == N_KEYS

    def test_crash_restart_rehydrates_from_committed_epoch(self):
        system = SystemS(hosts=6, config=SystemConfig(checkpoint_interval=0.5))
        job = system.submit_job(build_plain_app())
        system.run_for(5.0)
        pe = job.pe_of_operator("work")
        checkpointed = system.checkpoint_store.latest_committed(
            job.job_id, pe.pe_id
        ).payloads["work"]["store"]["keyed"]["counts"]
        assert checkpointed
        pe.crash("test")
        assert not pe.state_registry  # crash never produced a quiesced snapshot
        system.sam.restart_pe(job.job_id, pe.pe_id, rehydrate=True)
        system.run_for(2.0)
        assert pe.last_restore is not None
        assert pe.last_restore.source == "checkpoint"
        after = dict(pe.operators["work"].state.keyed("counts").items())
        for key, count in checkpointed.items():
            assert after.get(key, 0) >= count

    def test_graceful_stop_records_committed_epoch(self):
        system = SystemS(hosts=6)
        job = system.submit_job(build_plain_app())
        system.run_for(3.0)
        pe = job.pe_of_operator("work")
        system.sam.stop_pe(job.job_id, pe.pe_id)
        latest = system.checkpoint_store.latest_committed(job.job_id, pe.pe_id)
        assert latest is not None and latest.full
        system.sam.restart_pe(job.job_id, pe.pe_id, rehydrate=True)
        system.run_for(2.0)
        assert pe.last_restore.source == "checkpoint"
        assert pe.last_restore.epoch == latest.epoch

    def test_checkpoint_lag_gauge_flows_to_srm(self):
        system = SystemS(hosts=6, config=SystemConfig(checkpoint_interval=0.5))
        job = system.submit_job(build_plain_app())
        system.run_for(7.0)  # several pushes (every 3s) and checkpoints
        pe = job.pe_of_operator("work")
        lag = system.srm.metric_value(job.job_id, pe.pe_id, None, "checkpointLag")
        assert lag is not None
        assert 0.0 <= lag <= 0.5 + 1e-9

    def test_cancel_job_drops_checkpoints(self):
        system = SystemS(hosts=6, config=SystemConfig(checkpoint_interval=0.5))
        job = system.submit_job(build_plain_app())
        system.run_for(2.0)
        pe = job.pe_of_operator("work")
        assert system.checkpoint_store.latest_committed(job.job_id, pe.pe_id)
        system.cancel_job(job.job_id)
        assert system.checkpoint_store.latest_committed(job.job_id, pe.pe_id) is None

    def test_set_interval_at_runtime(self):
        system = SystemS(hosts=6)
        job = system.submit_job(build_plain_app())
        system.run_for(1.0)
        assert not system.checkpoints.records
        system.checkpoints.set_interval(0.5)
        system.run_for(2.0)
        assert system.checkpoints.records
        pe = job.pe_of_operator("work")
        assert system.checkpoint_store.latest_committed(job.job_id, pe.pe_id)


class TestTornEpochFallback:
    def test_restart_falls_back_to_previous_committed_epoch(self):
        """A torn (uncommitted) epoch must never be loaded: rehydration
        falls back to the newest *committed* epoch."""
        system = SystemS(hosts=6)
        job = system.submit_job(build_plain_app(period=0.2))
        system.run_for(2.0)
        pe = job.pe_of_operator("work")
        committed = system.checkpoints.checkpoint_pe(pe)
        assert committed.committed
        committed_counts = dict(
            system.checkpoint_store.latest_committed(job.job_id, pe.pe_id)
            .payloads["work"]["store"]["keyed"]["counts"]
        )
        system.run_for(2.0)  # more traffic: the next capture differs
        system.checkpoints.commit_fault = lambda pe: True
        torn = system.checkpoints.checkpoint_pe(pe)
        system.checkpoints.commit_fault = None
        assert not torn.committed
        torn_entry = system.checkpoint_store.latest(job.job_id, pe.pe_id)
        assert torn_entry.epoch == torn.epoch and not torn_entry.committed
        torn_counts = torn_entry.payloads["work"]["store"]["keyed"]["counts"]
        assert torn_counts != committed_counts
        pe.crash("test")
        system.sam.restart_pe(job.job_id, pe.pe_id, rehydrate=True)
        probe = {}
        # runs at the same instant as the restart, right after it: sees
        # the restored state before any post-restart tuple arrives
        system.kernel.schedule(
            system.config.pe_restart_delay,
            lambda: probe.update(
                dict(pe.operators["work"].state.keyed("counts").items())
            ),
        )
        system.run_for(2.0)
        assert pe.last_restore.source == "checkpoint"
        assert pe.last_restore.epoch == committed.epoch  # never the torn one
        assert probe == committed_counts

    def test_torn_round_does_not_reset_dirty_tracking(self):
        """After a failed commit the next capture re-serializes the same
        delta (what a restarted checkpointer would do)."""
        system = SystemS(hosts=6)
        job = system.submit_job(build_plain_app(limit=32))
        system.run_for(5.0)
        pe = job.pe_of_operator("work")
        system.checkpoints.checkpoint_pe(pe)  # full, committed
        pe.operators["work"].state.keyed("counts").update(
            "k0", lambda v: v + 1, default=0
        )
        system.checkpoints.commit_fault = lambda pe: True
        torn = system.checkpoints.checkpoint_pe(pe)
        system.checkpoints.commit_fault = None
        assert torn.keys_dirty == 1 and not torn.committed
        retry = system.checkpoints.checkpoint_pe(pe)
        assert retry.committed and retry.keys_dirty == 1


class TestDetourSeedingAndReclaim:
    def test_mask_seeds_detours_from_checkpoint(self):
        system = SystemS(hosts=12, config=SystemConfig(checkpoint_interval=0.5))
        job = system.submit_job(build_region_app(width=2))
        system.run_for(2.0)
        system.checkpoints.checkpoint_all()
        dead_pe = job.pe_of_operator("work__c1")
        checkpointed = system.checkpoint_store.latest_committed(
            job.job_id, dead_pe.pe_id
        ).payloads["work__c1"]["store"]["keyed"]["counts"]
        assert checkpointed
        dead_pe.crash("test")
        system.run_for(0.1)  # failure notification -> mask + seed
        survivor = job.operator_instance("work__c0")
        for key, count in checkpointed.items():
            assert survivor.state.keyed("counts").get(key, 0) >= count
        mask = [r for r in system.elastic.reroutes if r.masked][-1]
        assert mask.seeded_keys == len(checkpointed)
        # detoured traffic continues incrementing the seeded counts
        system.run_for(2.0)
        for key, count in checkpointed.items():
            assert survivor.state.keyed("counts").get(key, 0) > count

    def test_unmask_reclaims_seeded_and_accrued_state(self):
        system = SystemS(hosts=12, config=SystemConfig(checkpoint_interval=0.5))
        job = system.submit_job(build_region_app(width=2))
        system.run_for(2.0)
        system.checkpoints.checkpoint_all()
        dead_pe = job.pe_of_operator("work__c1")
        dead_pe.crash("test")
        system.run_for(2.0)  # detour accrues on c0 (seeded base + traffic)
        survivor = job.operator_instance("work__c0")
        c1_keys = {
            f"k{i}" for i in range(N_KEYS) if stable_channel_of(f"k{i}", 2) == 1
        }
        detoured = {
            key: survivor.state.keyed("counts").get(key)
            for key in c1_keys
            if key in survivor.state.keyed("counts")
        }
        assert detoured
        system.sam.restart_pe(job.job_id, dead_pe.pe_id, rehydrate=True)
        system.run_for(2.0)
        restarted = job.operator_instance("work__c1")
        for key, count in detoured.items():
            # the reclaimed (detour) value supersedes the rehydrated
            # checkpoint: counting continued from the detour value
            assert restarted.state.keyed("counts").get(key, 0) >= count
        assert not any(
            key in survivor.state.keyed("counts") for key in c1_keys
        )
        reclaim = system.elastic.reclaims[-1]
        assert reclaim.keys_reclaimed == len(detoured)
        assert reclaim.keys_purged == 0

    def test_no_store_means_no_seeding(self):
        system = SystemS(hosts=12)  # checkpointing disabled
        job = system.submit_job(build_region_app(width=2))
        system.run_for(2.0)
        dead_pe = job.pe_of_operator("work__c1")
        dead_pe.crash("test")
        system.run_for(0.2)
        mask = [r for r in system.elastic.reroutes if r.masked][-1]
        assert mask.seeded_keys == 0


class _GlobalCollector(Operator):
    """Region worker holding a per-channel global list (for merge tests)."""

    STATEFUL = True

    def __init__(self, ctx):
        super().__init__(ctx)
        self._seen = self.state.global_("collected", default=list)

    def on_tuple(self, tup, port):
        self._seen.value.append(tup["seq"])
        self.submit(tup)

    def on_punct(self, punct, port):
        return


def build_global_state_app(width=4, global_merge=None, limit=200, partition_by="key"):
    app = Application("GlobalMerge")
    g = app.graph
    src = g.add_operator(
        "src",
        CallbackSource,
        params={"generator": keyed_generator(), "period": 0.02, "limit": limit},
        partition="feed",
    )
    work = g.add_operator(
        "work",
        _GlobalCollector,
        parallel=parallel(
            width=width,
            name="region",
            partition_by=partition_by,
            max_width=8,
            global_merge=global_merge,
        ),
    )
    sink = g.add_operator("sink", Sink, partition="out")
    g.connect(src.oport(0), work.iport(0))
    g.connect(work.oport(0), sink.iport(0))
    return app


class TestGlobalMergeHook:
    def test_scale_in_merges_global_state_into_survivors(self):
        merge = lambda name, survivor, doomed: (survivor or []) + (doomed or [])  # noqa: E731
        system = SystemS(hosts=14)
        job = system.submit_job(build_global_state_app(global_merge=merge))
        system.run_for(2.0)
        before = set()
        for channel in range(4):
            instance = job.operator_instance(f"work__c{channel}")
            before.update(instance.state.global_("collected").value)
        assert before
        operation = system.elastic.set_channel_width(job, "region", 2)
        system.run_for(20.0)
        assert operation.migration is not None
        assert operation.migration.global_states_merged == 2  # c2 and c3
        assert operation.migration.dropped_global_states == 0
        after = set()
        for channel in range(2):
            instance = job.operator_instance(f"work__c{channel}")
            after.update(instance.state.global_("collected").value)
        # nothing seen before the shrink was lost with the doomed channels
        assert before <= after

    def test_round_robin_region_still_merges_global_state(self):
        """Regression: a region without partition_by has no keyed
        migration, but its global_merge hook must still fire on shrink."""
        merge = lambda name, survivor, doomed: (survivor or []) + (doomed or [])  # noqa: E731
        system = SystemS(hosts=14)
        job = system.submit_job(
            build_global_state_app(global_merge=merge, partition_by=None)
        )
        system.run_for(2.0)
        before = set()
        for channel in range(4):
            instance = job.operator_instance(f"work__c{channel}")
            before.update(instance.state.global_("collected").value)
        assert before
        operation = system.elastic.set_channel_width(job, "region", 2)
        system.run_for(20.0)
        migration = operation.migration
        assert migration is not None
        assert migration.keys_moved == 0  # no keyed ownership to migrate
        assert migration.global_states_merged == 2
        assert migration.dropped_global_states == 0
        after = set()
        for channel in range(2):
            instance = job.operator_instance(f"work__c{channel}")
            after.update(instance.state.global_("collected").value)
        assert before <= after

    def test_without_hook_global_state_is_dropped_and_counted(self):
        system = SystemS(hosts=14)
        job = system.submit_job(build_global_state_app(global_merge=None))
        system.run_for(2.0)
        operation = system.elastic.set_channel_width(job, "region", 2)
        system.run_for(20.0)
        assert operation.migration is not None
        assert operation.migration.global_states_merged == 0
        assert operation.migration.dropped_global_states == 2


class _CheckpointWatcher(Orchestrator):
    def __init__(self):
        super().__init__()
        self.committed = []
        self.reclaimed = []
        self.skipped = []
        self.rerouted = []
        self.job_id = None

    def handleOrcaStart(self, context):
        from repro.orca.scopes import ParallelRegionScope

        self._orca.register_event_scope(CheckpointScope("ckpt"))
        self._orca.register_event_scope(ParallelRegionScope("regions"))
        job = self._orca.submit_application("RegionCkpt")
        self.job_id = job.job_id

    def handleChannelReroutedEvent(self, context, scopes):
        self.rerouted.append(context)

    def handleCheckpointCommittedEvent(self, context, scopes):
        self.committed.append(context)

    def handleStateReclaimedEvent(self, context, scopes):
        self.reclaimed.append(context)

    def handleRehydrateSkippedEvent(self, context, scopes):
        self.skipped.append(context)


class TestOrcaCheckpointEvents:
    def make_orchestrated(self, checkpoint_interval=0.5):
        system = SystemS(
            hosts=12,
            config=SystemConfig(checkpoint_interval=checkpoint_interval),
        )
        app = build_region_app(width=2, period=0.05)
        service = system.submit_orchestrator(
            OrcaDescriptor(
                name="Watcher",
                logic=_CheckpointWatcher,
                applications=[ManagedApplication(name=app.name, application=app)],
                metric_poll_interval=5.0,
            )
        )
        return system, service

    def test_checkpoint_committed_events_reach_the_logic(self):
        system, service = self.make_orchestrated()
        system.run_for(3.0)
        assert service.logic.committed
        context = service.logic.committed[-1]
        assert context.epoch > 0 and context.keys_total >= 0
        assert context.app_name == "RegionCkpt"
        status = service.checkpoint_status(service.logic.job_id)
        assert status  # at least the channel PEs have committed epochs
        for info in status.values():
            assert info["age"] >= 0.0 and info["epoch"] > 0

    def test_state_reclaimed_event_delivered_on_unmask(self):
        system, service = self.make_orchestrated()
        system.run_for(2.0)
        job = service.jobs[service.logic.job_id]
        dead_pe = job.pe_of_operator("work__c1")
        dead_pe.crash("test")
        system.run_for(2.0)
        service.restart_pe(dead_pe.pe_id, rehydrate=True)
        system.run_for(3.0)
        assert service.logic.reclaimed
        context = service.logic.reclaimed[-1]
        assert context.keys_reclaimed > 0 and context.channels == (1,)
        assert not service.logic.skipped  # the restore succeeded
        # the reroute contexts carry the seeding/reclaim counters too
        mask = [c for c in service.logic.rerouted if c.masked][-1]
        unmask = [c for c in service.logic.rerouted if not c.masked][-1]
        assert mask.seeded_keys > 0
        assert unmask.reclaimed_keys == context.keys_reclaimed

    def test_rehydrate_skipped_event_when_nothing_restorable(self):
        system, service = self.make_orchestrated(checkpoint_interval=0.0)
        system.run_for(2.0)
        job = service.jobs[service.logic.job_id]
        dead_pe = job.pe_of_operator("work__c1")
        dead_pe.crash("test")
        system.run_for(1.0)
        service.restart_pe(dead_pe.pe_id, rehydrate=True)
        system.run_for(3.0)
        assert service.logic.skipped
        context = service.logic.skipped[-1]
        assert context.pe_id == dead_pe.pe_id
        assert context.reason == "no_snapshot"

    def test_plain_restart_emits_no_skip_event(self):
        system, service = self.make_orchestrated(checkpoint_interval=0.0)
        system.run_for(2.0)
        job = service.jobs[service.logic.job_id]
        dead_pe = job.pe_of_operator("work__c1")
        dead_pe.crash("test")
        system.run_for(1.0)
        service.restart_pe(dead_pe.pe_id)  # rehydrate not requested
        system.run_for(3.0)
        assert not service.logic.skipped

    def test_checkpoint_now_actuation(self):
        system, service = self.make_orchestrated(checkpoint_interval=0.0)
        system.run_for(2.0)
        records = service.checkpoint_now(service.logic.job_id)
        assert records and all(r.committed for r in records)
        assert any(a.action == "checkpoint" for a in service.actuation_log)
        system.run_for(0.5)
        assert service.logic.committed
