"""Tests for the Operator base class and runtime context."""

import pytest

from repro.errors import GraphError
from repro.spl.metrics import MetricKind, OperatorMetricName
from repro.spl.operators import Operator
from repro.spl.tuples import Punctuation, StreamTuple

from tests.conftest import CollectingOperator, make_operator_harness


class TestPortCounts:
    def test_class_defaults(self):
        assert Operator.port_counts({}) == (1, 1)

    def test_param_overrides(self):
        assert Operator.port_counts({"n_inputs": 3, "n_outputs": 2}) == (3, 2)

    def test_negative_rejected(self):
        with pytest.raises(GraphError):
            Operator.port_counts({"n_inputs": -1})

    def test_kind_defaults_to_class_name(self):
        assert CollectingOperator.kind() == "CollectingOperator"

    def test_kind_override(self):
        class Custom(Operator):
            KIND = "MyKind"

        assert Custom.kind() == "MyKind"


class TestBuiltinMetrics:
    def test_created_at_construction(self):
        op, _ = make_operator_harness(CollectingOperator)
        assert op.metric(OperatorMetricName.N_TUPLES_PROCESSED).value == 0
        assert op.metric(OperatorMetricName.QUEUE_SIZE).value == 0
        # per-port variants
        assert op.metric(OperatorMetricName.N_TUPLES_PROCESSED, port=0).value == 0
        assert op.metric(OperatorMetricName.N_TUPLES_SUBMITTED, port=0).value == 0

    def test_tuples_processed_counted(self):
        op, _ = make_operator_harness(CollectingOperator)
        op._process(StreamTuple({"a": 1}), 0)
        op._process(StreamTuple({"a": 2}), 0)
        assert op.metric(OperatorMetricName.N_TUPLES_PROCESSED).value == 2
        assert op.metric(OperatorMetricName.N_TUPLES_PROCESSED, port=0).value == 2

    def test_submitted_counted_per_port(self):
        op, emitted = make_operator_harness(CollectingOperator, n_outputs=2)
        op.submit({"x": 1}, port=0)
        op.submit({"x": 2}, port=1)
        op.submit({"x": 3}, port=1)
        assert op.metric(OperatorMetricName.N_TUPLES_SUBMITTED).value == 3
        assert op.metric(OperatorMetricName.N_TUPLES_SUBMITTED, port=1).value == 2
        assert len(emitted) == 3

    def test_puncts_counted(self):
        op, _ = make_operator_harness(CollectingOperator, n_inputs=2)
        op._process(Punctuation.WINDOW, 0)
        op._process(Punctuation.FINAL, 0)
        assert op.metric(OperatorMetricName.N_PUNCTS_PROCESSED).value == 2
        assert op.metric(OperatorMetricName.N_FINAL_PUNCTS_PROCESSED).value == 1

    def test_custom_metric_creation(self):
        op, _ = make_operator_harness(CollectingOperator)
        metric = op.create_custom_metric("nSpecial", MetricKind.GAUGE, "desc")
        metric.set(5)
        assert op.metric("nSpecial").value == 5


class TestSubmission:
    def test_submit_dict_wraps_tuple(self):
        op, emitted = make_operator_harness(CollectingOperator)
        op.submit({"a": 1})
        port, item = emitted[0]
        assert port == 0
        assert isinstance(item, StreamTuple)
        assert item["a"] == 1

    def test_submit_existing_tuple_passthrough(self):
        op, emitted = make_operator_harness(CollectingOperator)
        tup = StreamTuple({"a": 1})
        op.submit(tup)
        assert emitted[0][1] is tup

    def test_invalid_output_port_rejected(self):
        op, _ = make_operator_harness(CollectingOperator)
        with pytest.raises(GraphError):
            op.submit({"a": 1}, port=5)
        with pytest.raises(GraphError):
            op.submit_punct(Punctuation.WINDOW, port=5)

    def test_submit_final_hits_all_ports(self):
        op, emitted = make_operator_harness(CollectingOperator, n_outputs=3)
        op.submit_final()
        assert emitted == [(0, Punctuation.FINAL), (1, Punctuation.FINAL),
                           (2, Punctuation.FINAL)]


class TestFinalPunctuation:
    def test_final_on_all_ports_triggers_hook_and_forward(self):
        op, emitted = make_operator_harness(CollectingOperator, n_inputs=2)
        op._process(Punctuation.FINAL, 0)
        assert op.finalized_called == 0
        assert not op.is_finalized
        op._process(Punctuation.FINAL, 1)
        assert op.finalized_called == 1
        assert op.is_finalized
        assert (0, Punctuation.FINAL) in emitted

    def test_duplicate_final_on_same_port_does_not_finalize(self):
        op, _ = make_operator_harness(CollectingOperator, n_inputs=2)
        op._process(Punctuation.FINAL, 0)
        op._process(Punctuation.FINAL, 0)
        assert not op.is_finalized

    def test_no_processing_after_finalize(self):
        op, _ = make_operator_harness(CollectingOperator, n_inputs=1)
        op._process(Punctuation.FINAL, 0)
        op._process(StreamTuple({"a": 1}), 0)
        assert op.tuples == []

    def test_forward_final_suppressed(self):
        class Silent(CollectingOperator):
            FORWARD_FINAL = False

        op, emitted = make_operator_harness(Silent, n_inputs=1)
        op._process(Punctuation.FINAL, 0)
        assert op.finalized_called == 1
        assert emitted == []


class TestParams:
    def test_param_default(self):
        op, _ = make_operator_harness(CollectingOperator, params={"x": 5})
        assert op.param("x") == 5
        assert op.param("missing", "dflt") == "dflt"

    def test_required_param_missing_raises(self):
        op, _ = make_operator_harness(CollectingOperator)
        with pytest.raises(GraphError):
            op.param("required_thing")

    def test_submission_time_values(self):
        op, _ = make_operator_harness(
            CollectingOperator, submission_params={"replica": "2"}
        )
        assert op.ctx.get_submission_time_value("replica") == "2"
        assert op.ctx.get_submission_time_value("nope", "d") == "d"


class TestControl:
    def test_on_control_hook(self):
        op, _ = make_operator_harness(CollectingOperator)
        op.on_control("setThing", {"v": 1})
        assert op.controls == [("setThing", {"v": 1})]
