"""Property-based tests on orchestration-level invariants.

* Random dependency DAGs: starting any node submits exactly its
  dependency closure, never before every uptime requirement is met, and
  cycle-creating registrations are always rejected.
* Random export/import property sets: the registry's matching equals the
  subset-semantics oracle.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import ManagedApplication, Orchestrator, OrcaDescriptor, SystemS
from repro.errors import DependencyCycleError
from repro.runtime.imports import ExportEntry, ImportEntry, subscription_matches
from repro.spl.application import Application
from repro.spl.library import Beacon, Sink

# ---------------------------------------------------------------------------
# Dependency DAG properties
# ---------------------------------------------------------------------------


def tiny_app(name: str) -> Application:
    app = Application(name)
    g = app.graph
    src = g.add_operator("src", Beacon, params={"values": {}})
    sink = g.add_operator("sink", Sink, params={"record": False})
    g.connect(src.oport(0), sink.iport(0))
    return app


class _Passive(Orchestrator):
    pass


@st.composite
def dag_specs(draw):
    """(n_nodes, edges) where edges only point from higher to lower index —
    guaranteed acyclic by construction."""
    n = draw(st.integers(min_value=2, max_value=7))
    edges = []
    for dependent in range(1, n):
        for dependency in range(dependent):
            if draw(st.booleans()):
                uptime = draw(st.sampled_from([0.0, 5.0, 10.0]))
                edges.append((dependent, dependency, uptime))
    target = draw(st.integers(min_value=0, max_value=n - 1))
    return n, edges, target


@settings(max_examples=25, deadline=None)
@given(spec=dag_specs())
def test_dependency_closure_and_uptime_invariants(spec):
    n, edges, target = spec
    system = SystemS(hosts=4)
    service = system.submit_orchestrator(
        OrcaDescriptor(
            name="P",
            logic=_Passive,
            applications=[
                ManagedApplication(name=f"n{i}", application=tiny_app(f"n{i}"))
                for i in range(n)
            ],
        )
    )
    deps = service.deps
    for i in range(n):
        deps.create_app_config(f"n{i}", f"n{i}")
    for dependent, dependency, uptime in edges:
        deps.register_dependency(f"n{dependent}", f"n{dependency}", uptime)

    target_id = f"n{target}"
    closure = deps.transitive_dependencies(target_id) | {target_id}
    deps.start(target_id)
    system.run_for(sum(u for _, _, u in edges) + n * 10.0 + 5.0)

    # (1) exactly the closure is running
    for i in range(n):
        config_id = f"n{i}"
        assert deps.is_running(config_id) == (config_id in closure)
    # (2) every uptime requirement was honoured
    for dependent, dependency, uptime in edges:
        dep_id, dcy_id = f"n{dependent}", f"n{dependency}"
        if dep_id in closure:
            t_dependent = deps.submit_time_of(dep_id)
            t_dependency = deps.submit_time_of(dcy_id)
            assert t_dependent is not None and t_dependency is not None
            assert t_dependent + 1e-9 >= t_dependency + uptime


@settings(max_examples=25, deadline=None)
@given(spec=dag_specs())
def test_cycle_rejection_is_complete(spec):
    """After loading any acyclic edge set, every back-edge that would close
    a cycle is rejected, and rejected edges leave the graph unchanged."""
    n, edges, _ = spec
    system = SystemS(hosts=2)
    service = system.submit_orchestrator(
        OrcaDescriptor(
            name="P",
            logic=_Passive,
            applications=[
                ManagedApplication(name=f"n{i}", application=tiny_app(f"n{i}"))
                for i in range(n)
            ],
        )
    )
    deps = service.deps
    for i in range(n):
        deps.create_app_config(f"n{i}", f"n{i}")
    for dependent, dependency, uptime in edges:
        deps.register_dependency(f"n{dependent}", f"n{dependency}", uptime)
    # try to close a cycle along every existing path: dependency -> dependent
    for dependent, dependency, _ in edges:
        before = deps.dependencies_of(f"n{dependency}")
        try:
            deps.register_dependency(f"n{dependency}", f"n{dependent}")
            # allowed only if it did NOT create a cycle, i.e. there was no
            # path dependent ->* dependency ... but the direct edge
            # dependent -> dependency exists, so this must never happen
            raise AssertionError("cycle-closing edge was accepted")
        except DependencyCycleError:
            assert deps.dependencies_of(f"n{dependency}") == before


# ---------------------------------------------------------------------------
# Import/export matching properties
# ---------------------------------------------------------------------------

_props = st.dictionaries(
    st.sampled_from(["category", "site", "lang", "tier"]),
    st.sampled_from(["a", "b", "c"]),
    max_size=3,
)


@settings(max_examples=200, deadline=None)
@given(export_props=_props, subscription=_props)
def test_subscription_matching_is_subset_semantics(export_props, subscription):
    export = ExportEntry(
        job=None, op_name="e", pe_index=1, stream_id=None,
        properties=export_props,
    )
    import_ = ImportEntry(
        job=None, op_name="i", pe_index=1, stream_id=None,
        subscription=subscription,
    )
    expected = bool(subscription) and all(
        export_props.get(k) == v for k, v in subscription.items()
    )
    assert subscription_matches(export, import_) == expected


@settings(max_examples=100, deadline=None)
@given(
    export_id=st.sampled_from(["s1", "s2", None]),
    import_id=st.sampled_from(["s1", "s2"]),
)
def test_stream_id_matching_exact(export_id, import_id):
    export = ExportEntry(
        job=None, op_name="e", pe_index=1, stream_id=export_id, properties={}
    )
    import_ = ImportEntry(
        job=None, op_name="i", pe_index=1, stream_id=import_id, subscription={}
    )
    assert subscription_matches(export, import_) == (export_id == import_id)
