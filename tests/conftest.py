"""Shared fixtures: small applications and a fresh simulated system."""

from __future__ import annotations

import pytest

from repro import SystemS
from repro.spl.application import Application
from repro.spl.library import Beacon, Filter, Sink
from repro.spl.operators import Operator, OperatorContext
from repro.spl.tuples import Punctuation, StreamTuple


@pytest.fixture
def system() -> SystemS:
    """A 4-host system with default (paper) timing constants."""
    return SystemS(hosts=4, seed=42)


@pytest.fixture
def big_system() -> SystemS:
    """An 8-host system for placement-heavy scenarios."""
    return SystemS(hosts=8, seed=42)


def make_linear_app(
    name: str = "Linear",
    limit: int | None = None,
    period: float = 1.0,
    per_tick: int = 1,
    partitions: tuple = ("p1", "p2"),
) -> Application:
    """source -> sink, in two partitions (two PEs)."""
    app = Application(name)
    g = app.graph
    src = g.add_operator(
        "src",
        Beacon,
        params={"values": {"k": 1}, "limit": limit, "period": period,
                "per_tick": per_tick},
        partition=partitions[0],
    )
    sink = g.add_operator("sink", Sink, partition=partitions[1])
    g.connect(src.oport(0), sink.iport(0))
    return app


def make_filter_app(name: str = "Filtered", threshold: int = 5) -> Application:
    """source -> filter(iter >= threshold) -> sink, one PE."""
    app = Application(name)
    g = app.graph
    src = g.add_operator("src", Beacon, params={"values": {}, "period": 1.0})
    filt = g.add_operator(
        "filt", Filter, params={"predicate": lambda t: t["iter"] >= threshold}
    )
    sink = g.add_operator("sink", Sink)
    g.connect(src.oport(0), filt.iport(0))
    g.connect(filt.oport(0), sink.iport(0))
    return app


class CollectingOperator(Operator):
    """Test operator that records everything it receives."""

    def __init__(self, ctx: OperatorContext) -> None:
        super().__init__(ctx)
        self.tuples: list[tuple[StreamTuple, int]] = []
        self.puncts: list[tuple[Punctuation, int]] = []
        self.controls: list[tuple[str, dict]] = []
        self.finalized_called = 0

    def on_tuple(self, tup: StreamTuple, port: int) -> None:
        self.tuples.append((tup, port))

    def on_punct(self, punct: Punctuation, port: int) -> None:
        self.puncts.append((punct, port))

    def on_all_ports_final(self) -> None:
        self.finalized_called += 1

    def on_control(self, command: str, payload) -> None:
        self.controls.append((command, dict(payload)))


def make_operator_harness(
    op_class: type,
    params: dict | None = None,
    n_inputs: int | None = None,
    n_outputs: int | None = None,
    submission_params: dict | None = None,
):
    """Instantiate an operator outside any PE, capturing its output.

    Returns (operator, emitted) where emitted is a list of
    (port, item) pairs covering both tuples and punctuation.
    """
    from repro.spl.graph import LogicalGraph

    param_dict = dict(params or {})
    if n_inputs is not None:
        param_dict["n_inputs"] = n_inputs
    if n_outputs is not None:
        param_dict["n_outputs"] = n_outputs
    graph = LogicalGraph()
    spec = graph.add_operator("probe", op_class, params=param_dict)
    emitted: list = []
    scheduled: list = []

    class _FakeHandle:
        def __init__(self, delay, fn):
            self.delay = delay
            self.fn = fn
            self.cancelled = False

        def cancel(self):
            self.cancelled = True

    def schedule(delay, fn):
        handle = _FakeHandle(delay, fn)
        scheduled.append(handle)
        return handle

    clock = {"now": 0.0}
    ctx = OperatorContext(
        spec=spec,
        job_id="job_test",
        app_name="TestApp",
        submission_params=submission_params or {},
        now_fn=lambda: clock["now"],
        submit_fn=lambda port, tup: emitted.append((port, tup)),
        punct_fn=lambda port, punct: emitted.append((port, punct)),
        schedule_fn=schedule,
    )
    operator = op_class(ctx)
    operator._test_clock = clock
    operator._test_scheduled = scheduled
    return operator, emitted
