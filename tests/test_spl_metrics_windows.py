"""Tests for metrics and window machinery."""

import math

import pytest

from repro.spl.metrics import (
    Metric,
    MetricKind,
    MetricRegistry,
    OperatorMetricName,
    PEMetricName,
)
from repro.spl.windows import (
    SlidingCountWindow,
    SlidingTimeWindow,
    TumblingCountWindow,
    merge_sorted_by_time,
)


class TestMetric:
    def test_increment(self):
        metric = Metric("n")
        metric.increment()
        metric.increment(2)
        assert metric.value == 3

    def test_set_and_reset(self):
        metric = Metric("g", MetricKind.GAUGE)
        metric.set(7)
        assert metric.value == 7
        metric.reset()
        assert metric.value == 0

    def test_builtin_name_lists(self):
        assert OperatorMetricName.QUEUE_SIZE in OperatorMetricName.ALL
        assert PEMetricName.N_RESTARTS in PEMetricName.ALL
        # The paper-parity alias used in Fig. 5.
        assert OperatorMetricName.queueSize == "queueSize"


class TestMetricRegistry:
    def test_create_and_get(self):
        registry = MetricRegistry()
        registry.create("a")
        assert registry.get("a").value == 0

    def test_duplicate_create_rejected(self):
        registry = MetricRegistry()
        registry.create("a")
        with pytest.raises(ValueError):
            registry.create("a")

    def test_port_scoped_metrics_are_distinct(self):
        registry = MetricRegistry()
        registry.create("n", port=0)
        registry.create("n", port=1)
        registry.create("n")  # operator scope
        registry.get("n", port=0).increment()
        assert registry.get("n", port=1).value == 0
        assert registry.get("n").value == 0
        assert len(registry) == 3

    def test_get_missing_raises(self):
        with pytest.raises(KeyError):
            MetricRegistry().get("nope")

    def test_get_or_create(self):
        registry = MetricRegistry()
        a = registry.get_or_create("x")
        b = registry.get_or_create("x")
        assert a is b

    def test_has(self):
        registry = MetricRegistry()
        registry.create("x", port=2)
        assert registry.has("x", port=2)
        assert not registry.has("x")

    def test_iteration_and_snapshot(self):
        registry = MetricRegistry()
        registry.create("a").increment(5)
        registry.create("b", port=1).increment(2)
        entries = {(port, name): m.value for port, name, m in registry}
        assert entries == {(None, "a"): 5, (1, "b"): 2}
        assert registry.snapshot() == {(None, "a"): 5, (1, "b"): 2}


class TestSlidingTimeWindow:
    def test_requires_positive_span(self):
        with pytest.raises(ValueError):
            SlidingTimeWindow(0)

    def test_insert_and_len(self):
        window = SlidingTimeWindow(10.0)
        window.insert(0.0, 1.0)
        window.insert(1.0, 2.0)
        assert len(window) == 2

    def test_eviction_by_age(self):
        window = SlidingTimeWindow(10.0)
        window.insert(0.0, 1.0)
        window.insert(5.0, 2.0)
        dropped = window.evict(11.0)
        assert dropped == 1
        assert window.values() == [2.0]

    def test_insert_evicts_automatically(self):
        window = SlidingTimeWindow(2.0)
        window.insert(0.0, 1.0)
        window.insert(3.0, 2.0)  # first entry is now out of range
        assert window.values() == [2.0]

    def test_statistics(self):
        window = SlidingTimeWindow(100.0)
        for i, v in enumerate([2.0, 4.0, 6.0]):
            window.insert(float(i), v)
        assert window.mean() == pytest.approx(4.0)
        assert window.minimum() == 2.0
        assert window.maximum() == 6.0
        assert window.stddev() == pytest.approx(math.sqrt(8 / 3))

    def test_bollinger_bands(self):
        window = SlidingTimeWindow(100.0)
        for i, v in enumerate([2.0, 4.0, 6.0]):
            window.insert(float(i), v)
        upper, lower = window.bollinger_bands(2.0)
        sd = window.stddev()
        assert upper == pytest.approx(4.0 + 2 * sd)
        assert lower == pytest.approx(4.0 - 2 * sd)

    def test_empty_statistics_raise(self):
        window = SlidingTimeWindow(1.0)
        with pytest.raises(ValueError):
            window.mean()
        with pytest.raises(ValueError):
            window.minimum()
        with pytest.raises(ValueError):
            window.maximum()
        with pytest.raises(ValueError):
            window.stddev()

    def test_coverage(self):
        window = SlidingTimeWindow(600.0)
        assert window.coverage == 0.0
        window.insert(0.0, 1.0)
        assert window.coverage == 0.0  # single point
        window.insert(30.0, 1.0)
        assert window.coverage == 30.0

    def test_oldest_timestamp(self):
        window = SlidingTimeWindow(10.0)
        assert window.oldest_timestamp is None
        window.insert(3.0, 1.0)
        assert window.oldest_timestamp == 3.0

    def test_sums_stay_consistent_after_heavy_eviction(self):
        window = SlidingTimeWindow(5.0)
        for i in range(100):
            window.insert(float(i), float(i))
        # only timestamps > 94 remain
        values = window.values()
        assert window.mean() == pytest.approx(sum(values) / len(values))


class TestTumblingCountWindow:
    def test_tumbles_at_size(self):
        window = TumblingCountWindow(3)
        assert window.insert(1) is None
        assert window.insert(2) is None
        assert window.insert(3) == [1, 2, 3]
        assert len(window) == 0

    def test_flush_partial(self):
        window = TumblingCountWindow(5)
        window.insert("a")
        assert window.flush() == ["a"]
        assert window.flush() == []

    def test_requires_positive(self):
        with pytest.raises(ValueError):
            TumblingCountWindow(0)


class TestSlidingCountWindow:
    def test_bounded_size(self):
        window = SlidingCountWindow(3)
        for i in range(10):
            window.insert(float(i))
        assert window.values() == [7.0, 8.0, 9.0]
        assert window.is_full

    def test_mean(self):
        window = SlidingCountWindow(2)
        window.insert(1.0)
        window.insert(3.0)
        assert window.mean() == 2.0

    def test_empty_mean_raises(self):
        with pytest.raises(ValueError):
            SlidingCountWindow(2).mean()

    def test_requires_positive(self):
        with pytest.raises(ValueError):
            SlidingCountWindow(0)


def test_merge_sorted_by_time():
    merged = merge_sorted_by_time([[(1.0, 1.0), (3.0, 3.0)], [(2.0, 2.0)]])
    assert [t for t, _ in merged] == [1.0, 2.0, 3.0]
