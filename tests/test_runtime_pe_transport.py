"""Tests for PE lifecycle, tuple routing, and the transport."""

import pytest

from repro.errors import PEControlError
from repro.runtime.job import JobState
from repro.runtime.pe import PEState
from repro.spl.metrics import OperatorMetricName, PEMetricName
from repro.spl.library import Beacon

from tests.conftest import make_filter_app, make_linear_app


def get_op(job, name):
    return job.operator_instance(name)


class TestPELifecycle:
    def test_pes_start_after_spawn_delay(self, system):
        job = system.submit_job(make_linear_app())
        assert job.state is JobState.SUBMITTED
        assert all(pe.state is PEState.CONSTRUCTED for pe in job.pes)
        system.run_for(0.2)
        assert job.state is JobState.RUNNING
        assert all(pe.state is PEState.RUNNING for pe in job.pes)

    def test_crash_discards_operators_without_shutdown(self, system):
        job = system.submit_job(make_linear_app())
        system.run_for(5.0)
        pe = job.pe_of_operator("sink")
        pe.crash("test")
        assert pe.state is PEState.CRASHED
        assert pe.operators == {}
        assert pe.last_crash_reason == "test"

    def test_crash_is_noop_when_not_running(self, system):
        job = system.submit_job(make_linear_app())
        system.run_for(5.0)
        pe = job.pe_of_operator("sink")
        pe.stop()
        pe.crash("late")  # ignored
        assert pe.state is PEState.STOPPED

    def test_restart_gives_fresh_state(self, system):
        job = system.submit_job(make_linear_app())
        system.run_for(10.0)
        pe = job.pe_of_operator("sink")
        before = len(get_op(job, "sink").seen)
        assert before > 0
        pe.crash("test")
        pe.restart()
        assert get_op(job, "sink").seen == []
        assert pe.metrics.get(PEMetricName.N_RESTARTS).value == 1

    def test_restart_running_pe_rejected(self, system):
        job = system.submit_job(make_linear_app())
        system.run_for(1.0)
        with pytest.raises(PEControlError):
            job.pes[0].restart()

    def test_double_start_rejected(self, system):
        job = system.submit_job(make_linear_app())
        system.run_for(1.0)
        with pytest.raises(PEControlError):
            job.pes[0].start()

    def test_stop_runs_shutdown_hooks(self, system):
        from repro.spl.application import Application
        from repro.spl.operators import Operator

        log = []

        class Closing(Operator):
            N_INPUTS = 1
            N_OUTPUTS = 0

            def on_shutdown(self):
                log.append("closed")

        app = Application("Closer")
        g = app.graph
        src = g.add_operator("src", Beacon)
        c = g.add_operator("c", Closing)
        g.connect(src.oport(0), c.iport(0))
        job = system.submit_job(app)
        system.run_for(1.0)
        system.cancel_job(job.job_id)
        assert log == ["closed"]

    def test_scheduled_work_cancelled_on_crash(self, system):
        job = system.submit_job(make_linear_app())
        system.run_for(5.0)
        src_pe = job.pe_of_operator("src")
        sink_op = get_op(job, "sink")
        count = len(sink_op.seen)
        src_pe.crash("test")
        system.run_for(10.0)
        # source is dead: nothing new reaches the sink
        assert len(get_op(job, "sink").seen) == count


class TestRouting:
    def test_intra_pe_is_synchronous(self, system):
        app = make_filter_app()  # all in one PE (untagged -> wait, singleton PEs)
        # untagged operators get singleton PEs in manual mode; fuse them:
        for spec in app.graph.operators.values():
            spec.partition = "one"
        job = system.submit_job(app)
        system.run_for(2.1)
        assert len(job.pes) == 1
        # transport was never used for this job's edges
        assert system.transport.total_sent == 0

    def test_inter_pe_has_latency_and_accounting(self, system):
        job = system.submit_job(make_linear_app())
        system.run_for(5.0)
        assert system.transport.total_sent > 0
        assert system.transport.total_delivered > 0

    def test_tuples_to_crashed_pe_are_dropped(self, system):
        job = system.submit_job(make_linear_app(period=0.5))
        system.run_for(5.0)
        job.pe_of_operator("sink").crash("test")
        system.run_for(5.0)
        assert system.transport.total_dropped > 0

    def test_queue_metrics_updated_by_hc(self, system):
        job = system.submit_job(make_linear_app(per_tick=5, period=0.1))
        system.run_for(10.0)
        sink_op = get_op(job, "sink")
        # gauge exists at both operator and port scope
        assert sink_op.metrics.has(OperatorMetricName.QUEUE_SIZE)
        assert sink_op.metrics.has(OperatorMetricName.QUEUE_SIZE, port=0)

    def test_pe_byte_metrics_grow(self, system):
        job = system.submit_job(make_linear_app())
        system.run_for(10.0)
        pe = job.pe_of_operator("sink")
        assert pe.metrics.get(PEMetricName.N_TUPLES_PROCESSED).value > 0
        assert pe.metrics.get(PEMetricName.N_TUPLE_BYTES_PROCESSED).value > 0

    def test_send_control_reaches_operator(self, system):
        job = system.submit_job(make_filter_app(threshold=100))
        system.run_for(3.0)
        pe = job.pe_of_operator("filt")
        pe.send_control("filt", "setPredicate", {"predicate": lambda t: True})
        system.run_for(5.0)
        assert len(get_op(job, "sink").seen) > 0

    def test_send_control_unknown_operator(self, system):
        job = system.submit_job(make_linear_app())
        system.run_for(1.0)
        with pytest.raises(PEControlError):
            job.pes[0].send_control("ghost", "cmd", {})


class TestJobQueries:
    def test_pe_lookup_by_index_and_id(self, system):
        job = system.submit_job(make_linear_app())
        pe = job.pes[0]
        assert job.pe_by_index(pe.index) is pe
        assert job.pe_by_id(pe.pe_id) is pe

    def test_unknown_pe_raises(self, system):
        from repro.errors import UnknownPEError

        job = system.submit_job(make_linear_app())
        with pytest.raises(UnknownPEError):
            job.pe_by_index(99)
        with pytest.raises(UnknownPEError):
            job.pe_by_id("pe_999")

    def test_operator_instance_none_when_down(self, system):
        job = system.submit_job(make_linear_app())
        system.run_for(1.0)
        job.pe_of_operator("sink").crash("x")
        assert job.operator_instance("sink") is None

    def test_all_operator_names(self, system):
        job = system.submit_job(make_linear_app())
        assert set(job.all_operator_names()) == {"src", "sink"}


class TestCrashInFlightAccounting:
    """Items in flight toward a crashed PE die with the process (satellite
    of the chaos PR): they are counted in ``dropped_in_flight`` and never
    delivered to the restarted incarnation."""

    def test_in_flight_items_dropped_on_crash(self, system):
        job = system.submit_job(make_linear_app(period=0.5))
        system.run_for(2.1)
        src_pe = job.pe_of_operator("src")
        sink_pe = job.pe_of_operator("sink")
        # put an item in flight by hand, then crash the destination and
        # restart it *before* the delivery time: the item must not leak
        # into the new incarnation
        from repro.spl.tuples import StreamTuple

        system.transport.send(
            sink_pe, "sink", 0, StreamTuple({"k": 99}), src_pe=src_pe
        )
        sink_pe.crash("test")
        sink_pe.restart()
        before = len(get_op(job, "sink").seen)
        system.run_for(0.5)
        assert system.transport.dropped_in_flight >= 1
        assert all(t.get("k") != 99 for t in get_op(job, "sink").seen[before:])

    def test_post_crash_sends_still_count_total_dropped(self, system):
        job = system.submit_job(make_linear_app(period=0.5))
        system.run_for(2.1)
        job.pe_of_operator("sink").crash("test")
        system.run_for(3.0)  # source keeps routing to the dead PE
        assert system.transport.total_dropped > 0


class TestLinkFaults:
    def test_latency_spike_delays_delivery(self, system):
        job = system.submit_job(make_linear_app(period=0.5))
        system.run_for(2.1)
        sink_pe = job.pe_of_operator("sink")
        received_before = len(get_op(job, "sink").seen)
        system.transport.install_link_fault(
            extra_latency=0.4, dst_pe=sink_pe.pe_id, duration=1.0
        )
        # a tick lands inside the spike: its delivery shifts ~0.4s
        system.run_for(0.45)
        count_mid = len(get_op(job, "sink").seen)
        system.run_for(2.0)
        assert len(get_op(job, "sink").seen) > count_mid >= received_before

    def test_partition_holds_and_flushes_without_loss(self, system):
        job = system.submit_job(make_linear_app(period=0.2, limit=20))
        system.run_for(1.05)
        sink_pe = job.pe_of_operator("sink")
        fault = system.transport.install_link_fault(
            partition=True, dst_pe=sink_pe.pe_id, duration=2.0
        )
        held_at = len(get_op(job, "sink").seen)
        system.run_for(1.9)  # inside the partition: nothing arrives
        assert len(get_op(job, "sink").seen) == held_at
        system.run_for(10.0)  # healed: everything flushes in order
        seen = [t["iter"] for t in get_op(job, "sink").seen]
        assert seen == list(range(20))
        assert system.transport.dropped_by_fault == 0

    def test_lossy_link_drops_deterministically(self):
        from repro import SystemS

        def run(seed):
            system = SystemS(hosts=4, seed=seed)
            job = system.submit_job(make_linear_app(period=0.1, limit=50))
            system.run_for(0.5)
            system.transport.install_link_fault(
                drop_probability=0.5, duration=3.0
            )
            system.run_for(20.0)
            return (
                system.transport.dropped_by_fault,
                [t["iter"] for t in get_op(job, "sink").seen],
            )

        dropped_a, seen_a = run(7)
        dropped_b, seen_b = run(7)
        assert dropped_a > 0
        assert (dropped_a, seen_a) == (dropped_b, seen_b)  # seeded determinism

    def test_fault_expiry_keeps_per_link_fifo(self, system):
        """A spike expiring mid-stream must not reorder a connection."""
        job = system.submit_job(make_linear_app(period=0.05, limit=40))
        system.run_for(1.02)
        sink_pe = job.pe_of_operator("sink")
        system.transport.install_link_fault(
            extra_latency=0.3, dst_pe=sink_pe.pe_id, duration=0.2
        )
        system.run_for(10.0)
        seen = [t["iter"] for t in get_op(job, "sink").seen]
        assert seen == sorted(seen)  # FIFO preserved across the expiry
        assert len(seen) == 40  # and nothing was lost

    def test_clear_link_fault_heals_early(self, system):
        job = system.submit_job(make_linear_app(period=0.2))
        system.run_for(1.05)
        fault = system.transport.install_link_fault(extra_latency=5.0)
        assert len(system.transport.active_link_faults()) == 1
        system.transport.clear_link_fault(fault)
        assert system.transport.active_link_faults() == []

    def test_untimed_partition_flushes_on_clear(self, system):
        """An untimed partition holds items until clear_link_fault, which
        flushes them in order — and the link is immediately usable again
        (regression: the hold must not poison the FIFO horizon)."""
        job = system.submit_job(make_linear_app(period=0.2, limit=30))
        system.run_for(1.05)
        sink_pe = job.pe_of_operator("sink")
        fault = system.transport.install_link_fault(
            partition=True, dst_pe=sink_pe.pe_id
        )
        held_at = len(get_op(job, "sink").seen)
        system.run_for(2.0)
        assert len(get_op(job, "sink").seen) == held_at  # all held
        system.transport.clear_link_fault(fault)
        system.run_for(10.0)  # flushed AND new sends flow normally
        seen = [t["iter"] for t in get_op(job, "sink").seen]
        assert seen == list(range(30))

    def test_flush_respects_still_open_timed_partition(self, system):
        """Items flushed from a cleared untimed partition must still honor
        another partition that remains in force on the same link
        (regression: the flush used to bypass fault composition)."""
        job = system.submit_job(make_linear_app(period=0.2, limit=10))
        system.run_for(1.05)
        sink_pe = job.pe_of_operator("sink")
        untimed = system.transport.install_link_fault(
            partition=True, dst_pe=sink_pe.pe_id
        )
        system.run_for(1.0)  # a few items held in the untimed queue
        held_at = len(get_op(job, "sink").seen)
        timed = system.transport.install_link_fault(
            partition=True, dst_pe=sink_pe.pe_id, duration=5.0
        )
        system.transport.clear_link_fault(untimed)
        system.run_for(3.0)  # timed partition still open: nothing arrives
        assert len(get_op(job, "sink").seen) == held_at
        system.run_for(10.0)  # timed partition healed: everything flushes
        seen = [t["iter"] for t in get_op(job, "sink").seen]
        assert seen == list(range(10))
