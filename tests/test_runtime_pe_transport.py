"""Tests for PE lifecycle, tuple routing, and the transport."""

import pytest

from repro.errors import PEControlError
from repro.runtime.job import JobState
from repro.runtime.pe import PEState
from repro.spl.metrics import OperatorMetricName, PEMetricName
from repro.spl.library import Beacon

from tests.conftest import make_filter_app, make_linear_app


def get_op(job, name):
    return job.operator_instance(name)


class TestPELifecycle:
    def test_pes_start_after_spawn_delay(self, system):
        job = system.submit_job(make_linear_app())
        assert job.state is JobState.SUBMITTED
        assert all(pe.state is PEState.CONSTRUCTED for pe in job.pes)
        system.run_for(0.2)
        assert job.state is JobState.RUNNING
        assert all(pe.state is PEState.RUNNING for pe in job.pes)

    def test_crash_discards_operators_without_shutdown(self, system):
        job = system.submit_job(make_linear_app())
        system.run_for(5.0)
        pe = job.pe_of_operator("sink")
        pe.crash("test")
        assert pe.state is PEState.CRASHED
        assert pe.operators == {}
        assert pe.last_crash_reason == "test"

    def test_crash_is_noop_when_not_running(self, system):
        job = system.submit_job(make_linear_app())
        system.run_for(5.0)
        pe = job.pe_of_operator("sink")
        pe.stop()
        pe.crash("late")  # ignored
        assert pe.state is PEState.STOPPED

    def test_restart_gives_fresh_state(self, system):
        job = system.submit_job(make_linear_app())
        system.run_for(10.0)
        pe = job.pe_of_operator("sink")
        before = len(get_op(job, "sink").seen)
        assert before > 0
        pe.crash("test")
        pe.restart()
        assert get_op(job, "sink").seen == []
        assert pe.metrics.get(PEMetricName.N_RESTARTS).value == 1

    def test_restart_running_pe_rejected(self, system):
        job = system.submit_job(make_linear_app())
        system.run_for(1.0)
        with pytest.raises(PEControlError):
            job.pes[0].restart()

    def test_double_start_rejected(self, system):
        job = system.submit_job(make_linear_app())
        system.run_for(1.0)
        with pytest.raises(PEControlError):
            job.pes[0].start()

    def test_stop_runs_shutdown_hooks(self, system):
        from repro.spl.application import Application
        from repro.spl.operators import Operator

        log = []

        class Closing(Operator):
            N_INPUTS = 1
            N_OUTPUTS = 0

            def on_shutdown(self):
                log.append("closed")

        app = Application("Closer")
        g = app.graph
        src = g.add_operator("src", Beacon)
        c = g.add_operator("c", Closing)
        g.connect(src.oport(0), c.iport(0))
        job = system.submit_job(app)
        system.run_for(1.0)
        system.cancel_job(job.job_id)
        assert log == ["closed"]

    def test_scheduled_work_cancelled_on_crash(self, system):
        job = system.submit_job(make_linear_app())
        system.run_for(5.0)
        src_pe = job.pe_of_operator("src")
        sink_op = get_op(job, "sink")
        count = len(sink_op.seen)
        src_pe.crash("test")
        system.run_for(10.0)
        # source is dead: nothing new reaches the sink
        assert len(get_op(job, "sink").seen) == count


class TestRouting:
    def test_intra_pe_is_synchronous(self, system):
        app = make_filter_app()  # all in one PE (untagged -> wait, singleton PEs)
        # untagged operators get singleton PEs in manual mode; fuse them:
        for spec in app.graph.operators.values():
            spec.partition = "one"
        job = system.submit_job(app)
        system.run_for(2.1)
        assert len(job.pes) == 1
        # transport was never used for this job's edges
        assert system.transport.total_sent == 0

    def test_inter_pe_has_latency_and_accounting(self, system):
        job = system.submit_job(make_linear_app())
        system.run_for(5.0)
        assert system.transport.total_sent > 0
        assert system.transport.total_delivered > 0

    def test_tuples_to_crashed_pe_are_dropped(self, system):
        job = system.submit_job(make_linear_app(period=0.5))
        system.run_for(5.0)
        job.pe_of_operator("sink").crash("test")
        system.run_for(5.0)
        assert system.transport.total_dropped > 0

    def test_queue_metrics_updated_by_hc(self, system):
        job = system.submit_job(make_linear_app(per_tick=5, period=0.1))
        system.run_for(10.0)
        sink_op = get_op(job, "sink")
        # gauge exists at both operator and port scope
        assert sink_op.metrics.has(OperatorMetricName.QUEUE_SIZE)
        assert sink_op.metrics.has(OperatorMetricName.QUEUE_SIZE, port=0)

    def test_pe_byte_metrics_grow(self, system):
        job = system.submit_job(make_linear_app())
        system.run_for(10.0)
        pe = job.pe_of_operator("sink")
        assert pe.metrics.get(PEMetricName.N_TUPLES_PROCESSED).value > 0
        assert pe.metrics.get(PEMetricName.N_TUPLE_BYTES_PROCESSED).value > 0

    def test_send_control_reaches_operator(self, system):
        job = system.submit_job(make_filter_app(threshold=100))
        system.run_for(3.0)
        pe = job.pe_of_operator("filt")
        pe.send_control("filt", "setPredicate", {"predicate": lambda t: True})
        system.run_for(5.0)
        assert len(get_op(job, "sink").seen) > 0

    def test_send_control_unknown_operator(self, system):
        job = system.submit_job(make_linear_app())
        system.run_for(1.0)
        with pytest.raises(PEControlError):
            job.pes[0].send_control("ghost", "cmd", {})


class TestJobQueries:
    def test_pe_lookup_by_index_and_id(self, system):
        job = system.submit_job(make_linear_app())
        pe = job.pes[0]
        assert job.pe_by_index(pe.index) is pe
        assert job.pe_by_id(pe.pe_id) is pe

    def test_unknown_pe_raises(self, system):
        from repro.errors import UnknownPEError

        job = system.submit_job(make_linear_app())
        with pytest.raises(UnknownPEError):
            job.pe_by_index(99)
        with pytest.raises(UnknownPEError):
            job.pe_by_id("pe_999")

    def test_operator_instance_none_when_down(self, system):
        job = system.submit_job(make_linear_app())
        system.run_for(1.0)
        job.pe_of_operator("sink").crash("x")
        assert job.operator_instance("sink") is None

    def test_all_operator_names(self, system):
        job = system.submit_job(make_linear_app())
        assert set(job.all_operator_names()) == {"src", "sink"}
