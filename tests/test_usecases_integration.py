"""End-to-end integration tests for the paper's three use cases (Sec. 5)."""

import io

import pytest

from repro import ManagedApplication, OrcaDescriptor, SystemS
from repro.apps.datastore import CauseModelStore, CorpusStore, ProfileDataStore
from repro.apps.hadoop import SimulatedHadoopCluster
from repro.apps.orchestrators import (
    CompositionOrca,
    FailoverOrca,
    SentimentOrca,
    orca_logic_loc,
)
from repro.apps.sentiment import build_sentiment_application
from repro.apps.socialmedia import build_all_socialmedia_applications
from repro.apps.trend import TrendRecorderHub, build_trend_application
from repro.apps.workloads import TradeWorkload, TweetWorkload
from repro.runtime.pe import PEState


@pytest.fixture
def sentiment_setup():
    system = SystemS(hosts=4, seed=42)
    corpus = CorpusStore()
    models = CauseModelStore(("flash", "screen"))
    hadoop = SimulatedHadoopCluster(system.kernel, corpus, models, duration=30.0)
    workload = TweetWorkload(seed=7, rate=20)
    app = build_sentiment_application(workload, corpus, models)
    logic = SentimentOrca(hadoop)
    descriptor = OrcaDescriptor(
        name="S",
        logic=lambda: logic,
        applications=[ManagedApplication(name=app.name, application=app)],
        metric_poll_interval=1.0,
    )
    system.submit_orchestrator(descriptor)
    return system, logic, hadoop, models


class TestSentimentUseCase:
    def test_fig8_shape(self, sentiment_setup):
        """Fig. 8: ratio < 1 before the shift, > 1 after, < 1 post-refresh."""
        system, logic, hadoop, models = sentiment_setup
        system.run_for(400.0)
        series = dict(logic.ratio_series)
        pre = [r for e, r in series.items() if 50 < e < 250]
        post = [r for e, r in series.items() if e > 320]
        assert pre and max(pre) < 1.0
        assert max(r for _, r in series.items()) > 1.0
        assert post and max(post) < 1.0

    def test_single_trigger_thanks_to_guard(self, sentiment_setup):
        """Sec. 5.1: no new job within 10 minutes of the last one."""
        system, logic, hadoop, _ = sentiment_setup
        system.run_for(400.0)
        assert len(hadoop.jobs) == 1
        assert 250.0 <= hadoop.jobs[0].submitted_at <= 280.0

    def test_model_refreshed_with_new_cause(self, sentiment_setup):
        system, logic, hadoop, models = sentiment_setup
        system.run_for(400.0)
        assert models.version == 2
        assert "antenna" in models.current.causes

    def test_no_trigger_without_shift(self):
        system = SystemS(hosts=4, seed=42)
        corpus = CorpusStore()
        models = CauseModelStore(("flash", "screen"))
        hadoop = SimulatedHadoopCluster(system.kernel, corpus, models)
        from repro.apps.workloads import CausePhase

        workload = TweetWorkload(
            seed=7, rate=20,
            phases=(CausePhase(0.0, {"flash": 0.6, "screen": 0.4}),),
        )
        app = build_sentiment_application(workload, corpus, models)
        logic = SentimentOrca(hadoop)
        system.submit_orchestrator(
            OrcaDescriptor(
                name="S",
                logic=lambda: logic,
                applications=[ManagedApplication(name=app.name, application=app)],
                metric_poll_interval=1.0,
            )
        )
        system.run_for(200.0)
        assert hadoop.jobs == []


@pytest.fixture
def failover_setup():
    system = SystemS(hosts=8, seed=42)
    hub = TrendRecorderHub()
    status = io.StringIO()
    app = build_trend_application(
        lambda: TradeWorkload(seed=11), hub=hub, window_span=600.0
    )
    logic = FailoverOrca(n_replicas=3, status_stream=status)
    descriptor = OrcaDescriptor(
        name="F",
        logic=lambda: logic,
        applications=[ManagedApplication(name=app.name, application=app)],
    )
    service = system.submit_orchestrator(descriptor)
    return system, service, logic, hub, status


class TestFailoverUseCase:
    def test_replicas_on_disjoint_exclusive_hosts(self, failover_setup):
        system, service, logic, _, _ = failover_setup
        system.run_for(5.0)
        assert len(logic.replicas) == 3
        host_sets = [
            {pe.host_name for pe in service.job(job_id).pes}
            for job_id in logic.replicas
        ]
        for i in range(3):
            for j in range(i + 1, 3):
                assert not (host_sets[i] & host_sets[j])
        assert len(system.sam.reserved_hosts) == 6

    def test_one_active_rest_backup(self, failover_setup):
        system, _, logic, _, _ = failover_setup
        system.run_for(5.0)
        statuses = sorted(r["status"] for r in logic.replicas.values())
        assert statuses == ["active", "backup", "backup"]

    def test_healthy_replicas_produce_identical_output(self, failover_setup):
        """Fig. 9(a): when all replicas are healthy the graphs coincide."""
        system, _, logic, hub, _ = failover_setup
        system.run_for(120.0)
        a = hub.series("0", "IBM")
        b = hub.series("1", "IBM")
        assert a and a == b

    def test_failover_promotes_oldest_healthy(self, failover_setup):
        system, service, logic, _, _ = failover_setup
        system.run_for(650.0)
        active = logic.active_job_id()
        job = service.job(active)
        system.failures.crash_pe(active, pe_index=job.compiled.pe_of("calc"))
        system.run_for(10.0)
        assert len(logic.failovers) == 1
        _, failed, promoted = logic.failovers[0]
        assert failed == active
        assert logic.replicas[promoted]["status"] == "active"
        assert logic.replicas[failed]["status"] == "backup"

    def test_failed_pe_restarted(self, failover_setup):
        system, service, logic, _, _ = failover_setup
        system.run_for(650.0)
        active = logic.active_job_id()
        job = service.job(active)
        victim = job.pe_by_index(job.compiled.pe_of("calc"))
        system.failures.crash_pe(active, pe_id=victim.pe_id)
        system.run_for(10.0)
        assert victim.state is PEState.RUNNING

    def test_restarted_replica_diverges_then_recovers(self, failover_setup):
        """Fig. 9(b): wrong output until the 600 s window refills."""
        system, service, logic, hub, _ = failover_setup
        system.run_for(650.0)
        active = logic.active_job_id()
        failed_replica = logic.replicas[active]["replica"]
        job = service.job(active)
        system.failures.crash_pe(active, pe_index=job.compiled.pe_of("calc"))
        system.run_for(60.0)
        promoted = logic.failovers[0][2]
        promoted_replica = logic.replicas[promoted]["replica"]
        bad = {p.ts: p for p in hub.points_for(failed_replica, "IBM")}
        good = {p.ts: p for p in hub.points_for(promoted_replica, "IBM")}
        after = [t for t in sorted(set(bad) & set(good)) if t > 655.0]
        assert after
        divergence = [abs(bad[t].average - good[t].average) for t in after]
        assert max(divergence) > 0.5  # clearly wrong right after restart
        assert bad[after[0]].coverage < 60.0  # window still refilling
        # run until the window is full again: outputs re-converge
        system.run_for(650.0)
        bad = {p.ts: p for p in hub.points_for(failed_replica, "IBM")}
        good = {p.ts: p for p in hub.points_for(promoted_replica, "IBM")}
        tail = [t for t in sorted(set(bad) & set(good)) if t > 1320.0]
        assert tail
        assert all(abs(bad[t].average - good[t].average) < 1e-9 for t in tail)

    def test_backup_failure_needs_no_failover(self, failover_setup):
        system, service, logic, _, _ = failover_setup
        system.run_for(10.0)
        backup = next(
            job_id
            for job_id, r in logic.replicas.items()
            if r["status"] == "backup"
        )
        job = service.job(backup)
        system.failures.crash_pe(backup, pe_index=job.compiled.pe_of("calc"))
        system.run_for(10.0)
        assert logic.failovers == []
        assert logic.replicas[backup]["status"] == "backup"

    def test_status_file_written(self, failover_setup):
        system, service, logic, _, status = failover_setup
        system.run_for(650.0)
        active = logic.active_job_id()
        job = service.job(active)
        system.failures.crash_pe(active, pe_index=job.compiled.pe_of("calc"))
        system.run_for(10.0)
        lines = status.getvalue().splitlines()
        assert any("status=active" in line for line in lines)
        # the failover rewrote the statuses
        assert len(lines) >= 6


@pytest.fixture
def composition_setup():
    system = SystemS(hosts=6, seed=42)
    store = ProfileDataStore()
    results = []
    apps = build_all_socialmedia_applications(store, results=results,
                                              profile_rate=15)
    logic = CompositionOrca(threshold=1500)
    descriptor = OrcaDescriptor(
        name="C",
        logic=lambda: logic,
        applications=[
            ManagedApplication(name=n, application=a) for n, a in apps.items()
        ],
        metric_poll_interval=5.0,
    )
    system.submit_orchestrator(descriptor)
    return system, logic, store, results


class TestCompositionUseCase:
    def test_c1_and_c2_start_through_dependencies(self, composition_setup):
        system, logic, _, _ = composition_setup
        system.run_for(10.0)
        running = sorted(
            {j.app_name for j in system.sam.running_jobs()}
        )
        assert running == [
            "BlogQuery", "FacebookQuery", "MySpaceStreamReader",
            "TwitterQuery", "TwitterStreamReader",
        ]

    def test_c3_spawned_on_threshold(self, composition_setup):
        system, logic, _, _ = composition_setup
        system.run_for(120.0)
        assert logic.c3_history
        attrs = {attr for _, attr, _ in logic.c3_history}
        assert attrs <= {"gender", "age", "location"}

    def test_c3_cancelled_on_final_punctuation(self, composition_setup):
        system, logic, _, results = composition_setup
        system.run_for(200.0)
        submits = [e for e in logic.events if e[0] == "submit"]
        cancels = [e for e in logic.events if e[0] == "cancel"]
        assert len(cancels) >= 1
        assert results  # segmentation results were produced before cancel
        # every cancel follows a submit of the same app
        assert len(submits) >= len(cancels)

    def test_expansion_repeats_as_profiles_accumulate(self, composition_setup):
        system, logic, _, _ = composition_setup
        system.run_for(300.0)
        per_attr = {}
        for _, attr, _ in logic.c3_history:
            per_attr[attr] = per_attr.get(attr, 0) + 1
        assert max(per_attr.values()) >= 2  # expand/contract cycles

    def test_c3_reads_deduplicated_store(self, composition_setup):
        """Sec. 5.3: C3 never sees duplicates (store dedups), while the
        orchestrator's aggregate counts do include duplicates."""
        system, logic, store, results = composition_setup
        system.run_for(200.0)
        assert store.total_writes > len(store)  # C2 wrote duplicates
        for result in results:
            assert result["profiles"] <= len(store) + 1000

    def test_segmentation_buckets_sensible(self, composition_setup):
        system, logic, _, results = composition_setup
        system.run_for(200.0)
        gender_results = [r for r in results if r["attribute"] == "gender"]
        if gender_results:
            buckets = set(gender_results[0]["segmentation"])
            assert buckets <= {"f", "m"}


class TestOrcaLogicSize:
    def test_loc_in_same_ballpark_as_paper(self):
        """Paper: 114 / 196 / 139 lines of C++ for the three ORCA logics."""
        sizes = {
            "sentiment": orca_logic_loc(SentimentOrca),
            "failover": orca_logic_loc(FailoverOrca),
            "composition": orca_logic_loc(CompositionOrca),
        }
        for name, loc in sizes.items():
            assert 30 <= loc <= 250, f"{name} is {loc} lines"
