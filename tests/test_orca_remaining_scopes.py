"""End-to-end delivery tests for the remaining scope types:
HostFailureScope, config-filtered job scopes, reason-filtered failures."""

from repro import ManagedApplication, Orchestrator, OrcaDescriptor
from repro.orca.scopes import (
    HostFailureScope,
    JobCancellationScope,
    JobSubmissionScope,
    PEFailureScope,
)

from tests.conftest import make_linear_app


class ScopedOrca(Orchestrator):
    def __init__(self, scopes, submit=("Linear",)):
        super().__init__()
        self.scopes_to_register = list(scopes)
        self.apps_to_submit = list(submit)
        self.jobs = []
        self.host_failures = []
        self.pe_failures = []
        self.submissions = []
        self.cancellations = []

    def handleOrcaStart(self, context):
        for scope in self.scopes_to_register:
            self.orca.register_event_scope(scope)
        for name in self.apps_to_submit:
            self.jobs.append(self.orca.submit_application(name))

    def handleHostFailureEvent(self, context, scopes):
        self.host_failures.append((context.host, context.affected_pe_ids, scopes))

    def handlePEFailureEvent(self, context, scopes):
        self.pe_failures.append((context.pe_id, context.reason))

    def handleJobSubmissionEvent(self, context, scopes):
        self.submissions.append((context.config_id, scopes))

    def handleJobCancellationEvent(self, context, scopes):
        self.cancellations.append((context.config_id, scopes))


def submit(system, logic, names=("Linear",)):
    return system.submit_orchestrator(
        OrcaDescriptor(
            name="S",
            logic=lambda: logic,
            applications=[
                ManagedApplication(name=n, application=make_linear_app(n))
                for n in names
            ],
        )
    )


class TestHostFailureScope:
    def test_host_failure_event_with_affected_pes(self, system):
        logic = ScopedOrca([HostFailureScope("h")])
        submit(system, logic)
        system.run_for(2.0)
        victim_host = logic.jobs[0].pes[0].host_name
        system.failures.fail_host(victim_host)
        system.run_for(system.config.heartbeat_timeout + 2.5)
        assert len(logic.host_failures) == 1
        host, affected, scopes = logic.host_failures[0]
        assert host == victim_host
        assert logic.jobs[0].pes[0].pe_id in affected
        assert scopes == ["h"]

    def test_host_filter(self, system):
        scope = HostFailureScope("h").addHostFilter("host_that_never_exists")
        logic = ScopedOrca([scope])
        submit(system, logic)
        system.run_for(2.0)
        system.failures.fail_host(logic.jobs[0].pes[0].host_name)
        system.run_for(6.0)
        assert logic.host_failures == []


class TestReasonFilteredFailures:
    def test_only_selected_reason_delivered(self, system):
        scope = PEFailureScope("f").addReasonFilter("host_failure")
        logic = ScopedOrca([scope])
        submit(system, logic)
        system.run_for(2.0)
        job = logic.jobs[0]
        # an injected crash does NOT match the reason filter
        system.failures.crash_pe(job.job_id, pe_id=job.pes[0].pe_id,
                                 reason="injected_fault")
        system.run_for(2.0)
        assert logic.pe_failures == []
        # a host failure does
        host = job.pes[1].host_name
        system.failures.fail_host(host)
        system.run_for(6.0)
        assert logic.pe_failures
        assert all(reason == "host_failure" for _, reason in logic.pe_failures)


class TestConfigFilteredJobScopes:
    def test_submission_and_cancellation_config_filters(self, system):
        sub_scope = JobSubmissionScope("subs").addConfigFilter("tracked")
        can_scope = JobCancellationScope("cans").addConfigFilter("tracked")
        logic = ScopedOrca([sub_scope, can_scope], submit=())
        service = submit(system, logic, names=("A", "B"))
        system.run_for(0.1)
        deps = service.deps
        deps.create_app_config("tracked", "A")
        deps.create_app_config("untracked", "B")
        deps.start("tracked")
        deps.start("untracked")
        system.run_for(1.0)
        assert [c for c, _ in logic.submissions] == ["tracked"]
        deps.cancel("untracked")
        deps.cancel("tracked")
        system.run_for(1.0)
        assert [c for c, _ in logic.cancellations] == ["tracked"]

    def test_application_filter_on_job_scope(self, system):
        scope = JobSubmissionScope("subs").addApplicationFilter("A")
        logic = ScopedOrca([scope], submit=("A", "B"))
        submit(system, logic, names=("A", "B"))
        system.run_for(1.0)
        assert len(logic.submissions) == 1
