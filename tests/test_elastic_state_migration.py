"""Integration tests for the partitioned-state layer across the runtime:
live keyed-state migration during rescales (out, in, rollback, disabled),
PE restart rehydration, crashed-channel rerouting (splitter masking), the
state metrics flowing through SRM, and the ORCA state inspection surface
and events."""

import pytest

from repro import ManagedApplication, OrcaDescriptor, Orchestrator, SystemS
from repro.elastic import (
    QueueSizeScalingPolicy,
    RegionObservation,
    RescaleState,
    StateAwareScalingPolicy,
)
from repro.orca.scopes import ParallelRegionScope
from repro.runtime.pe import PEState
from repro.spl.application import Application
from repro.spl.library import CallbackSource, KeyedCounter, Sink, stable_channel_of
from repro.spl.parallel import parallel

N_KEYS = 8


def keyed_generator(n_keys=N_KEYS):
    def generate(now, count):
        return [{"key": f"k{count % n_keys}", "seq": count}]

    return generate


def build_keyed_app(width=2, limit=None, period=0.02, migrate_state=True,
                    max_width=8, name="KeyedElastic"):
    app = Application(name)
    g = app.graph
    src = g.add_operator(
        "src",
        CallbackSource,
        params={"generator": keyed_generator(), "period": period, "limit": limit},
        partition="feed",
    )
    work = g.add_operator(
        "work",
        KeyedCounter,
        params={"key": "key"},
        parallel=parallel(
            width=width,
            name="region",
            partition_by="key",
            max_width=max_width,
            migrate_state=migrate_state,
        ),
    )
    sink = g.add_operator("sink", Sink, partition="out")
    g.connect(src.oport(0), work.iport(0))
    g.connect(work.oport(0), sink.iport(0))
    return app


def counts_by_key(sink):
    observed = {}
    for t in sink.seen:
        observed.setdefault(t["key"], []).append(t["count"])
    return observed


def assert_contiguous_counts(sink):
    """Every key's counts must be exactly 1, 2, 3, ... — any reset or gap
    means keyed state (or a tuple) was lost."""
    for key, counts in counts_by_key(sink).items():
        assert counts == list(range(1, len(counts) + 1)), (
            f"key {key}: counts not contiguous: {counts[:10]}..."
        )


class TestLiveStateMigration:
    def test_scale_out_migrates_keyed_state(self):
        system = SystemS(hosts=12)
        job = system.submit_job(build_keyed_app(width=2, limit=400))
        system.run_for(3.0)
        operation = system.elastic.set_channel_width(job, "region", 4)
        system.run_for(30.0)
        assert operation.state is RescaleState.COMPLETED
        migration = operation.migration
        assert migration is not None
        assert migration.keys_moved > 0
        assert migration.bytes_moved > 0
        assert migration.new_width == 4 and not migration.rolled_back
        # every key now lives on (exactly) its hash(key) % 4 owner channel
        for i in range(N_KEYS):
            key = f"k{i}"
            owner = stable_channel_of(key, 4)
            for channel in range(4):
                instance = job.operator_instance(f"work__c{channel}")
                present = key in instance.state.keyed("counts")
                assert present == (channel == owner)
        system.run_for(30.0)
        sink = job.operator_instance("sink")
        assert sorted(t["seq"] for t in sink.seen) == list(range(400))
        assert_contiguous_counts(sink)

    def test_scale_in_merges_partitions_onto_fewer_channels(self):
        """Restore into a narrower width: partitions from several doomed
        channels merge onto their new owners with nothing lost."""
        system = SystemS(hosts=12)
        job = system.submit_job(build_keyed_app(width=4, limit=400))
        system.run_for(3.0)
        pre_counts = {}
        for channel in range(4):
            instance = job.operator_instance(f"work__c{channel}")
            pre_counts.update(dict(instance.state.keyed("counts").items()))
        assert len(pre_counts) == N_KEYS
        operation = system.elastic.set_channel_width(job, "region", 2)
        system.run_for(30.0)
        assert operation.state is RescaleState.COMPLETED
        migration = operation.migration
        assert migration is not None and migration.keys_moved > 0
        # keys previously spread over 4 channels all found a home on 2
        merged = {}
        for channel in range(2):
            instance = job.operator_instance(f"work__c{channel}")
            for key, count in instance.state.keyed("counts").items():
                assert stable_channel_of(key, 2) == channel
                merged[key] = count
        for key, count in pre_counts.items():
            assert merged[key] >= count  # count kept growing post-rescale
        system.run_for(30.0)
        assert_contiguous_counts(job.operator_instance("sink"))

    def test_migration_disabled_keeps_paper_semantics(self):
        system = SystemS(hosts=12)
        job = system.submit_job(
            build_keyed_app(width=2, limit=400, migrate_state=False)
        )
        system.run_for(3.0)
        operation = system.elastic.set_channel_width(job, "region", 4)
        system.run_for(10.0)
        assert operation.state is RescaleState.COMPLETED
        assert operation.migration is None  # no migration phase ran

    def test_round_robin_region_has_no_migration(self):
        """No partition_by -> keyed ownership is undefined -> no migration."""
        from tests.test_elastic import build_region_app

        system = SystemS(hosts=12)
        job = system.submit_job(build_region_app(width=2))
        system.run_for(2.0)
        operation = system.elastic.set_channel_width(job, "region", 3)
        system.run_for(10.0)
        assert operation.state is RescaleState.COMPLETED
        assert operation.migration is None

    def test_rollback_reinstalls_extracted_state(self):
        """Migration during rollback: when the new channels cannot be
        placed, the already-extracted partitions return to their source
        channels and the stream continues with zero state loss."""
        from repro.runtime.host import Host

        # capacity for exactly the initial 6 PEs (src, split, c0, c1, merge,
        # sink) — the two extra channels of a 2->4 rescale cannot be placed
        system = SystemS(hosts=[Host(f"h{i}", capacity=1) for i in range(6)])
        job = system.sam.submit_job(
            system.compile(build_keyed_app(width=2, limit=400, period=0.01))
        )
        system.run_for(2.0)
        operation = system.elastic.set_channel_width(job, "region", 4)
        system.run_for(30.0)
        assert operation.state is RescaleState.FAILED
        assert operation.migration is not None
        assert operation.migration.rolled_back
        # keys are back on their width-2 owners and counting continues
        for i in range(N_KEYS):
            key = f"k{i}"
            owner = stable_channel_of(key, 2)
            instance = job.operator_instance(f"work__c{owner}")
            assert key in instance.state.keyed("counts")
        system.run_for(30.0)
        sink = job.operator_instance("sink")
        assert sorted(t["seq"] for t in sink.seen) == list(range(400))
        assert_contiguous_counts(sink)

    def test_merger_crash_during_drain_fails_before_migration(self):
        """A rescale whose merger died while draining must fail *without*
        touching any keyed state: extraction never runs, the splitter
        resumes at the old width, and every key stays on its old owner."""
        system = SystemS(hosts=12)
        job = system.submit_job(build_keyed_app(width=2, limit=None))
        system.run_for(3.0)
        before = {}
        for channel in range(2):
            instance = job.operator_instance(f"work__c{channel}")
            before.update(dict(instance.state.keyed("counts").items()))
        operation = system.elastic.set_channel_width(job, "region", 4)
        job.pe_of_operator("region__merge").crash("test")  # dies mid-drain
        system.run_for(10.0)
        assert operation.state is RescaleState.FAILED
        assert "cannot rewire" in operation.error
        assert operation.migration is None  # nothing was ever extracted
        splitter = job.operator_instance("region__split")
        assert not splitter.is_quiesced and splitter.width == 2
        for key in before:
            owner = stable_channel_of(key, 2)
            instance = job.operator_instance(f"work__c{owner}")
            assert instance.state.keyed("counts").get(key, 0) >= before[key]

    def test_crashed_channel_is_skipped_by_extraction(self):
        system = SystemS(hosts=12)
        job = system.submit_job(build_keyed_app(width=3, limit=None))
        system.run_for(3.0)
        job.pe_of_operator("work__c1").crash("test")
        operation = system.elastic.set_channel_width(job, "region", 2)
        system.run_for(20.0)
        assert operation.state is RescaleState.COMPLETED
        assert operation.migration is not None
        assert 1 in operation.migration.skipped_channels


class TestRehydrateRestart:
    def build_plain_counter_app(self):
        app = Application("Plain")
        g = app.graph
        src = g.add_operator(
            "src",
            CallbackSource,
            params={"generator": keyed_generator(), "period": 0.05},
            partition="feed",
        )
        work = g.add_operator("work", KeyedCounter, params={"key": "key"})
        sink = g.add_operator("sink", Sink, partition="out")
        g.connect(src.oport(0), work.iport(0))
        g.connect(work.oport(0), sink.iport(0))
        return app

    def test_graceful_stop_captures_and_rehydrate_restores(self):
        system = SystemS(hosts=6)
        job = system.submit_job(self.build_plain_counter_app())
        system.run_for(5.0)
        pe = job.pe_of_operator("work")
        before = dict(pe.operators["work"].state.keyed("counts").items())
        assert before
        system.sam.stop_pe(job.job_id, pe.pe_id)
        assert pe.state_registry  # quiesced snapshot captured at stop
        system.sam.restart_pe(job.job_id, pe.pe_id, rehydrate=True)
        system.run_for(2.0)
        after = dict(pe.operators["work"].state.keyed("counts").items())
        for key, count in before.items():
            assert after.get(key, 0) >= count

    def test_default_restart_is_empty_paper_semantics(self):
        system = SystemS(hosts=6)
        job = system.submit_job(self.build_plain_counter_app())
        system.run_for(10.0)
        pe = job.pe_of_operator("work")
        before = dict(pe.operators["work"].state.keyed("counts").items())
        assert before and min(before.values()) >= 2
        system.sam.stop_pe(job.job_id, pe.pe_id)
        system.sam.restart_pe(job.job_id, pe.pe_id)  # rehydrate defaults False
        system.run_for(2.0)  # restart delay (1s) + 1s of fresh counting
        after = dict(pe.operators["work"].state.keyed("counts").items())
        # fresh instance: counting restarted from scratch (Fig. 9(b))
        assert after and max(after.values()) < min(before.values())

    def test_crash_never_produces_a_snapshot(self):
        system = SystemS(hosts=6)
        job = system.submit_job(self.build_plain_counter_app())
        system.run_for(10.0)
        pe = job.pe_of_operator("work")
        before = dict(pe.operators["work"].state.keyed("counts").items())
        assert before and min(before.values()) >= 2
        pe.crash("test")
        assert not pe.state_registry
        pe.restart(rehydrate=True)  # nothing to rehydrate from: starts empty
        system.run_for(1.0)
        after = dict(pe.operators["work"].state.keyed("counts").items())
        assert after and max(after.values()) < min(before.values())


class TestCrashedChannelRerouting:
    def test_splitter_masks_dead_channel_and_traffic_flows(self):
        system = SystemS(hosts=12)
        job = system.submit_job(build_keyed_app(width=2, limit=None, period=0.05))
        system.run_for(2.0)
        dead_pe = job.pe_of_operator("work__c1")
        dead_pe.crash("test")
        system.run_for(1.0)  # failure notification delay elapses
        splitter = job.operator_instance("region__split")
        assert splitter.masked_channels == {1}
        assert [r for r in system.elastic.reroutes if r.masked]
        sink = job.operator_instance("sink")
        seen_before = len(sink.seen)
        system.run_for(5.0)
        # every key still flows (rerouted off the dead channel)
        fresh = [t for t in sink.seen[seen_before:]]
        assert {t["key"] for t in fresh} == {f"k{i}" for i in range(N_KEYS)}
        assert splitter.metric("nReroutedTuples").value > 0

    def test_restart_unmasks_the_channel(self):
        system = SystemS(hosts=12)
        job = system.submit_job(build_keyed_app(width=2, limit=None, period=0.05))
        system.run_for(2.0)
        dead_pe = job.pe_of_operator("work__c1")
        dead_pe.crash("test")
        system.run_for(1.0)
        splitter = job.operator_instance("region__split")
        assert splitter.masked_channels == {1}
        system.sam.restart_pe(job.job_id, dead_pe.pe_id)
        system.run_for(3.0)
        assert dead_pe.state is PEState.RUNNING
        assert splitter.masked_channels == set()
        unmasks = [r for r in system.elastic.reroutes if not r.masked]
        assert unmasks and unmasks[-1].reason == "restart_pe"

    def test_graceful_restart_emits_no_phantom_reroutes(self):
        """Regression: stop_pe + restart_pe on a channel PE that was never
        masked must not emit mask/unmask reroute records."""
        system = SystemS(hosts=12)
        job = system.submit_job(build_keyed_app(width=2, limit=None, period=0.05))
        system.run_for(2.0)
        pe = job.pe_of_operator("work__c1")
        system.sam.stop_pe(job.job_id, pe.pe_id)
        system.sam.restart_pe(job.job_id, pe.pe_id)
        system.run_for(3.0)
        assert pe.state is PEState.RUNNING
        assert system.elastic.reroutes == []

    def test_unmask_reclaims_detour_state(self):
        """Keyed entries accrued on detour channels while a channel was
        masked are *reclaimed* at unmask time: extracted from the detours
        and installed back on the restarted owner, so per-key computation
        continues from the detour values instead of restarting — and a
        later rescale cannot migrate stale duplicates over the owner."""
        system = SystemS(hosts=12)
        job = system.submit_job(build_keyed_app(width=2, limit=None, period=0.02))
        system.run_for(2.0)
        dead_pe = job.pe_of_operator("work__c1")
        dead_pe.crash("test")
        system.run_for(3.0)  # detour traffic accrues c1's keys on c0
        c1_keys = {f"k{i}" for i in range(N_KEYS)
                   if stable_channel_of(f"k{i}", 2) == 1}
        survivor = job.operator_instance("work__c0")
        detour_counts = {
            key: survivor.state.keyed("counts").get(key)
            for key in c1_keys
            if key in survivor.state.keyed("counts")
        }
        assert detour_counts
        system.sam.restart_pe(job.job_id, dead_pe.pe_id)
        system.run_for(3.0)
        # detour entries moved off the survivor and onto the restarted
        # channel, where counting continues from the reclaimed values
        assert not any(key in survivor.state.keyed("counts") for key in c1_keys)
        restarted = job.operator_instance("work__c1")
        for key, count in detour_counts.items():
            assert restarted.state.keyed("counts").get(key, 0) >= count
        unmask = [r for r in system.elastic.reroutes if not r.masked][-1]
        assert unmask.reclaimed_keys == len(detour_counts)
        assert unmask.purged_keys == 0
        reclaim = system.elastic.reclaims[-1]
        assert reclaim.keys_reclaimed == len(detour_counts)
        assert reclaim.channels == (1,)
        assert reclaim.epoch > 0
        # a follow-up rescale does not resurrect stale entries: the
        # restarted channel's counts keep growing monotonically afterwards
        # (the drain must first wait out the merger's reorder grace on the
        # seq holes the crash left, hence the long horizon)
        operation = system.elastic.set_channel_width(job, "region", 4)
        system.run_for(40.0)
        assert operation.state is RescaleState.COMPLETED
        sink = job.operator_instance("sink")
        post = {}
        for t in sink.seen:
            if t["key"] in c1_keys:
                post.setdefault(t["key"], []).append(t["count"])
        for key, counts in post.items():
            tail = counts[-20:]
            assert tail == sorted(tail)  # no backwards jump from stale state


    def test_rescale_reroutes_migrated_state_to_detour_of_masked_owner(self):
        """Regression: a rescale completing while a channel is masked
        must not drop the entries whose *new* owner is that dead channel.
        They are installed on each key's detour channel (where the
        splitter is already routing that key's traffic), so the per-key
        continuation survives the rescale and the unmask reclaim later
        brings the grown values home instead of a from-zero fork."""
        system = SystemS(hosts=12)
        job = system.submit_job(build_keyed_app(width=3, limit=None, period=0.02))
        system.run_for(2.0)
        dead_pe = job.pe_of_operator("work__c0")
        dead_pe.crash("test")
        system.run_for(2.0)  # mask lands; detour traffic accrues c0's keys
        moved_keys = {f"k{i}" for i in range(N_KEYS)
                      if stable_channel_of(f"k{i}", 2) == 0
                      and stable_channel_of(f"k{i}", 3) != 0}
        assert moved_keys  # keys alive on survivors, owned by c0 at width 2
        pre = {}
        for channel in (1, 2):
            counts = job.operator_instance(f"work__c{channel}").state.keyed("counts")
            pre.update({k: counts.get(k) for k in moved_keys if k in counts})
        operation = system.elastic.set_channel_width(job, "region", 2)
        system.run_for(30.0)
        assert operation.state is RescaleState.COMPLETED
        migration = operation.migration
        assert migration is not None
        assert migration.keys_detoured > 0
        assert migration.keys_lost == 0
        # with c0 still masked the only live detour at width 2 is c1:
        # every moved key kept (and grew) its pre-rescale value there
        survivor = job.operator_instance("work__c1")
        for key, count in pre.items():
            assert survivor.state.keyed("counts").get(key, 0) >= count
        system.sam.restart_pe(job.job_id, dead_pe.pe_id)
        system.run_for(3.0)
        restarted = job.operator_instance("work__c0")
        for key, count in pre.items():
            assert restarted.state.keyed("counts").get(key, 0) >= count


class TestStateMetricsAndInspection:
    def make_orchestrated(self):
        system = SystemS(hosts=12)
        app = build_keyed_app(width=2, limit=None, period=0.05)

        class RegionWatcher(Orchestrator):
            def __init__(self):
                super().__init__()
                self.migrated = []
                self.rerouted = []
                self.job_id = None

            def handleOrcaStart(self, context):
                scope = ParallelRegionScope("regions")
                scope.addRegionFilter("region")
                self._orca.register_event_scope(scope)
                job = self._orca.submit_application("KeyedElastic")
                self.job_id = job.job_id

            def handleRegionStateMigratedEvent(self, context, scopes):
                self.migrated.append(context)

            def handleChannelReroutedEvent(self, context, scopes):
                self.rerouted.append(context)

        service = system.submit_orchestrator(
            OrcaDescriptor(
                name="Watcher",
                logic=RegionWatcher,
                applications=[ManagedApplication(name=app.name, application=app)],
                metric_poll_interval=5.0,
            )
        )
        return system, service

    def test_state_bytes_flow_to_srm_and_region_sizes(self):
        system, service = self.make_orchestrated()
        system.run_for(8.0)  # metric pushes every 3s
        job_id = service.logic.job_id
        sizes = service.region_state_sizes(job_id, "region")
        assert set(sizes) == {0, 1}
        assert sum(sizes.values()) > 0
        observation = service.region_observation(job_id, "region")
        assert observation.channel_state_sizes == sizes
        assert observation.total_state_bytes == pytest.approx(sum(sizes.values()))

    def test_state_of_inspects_live_keyed_state(self):
        system, service = self.make_orchestrated()
        system.run_for(5.0)
        job_id = service.logic.job_id
        result = service.state_of(job_id, "region", "k0")
        assert result["channel"] == stable_channel_of("k0", 2)
        owner_op = f"work__c{result['channel']}"
        assert result["values"][owner_op]["counts"] >= 1
        assert service.region_key_owner(job_id, "region", "k0") == result["channel"]
        # a key the region never saw: owner is computable, values empty
        ghost = service.state_of(job_id, "region", "neverseen")
        assert ghost["values"] == {}

    def test_migration_event_delivered_before_rescaled(self):
        system, service = self.make_orchestrated()
        system.run_for(5.0)
        job_id = service.logic.job_id
        service.set_channel_width(job_id, "region", 4)
        system.run_for(20.0)
        assert len(service.logic.migrated) == 1
        context = service.logic.migrated[0]
        assert context.keys_moved > 0 and context.new_width == 4
        assert context.wall_ms >= 0.0
        journal_types = [e.event_type for e in service.event_journal]
        assert journal_types.index("region_state_migrated") < journal_types.index(
            "region_rescaled"
        )

    def test_channel_rerouted_events_reach_the_logic(self):
        system, service = self.make_orchestrated()
        system.run_for(3.0)
        job = service.jobs[service.logic.job_id]
        dead_pe = job.pe_of_operator("work__c1")
        dead_pe.crash("test")
        system.run_for(2.0)
        masked = [c for c in service.logic.rerouted if c.masked]
        assert masked and masked[0].channel == 1
        service.restart_pe(dead_pe.pe_id)
        system.run_for(3.0)
        unmasked = [c for c in service.logic.rerouted if not c.masked]
        assert unmasked


class TestStateAwarePolicy:
    def obs(self, width, backlogs, state_sizes):
        return RegionObservation(
            job_id="job_1",
            region="region",
            width=width,
            channel_backlogs=backlogs,
            channel_state_sizes=state_sizes,
        )

    def test_vetoes_expensive_migration(self):
        inner = QueueSizeScalingPolicy(high_watermark=10, low_watermark=1)
        policy = StateAwareScalingPolicy(inner, max_migration_bytes=100)
        # inner wants 3; migration would move ~1/3 of 900 bytes = 300 > 100
        decision = policy.decide(self.obs(2, {0: 50.0}, {0: 450.0, 1: 450.0}))
        assert decision is None

    def test_allows_cheap_migration(self):
        inner = QueueSizeScalingPolicy(high_watermark=10, low_watermark=1)
        policy = StateAwareScalingPolicy(inner, max_migration_bytes=1000)
        assert policy.decide(self.obs(2, {0: 50.0}, {0: 450.0, 1: 450.0})) == 3

    def test_force_backlog_overrides_veto_for_scale_out(self):
        inner = QueueSizeScalingPolicy(high_watermark=10, low_watermark=1)
        policy = StateAwareScalingPolicy(
            inner, max_migration_bytes=1, force_backlog=100.0
        )
        assert policy.decide(self.obs(2, {0: 500.0}, {0: 1e6})) == 3

    def test_passthrough_when_inner_declines(self):
        inner = QueueSizeScalingPolicy(high_watermark=10, low_watermark=1)
        policy = StateAwareScalingPolicy(inner, max_migration_bytes=1)
        assert policy.decide(self.obs(2, {0: 5.0}, {0: 1e6})) is None

    def test_constructor_validation(self):
        inner = QueueSizeScalingPolicy()
        with pytest.raises(ValueError):
            StateAwareScalingPolicy(inner, max_migration_bytes=0)
